"""Tests for random-access frame reads through the object store.

``get_frame`` must serve the same pixels as a whole-clip ``get`` while
fetching only the frame's display GOP off the shards, caching decoded
GOPs, honoring the escape hatch, and running the same four-outcome
failure ladder as the full read path.
"""

import asyncio

import numpy as np
import pytest

from repro.codec import EncoderConfig
from repro.errors import AccessDeniedError, ServiceError
from repro.service import (
    CachedGop,
    GopCache,
    Keyring,
    ServiceFrontend,
    ShardPool,
    VideoObjectStore,
)
from repro.storage import MLCCellModel
from repro.video import SceneConfig, synthesize_scene

#: 12 frames at GOP 4 -> three display GOPs to seek across.
CONFIG = EncoderConfig(crf=30, gop_size=4, bframes=1)


def _clip(seed: int = 9):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=12, seed=seed, num_objects=2))


def _quiet_pool(**kwargs):
    """A pool whose device essentially never flips a bit."""
    return ShardPool(count=3,
                     cell_model=MLCCellModel(write_sigma=1e-9), **kwargs)


def _store(seek_cache=16, **pool_kwargs):
    pool = pool_kwargs.pop("pool", None) or _quiet_pool(**pool_kwargs)
    store = VideoObjectStore(pool=pool, config=CONFIG,
                             keyring=Keyring(seed=5),
                             seek_cache=seek_cache)
    object_id = store.put("alice", _clip())
    return store, object_id


@pytest.fixture(scope="module")
def shared():
    return _store()


class TestCleanIdentity:
    def test_every_display_matches_the_full_read(self, shared):
        store, object_id = shared
        full = store.get("alice", object_id,
                         rng=np.random.default_rng(0))
        assert full.outcome == "clean"
        for display in range(store.record("alice", object_id).frames):
            result = store.get_frame("alice", object_id, display,
                                     rng=np.random.default_rng(display))
            assert result.outcome == "clean"
            assert np.array_equal(result.frame,
                                  full.video.frames[display]), \
                f"display {display} diverged from the full read"

    def test_partial_read_touches_a_strict_subset(self):
        store, object_id = _store(seek_cache=0)
        record = store.record("alice", object_id)
        result = store.get_frame("alice", object_id, 6,
                                 rng=np.random.default_rng(1))
        assert not result.cache_hit
        assert 0 < result.bytes_read < result.bytes_total
        assert 0 < result.frames_decoded < record.frames
        assert result.gop_anchor == 4  # display 6 lives in GOP [4, 8)


class TestGopCache:
    def test_same_gop_hits_the_cache(self):
        store, object_id = _store(seek_cache=2)
        cold = store.get_frame("alice", object_id, 1,
                               rng=np.random.default_rng(2))
        warm = store.get_frame("alice", object_id, 2,
                               rng=np.random.default_rng(3))
        assert not cold.cache_hit and warm.cache_hit
        assert warm.bytes_read == 0 and warm.frames_decoded == 0
        assert store.gop_cache.hits == 1
        assert np.array_equal(
            warm.frame,
            store.get("alice", object_id,
                      rng=np.random.default_rng(4)).video.frames[2])

    def test_lru_eviction_past_capacity(self):
        store, object_id = _store(seek_cache=2)
        for display in (0, 5, 9):  # three GOPs through a 2-entry cache
            store.get_frame("alice", object_id, display,
                            rng=np.random.default_rng(display))
        assert store.gop_cache.evictions >= 1
        again = store.get_frame("alice", object_id, 0,
                                rng=np.random.default_rng(7))
        assert not again.cache_hit  # GOP 0 was the LRU victim

    def test_invalidate_forces_a_cold_read(self):
        store, object_id = _store(seek_cache=4)
        store.get_frame("alice", object_id, 0,
                        rng=np.random.default_rng(0))
        store.gop_cache.invalidate("alice", object_id)
        result = store.get_frame("alice", object_id, 0,
                                 rng=np.random.default_rng(1))
        assert not result.cache_hit

    def test_zero_capacity_disables_caching(self):
        store, object_id = _store(seek_cache=0)
        for _ in range(2):
            result = store.get_frame("alice", object_id, 3,
                                     rng=np.random.default_rng(5))
            assert not result.cache_hit


class TestDamagedAdmission:
    """Concealed/refused GOPs are placeholders until repair: short TTL,
    evict-first, never LRU-pinned."""

    @staticmethod
    def _entry(outcome, anchor=0):
        return CachedGop(
            anchor_display=anchor,
            frames={anchor: np.zeros((4, 4), dtype=np.uint8)},
            outcome=outcome)

    def test_damaged_admission_gets_the_ttl(self):
        cache = GopCache(capacity=4, concealed_ttl=2)
        cache.put(("t", "o", 0), self._entry("concealed"))
        cache.put(("t", "o", 4), self._entry("clean", anchor=4))
        assert cache._entries[("t", "o", 0)].remaining_ttl == 2
        assert cache._entries[("t", "o", 4)].remaining_ttl is None

    def test_damaged_entry_expires_after_its_hits(self):
        cache = GopCache(capacity=4, concealed_ttl=1)
        cache.put(("t", "o", 0), self._entry("concealed"))
        assert cache.get(("t", "o", 0)) is not None  # the one TTL hit
        assert cache.get(("t", "o", 0)) is None  # expired -> re-fetch
        assert cache.expirations == 1
        assert ("t", "o", 0) not in cache._entries

    def test_refused_gops_expire_too(self):
        cache = GopCache(capacity=4, concealed_ttl=1)
        cache.put(("t", "o", 0), self._entry("refused"))
        assert cache.get(("t", "o", 0)).outcome == "refused"
        assert cache.get(("t", "o", 0)) is None

    def test_damaged_entries_evict_first(self):
        cache = GopCache(capacity=2, concealed_ttl=5)
        cache.put(("t", "o", 0), self._entry("clean"))
        cache.put(("t", "o", 4), self._entry("concealed", anchor=4))
        # The clean entry is older, but the damaged one is LRU-end.
        cache.put(("t", "o", 8), self._entry("clean", anchor=8))
        assert ("t", "o", 4) not in cache._entries
        assert ("t", "o", 0) in cache._entries

    def test_damaged_hits_do_not_refresh_recency(self):
        cache = GopCache(capacity=2, concealed_ttl=5)
        cache.put(("t", "o", 0), self._entry("concealed"))
        cache.put(("t", "o", 4), self._entry("clean", anchor=4))
        cache.get(("t", "o", 0))  # a hit, but stays evict-first
        cache.put(("t", "o", 8), self._entry("clean", anchor=8))
        assert ("t", "o", 0) not in cache._entries
        assert ("t", "o", 4) in cache._entries


class TestEscapeHatchAndErrors:
    def test_seek_disable_env_forces_full_reads(self, monkeypatch):
        store, object_id = _store()
        full = store.get("alice", object_id, rng=np.random.default_rng(0))
        monkeypatch.setenv("REPRO_SEEK_DISABLE", "1")
        result = store.get_frame("alice", object_id, 6,
                                 rng=np.random.default_rng(6))
        assert result.bytes_read == result.bytes_total
        assert result.frames_decoded == \
            store.record("alice", object_id).frames
        assert np.array_equal(result.frame, full.video.frames[6])

    def test_foreign_reader_is_denied(self, shared):
        store, object_id = shared
        with pytest.raises(AccessDeniedError):
            store.get_frame("alice", object_id, 0, reader="mallory")

    def test_out_of_range_display_is_rejected(self, shared):
        store, object_id = shared
        frames = store.record("alice", object_id).frames
        with pytest.raises(ServiceError):
            store.get_frame("alice", object_id, frames)
        with pytest.raises(ServiceError):
            store.get_frame("alice", object_id, -1)

    def test_unknown_object_is_rejected(self, shared):
        store, _ = shared
        with pytest.raises(ServiceError):
            store.get_frame("alice", "no-such-object", 0)


class TestDamageLadder:
    def test_heavily_aged_shards_conceal_not_crash(self):
        # No retries, a sky-high quarantine threshold, and a single
        # copy (no replica walk to escape to): uncorrectable damage
        # must surface as concealment through the partial path.
        pool = ShardPool(count=3, t_days=200000.0, read_retries=0,
                         quarantine_after=10**9)
        store = VideoObjectStore(pool=pool, config=CONFIG,
                                 keyring=Keyring(seed=5), seek_cache=0,
                                 replicas=1)
        object_id = store.put("alice", _clip())
        outcomes = set()
        for display in range(store.record("alice", object_id).frames):
            result = store.get_frame("alice", object_id, display,
                                     rng=np.random.default_rng(display))
            outcomes.add(result.outcome)
            if result.outcome != "refused":
                assert result.frame is not None
                assert result.frame.shape == (32, 48)
            if result.outcome == "concealed":
                assert result.concealed_streams
                assert np.isfinite(result.psnr_db)
        assert "concealed" in outcomes


class TestFrontend:
    def test_async_read_frame_round_trips(self, shared):
        store, object_id = shared

        async def run():
            frontend = ServiceFrontend(store, queue_depth=4)
            await frontend.start()
            result = await frontend.read_frame("alice", object_id, 3,
                                               rng=np.random.default_rng(3))
            await frontend.stop()
            return result

        result = asyncio.run(run())
        assert result.display == 3
        assert result.frame is not None
