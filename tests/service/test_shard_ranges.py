"""Tests for ECC-block-aligned shard range reads."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service.shards import Shard
from repro.storage import MLCCellModel
from repro.storage.ecc import scheme_by_name

BLOB = bytes(range(256)) * 2  # 512 bytes = 8 BCH blocks of 64


def _shard() -> Shard:
    shard = Shard(shard_id="s0",
                  cell_model=MLCCellModel(write_sigma=1e-9))
    shard.write("k", BLOB)
    return shard


class TestReadRange:
    def test_bch_window_aligns_to_ecc_blocks(self):
        shard = _shard()
        data, report, start, end = shard.read_range(
            "k", scheme_by_name("BCH-6"), np.random.default_rng(0),
            70, 130)
        assert (start, end) == (64, 192)  # 64-byte block granularity
        assert data[:end - start] == BLOB[start:end]

    def test_raw_scheme_is_byte_granular(self):
        shard = _shard()
        data, _, start, end = shard.read_range(
            "k", scheme_by_name("None"), np.random.default_rng(0),
            70, 130)
        assert (start, end) == (70, 130)
        assert data[:60] == BLOB[70:130]

    def test_window_clamps_to_the_blob(self):
        shard = _shard()
        _, _, start, end = shard.read_range(
            "k", scheme_by_name("BCH-6"), np.random.default_rng(0),
            500, 10_000)
        assert (start, end) == (448, 512)

    def test_bad_ranges_and_missing_keys_are_rejected(self):
        shard = _shard()
        scheme = scheme_by_name("BCH-6")
        with pytest.raises(ServiceError):
            shard.read_range("k", scheme, np.random.default_rng(0), -1, 8)
        with pytest.raises(ServiceError):
            shard.read_range("k", scheme, np.random.default_rng(0), 9, 8)
        with pytest.raises(ServiceError):
            shard.read_range("gone", scheme, np.random.default_rng(0),
                             0, 8)

    def test_range_reads_count_toward_health(self):
        shard = _shard()
        before = shard.reads
        shard.read_range("k", scheme_by_name("BCH-6"),
                         np.random.default_rng(0), 0, 64)
        assert shard.reads == before + 1
