"""Tests for the tenant keyring and access policy."""

import pytest

from repro.errors import AccessDeniedError, ServiceError, StaleKeyError
from repro.service import Keyring, derive_tenant_key


class TestDerivation:
    def test_deterministic_per_tenant_and_seed(self):
        assert derive_tenant_key("alice", 7) == derive_tenant_key(
            "alice", 7)
        assert derive_tenant_key("alice", 7) != derive_tenant_key(
            "alice", 8)
        assert derive_tenant_key("alice", 7) != derive_tenant_key(
            "bob", 7)

    def test_key_material_sized_for_aes128(self):
        material = derive_tenant_key("alice", 0)
        assert len(material.key) == 16
        assert len(material.master_iv) == 16
        assert material.key != material.master_iv


class TestKeyring:
    def test_add_is_idempotent(self):
        ring = Keyring(seed=1)
        assert ring.add_tenant("alice") == ring.add_tenant("alice")
        assert ring.tenants() == ["alice"]

    def test_rejects_unusable_tenant_names(self):
        ring = Keyring()
        with pytest.raises(ServiceError):
            ring.add_tenant("")
        with pytest.raises(ServiceError):
            ring.add_tenant("a/b")  # '/' is the stream-key separator

    def test_owner_always_reads_own_objects(self):
        ring = Keyring()
        ring.add_tenant("alice")
        ring.check_read("alice", "alice")  # must not raise

    def test_share_grants_and_revoke_removes(self):
        ring = Keyring()
        ring.add_tenant("alice")
        with pytest.raises(AccessDeniedError):
            ring.check_read("alice", "bob")
        ring.share("alice", "bob")
        ring.check_read("alice", "bob")
        ring.revoke("alice", "bob")
        with pytest.raises(AccessDeniedError):
            ring.check_read("alice", "bob")

    def test_retired_key_refuses_use(self):
        ring = Keyring()
        ring.add_tenant("alice")
        assert ring.encryptor("alice") is not None
        ring.retire("alice")
        with pytest.raises(StaleKeyError):
            ring.key("alice")
        with pytest.raises(StaleKeyError):
            ring.encryptor("alice")

    def test_encryptor_round_trips(self):
        ring = Keyring(seed=3)
        ring.add_tenant("alice")
        enc = ring.encryptor("alice")
        blob = bytes(range(64))
        sealed = enc.encrypt_streams({0: blob})
        assert sealed[0] != blob
        assert ring.encryptor("alice").decrypt_streams(sealed)[0] == blob
