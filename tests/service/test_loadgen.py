"""Tests for the deterministic load generator."""

import pytest

from repro.service import build_plan, run_loadgen

#: Small but real: 2 clients, 6 ops, one aged grid point.
QUICK = dict(clients=2, ops=6, seed=7, t_grid=(None, 100000.0),
             degradation_samples=1)


@pytest.fixture(scope="module")
def quick_report():
    return run_loadgen(**QUICK)


class TestPlan:
    def test_plan_is_deterministic(self):
        assert build_plan(3, 4, 20, 0.5) == build_plan(3, 4, 20, 0.5)
        assert build_plan(3, 4, 20, 0.5) != build_plan(4, 4, 20, 0.5)

    def test_first_op_is_an_ingest(self):
        for seed in range(5):
            assert build_plan(seed, 2, 10, 0.9)[0].kind == "ingest"

    def test_reads_target_earlier_ingests(self):
        plan = build_plan(1, 4, 40, 0.6)
        for op in plan:
            if op.kind == "read":
                target = plan[op.target]
                assert target.kind == "ingest"
                assert target.index < op.index
                assert target.tenant == op.tenant

    def test_ops_dealt_round_robin(self):
        plan = build_plan(0, 3, 9, 0.5)
        assert [op.client for op in plan] == [0, 1, 2] * 3


class TestRun:
    def test_digest_replays_bit_identically(self, quick_report):
        replay = run_loadgen(**QUICK)
        assert replay.run_digest == quick_report.run_digest
        assert replay.outcomes == quick_report.outcomes
        assert replay.degradation == quick_report.degradation

    def test_different_seed_different_digest(self, quick_report):
        other = run_loadgen(**{**QUICK, "seed": 8})
        assert other.run_digest != quick_report.run_digest

    def test_report_accounts_every_op(self, quick_report):
        assert (quick_report.ingest_count + quick_report.read_count
                == quick_report.ops)
        assert sum(quick_report.outcomes.values()) \
            == quick_report.read_count
        assert quick_report.ingest_clips_per_second > 0

    def test_degradation_never_silently_wrong(self, quick_report):
        """The acceptance invariant: at ages where the raw device read
        fails, service reads still succeed (possibly concealed) or
        refuse — no silent garbage."""
        assert quick_report.degradation
        aged = quick_report.degradation[-1]
        assert aged["t_days"] == 100000.0
        assert not aged["raw_ok"]  # the raw read really fails out here
        served = {outcome: count
                  for outcome, count in aged["outcomes"].items()}
        assert served
        assert set(served) <= {"clean", "corrected", "concealed",
                               "refused"}
        # At least one read per grid point actually returned frames.
        successes = sum(count for outcome, count in served.items()
                        if outcome != "refused")
        assert successes > 0

    def test_to_dict_is_json_shaped(self, quick_report):
        import json

        data = quick_report.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["run_digest"] == quick_report.run_digest
