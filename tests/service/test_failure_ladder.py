"""End-to-end read failure ladder through the service.

The four rungs, each exercised through a real ``VideoObjectStore``
against its shard pool — no mocks:

1. corrected — the device re-read ladder recovers detected-
   uncorrectable blocks;
2. concealed — with the ladder off, surviving damage routes into the
   decoder's concealment path and still yields frames;
3. refused — corrupting ciphertext bytes on a shard behind the
   device's back produces a read the device calls clean but whose
   integrity hash mismatches: the service refuses rather than serve
   silently wrong frames;
4. quarantine — a chaos-armed device-fault storm quarantines the
   shards it hits without failing reads of unrelated keys placed
   elsewhere.
"""

import numpy as np
import pytest

from repro.runtime import chaos
from repro.service import Keyring, ShardPool, VideoObjectStore, stream_key
from repro.video import SceneConfig, synthesize_scene

#: Deep retention overhang where BCH-6 block failures are likely.
AGED_DAYS = 100000.0


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


def _store(**pool_kwargs):
    store = VideoObjectStore(pool=ShardPool(**pool_kwargs),
                             keyring=Keyring(seed=5))
    return store, store.put("alice", _clip(1))


def test_retry_ladder_yields_corrected():
    store, object_id = _store(count=2, read_retries=2)
    store.pool.set_age(AGED_DAYS)
    for seed in range(50):
        result = store.get("alice", object_id,
                           rng=np.random.default_rng(seed))
        assert result.outcome != "refused"
        if result.outcome == "corrected":
            assert result.retry_successes > 0
            assert result.video is not None
            return
    pytest.fail("no seed in 0..49 produced a corrected read at "
                f"t={AGED_DAYS:g}d with retries armed")


def test_uncorrectable_damage_is_concealed():
    store, object_id = _store(count=2, read_retries=0)
    store.pool.set_age(AGED_DAYS)
    for seed in range(50):
        result = store.get("alice", object_id,
                           rng=np.random.default_rng(seed))
        assert result.outcome != "refused"
        if result.outcome == "concealed":
            assert result.failed_blocks > 0
            assert result.concealed_streams
            # Concealment still returns every frame, degraded not
            # absent.
            assert result.video is not None and len(result.video) == 4
            assert result.psnr_db is not None
            return
    pytest.fail("no seed in 0..49 produced a concealed read at "
                f"t={AGED_DAYS:g}d with retries off")


def test_substrate_corruption_is_refused_not_served():
    store, object_id = _store(count=2)
    record = store.record("alice", object_id)
    protected = [name for name in record.stream_sha if name != "None"]
    assert protected, "clip too small to exercise a protected stream"
    name = protected[0]
    key = stream_key("alice", object_id, name)
    # Rot ciphertext bytes behind the device's back on *every* replica:
    # a nominal-age read reports clean, but the bytes are not what was
    # written anywhere, so no replica walk can save the read.
    for shard_id in record.replica_chain(name):
        shard = store.pool.shard(shard_id)
        blob = bytearray(shard.blobs[key])
        blob[0] ^= 0xFF
        shard.blobs[key] = bytes(blob)
    result = store.get("alice", object_id,
                       rng=np.random.default_rng(0))
    assert result.outcome == "refused"
    assert "integrity hash mismatch" in result.refusal_reason
    assert result.video is None and result.psnr_db is None
    assert any("refused" in event.detail
               for event in store.audit.events("read"))


def test_chaos_fault_storm_quarantines_only_the_hit_shards():
    # Six shards: with two replicas per stream a bystander whose full
    # replica set avoids the victim's still exists.
    store = VideoObjectStore(
        pool=ShardPool(count=6, quarantine_after=3),
        keyring=Keyring(seed=5))
    victim_id = store.put("alice", _clip(1))

    def replica_union(object_id):
        record = store.record("alice", object_id)
        return {sid for name in record.stream_sha
                for sid in record.replica_chain(name)}

    victim_shards = replica_union(victim_id)
    # Find a second object whose full replica set avoids the victim's.
    bystander_id = None
    for seed in range(2, 16):
        candidate = store.put("alice", _clip(seed))
        shards = replica_union(candidate)
        if not (shards & victim_shards):
            bystander_id, bystander_shards = candidate, shards
            break
    assert bystander_id is not None, \
        "no clip seed placed disjointly from the victim"
    chaos.arm(chaos.ChaosPolicy(seed=0, device_fault_rate=1.0))
    try:
        for attempt in range(3):
            result = store.get(
                "alice", victim_id,
                rng=np.random.default_rng(100 + attempt))
            # Chaos damage is escalated, never silent: every faulted
            # read either conceals or refuses.
            assert result.outcome in ("concealed", "refused")
    finally:
        chaos.disarm()
    quarantined = set(store.pool.quarantined())
    assert quarantined
    assert quarantined <= victim_shards
    # Unrelated keys on other shards keep reading normally.
    assert not (quarantined & bystander_shards)
    result = store.get("alice", bystander_id,
                       rng=np.random.default_rng(0))
    assert result.outcome in ("clean", "corrected")
    assert result.video is not None
