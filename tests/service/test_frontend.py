"""Tests for the async front-end: queueing, batching, backpressure."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceOverloadError
from repro.service import (
    Keyring,
    ServiceFrontend,
    ShardPool,
    VideoObjectStore,
)
from repro.video import SceneConfig, synthesize_scene


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


def _store():
    return VideoObjectStore(pool=ShardPool(count=2),
                            keyring=Keyring(seed=5))


class TestIngest:
    def test_ingest_resolves_to_store_object(self):
        store = _store()

        async def run():
            frontend = ServiceFrontend(store, queue_depth=8,
                                       ingest_batch=4)
            await frontend.start()
            ids = await asyncio.gather(
                frontend.ingest("alice", _clip(1)),
                frontend.ingest("alice", _clip(2)),
                frontend.ingest("bob", _clip(3)))
            await frontend.stop()
            return ids

        ids = asyncio.run(run())
        assert len(set(ids)) == 3
        assert store.record("alice", ids[0]) is not None
        assert store.record("bob", ids[2]) is not None

    def test_queued_batch_matches_sequential_ingest(self):
        """Batched encode through the queue is bit-identical to
        ingesting one clip at a time (content addresses agree)."""
        batched, sequential = _store(), _store()

        async def run(frontend, clips):
            await frontend.start()
            ids = await asyncio.gather(
                *(frontend.ingest("alice", clip) for clip in clips))
            await frontend.stop()
            return list(ids)

        clips = [_clip(seed) for seed in (1, 2, 3, 4)]
        ids_batched = asyncio.run(run(
            ServiceFrontend(batched, queue_depth=8, ingest_batch=4),
            clips))
        ids_sequential = [sequential.put("alice", clip)
                          for clip in clips]
        assert ids_batched == ids_sequential

    def test_ingest_before_start_is_an_overload(self):
        frontend = ServiceFrontend(_store())
        with pytest.raises(ServiceOverloadError):
            asyncio.run(frontend.ingest("alice", _clip(1)))


class TestBackpressure:
    def test_full_queue_sheds_with_overload_error(self):
        store = _store()

        async def run():
            frontend = ServiceFrontend(store, queue_depth=1)
            # A queue with no worker draining it: the first ingest
            # occupies the single slot, the second must be shed.
            frontend._queue = asyncio.Queue(maxsize=1)
            first = asyncio.ensure_future(
                frontend.ingest("alice", _clip(1)))
            await asyncio.sleep(0)  # let it enqueue
            with pytest.raises(ServiceOverloadError):
                await frontend.ingest("alice", _clip(2))
            first.cancel()

        asyncio.run(run())
        assert store.audit.events("overload")


class TestReads:
    def test_read_through_frontend_matches_store(self):
        store = _store()
        object_id = store.put("alice", _clip(1))

        async def run():
            frontend = ServiceFrontend(store)
            await frontend.start()
            result = await frontend.read(
                "alice", object_id, rng=np.random.default_rng(0))
            await frontend.stop()
            return result

        direct = store.get("alice", object_id,
                           rng=np.random.default_rng(0))
        via_frontend = asyncio.run(run())
        assert via_frontend.outcome == direct.outcome
        assert via_frontend.psnr_db == pytest.approx(direct.psnr_db)
