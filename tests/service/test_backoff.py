"""Front-end retry/backoff ladder and hedged reads, on a fake clock."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServiceOverloadError, TransientShardError
from repro.obs import metrics as obs_metrics
from repro.runtime import chaos
from repro.service import (
    Keyring,
    ServiceFrontend,
    ShardPool,
    VideoObjectStore,
)
from repro.video import SceneConfig, synthesize_scene


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


def _frontend(replicas=2, **kwargs):
    store = VideoObjectStore(pool=ShardPool(count=4),
                             keyring=Keyring(seed=5), replicas=replicas)
    return ServiceFrontend(store, **kwargs)


def _counter(name: str) -> int:
    snapshot = obs_metrics.get_registry().snapshot()["counters"]
    return int(snapshot.get(name, 0))


class TestBackoffSchedule:
    def test_deterministic_exponential_no_jitter(self):
        frontend = _frontend(retry_attempts=4, backoff_ms=50)
        assert frontend.backoff_delays() == [0.05, 0.1, 0.2]
        assert frontend.backoff_delays() == frontend.backoff_delays()

    def test_single_attempt_never_sleeps(self):
        frontend = _frontend(retry_attempts=1)
        assert frontend.backoff_delays() == []

    def test_total_backoff_is_bounded(self):
        frontend = _frontend(retry_attempts=5, backoff_ms=100)
        delays = frontend.backoff_delays()
        assert sum(delays) == pytest.approx(0.1 + 0.2 + 0.4 + 0.8)


class TestRetryLadder:
    def test_transient_faults_retry_until_success(self):
        frontend = _frontend(retry_attempts=3, backoff_ms=10)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            # Flake the first two shard reads: attempt 1 sees every
            # replica flake, attempt 2 survives via the replica walk.
            chaos.arm(chaos.ChaosPolicy(seed=0,
                                        shard_flake_reads=(0, 1)))
            try:
                result = await frontend.read_with_retry(
                    "alice", object_id,
                    rng=np.random.default_rng(0), sleep=fake_sleep)
            finally:
                chaos.disarm()
            await frontend.stop()
            return result

        result = asyncio.run(scenario())
        assert result.outcome != "refused"
        assert slept == [0.01]

    def test_exhausted_retries_reraise_the_fault(self):
        frontend = _frontend(replicas=1, retry_attempts=2, backoff_ms=10)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            chaos.arm(chaos.ChaosPolicy(
                seed=0, shard_flake_reads=tuple(range(64))))
            try:
                with pytest.raises(TransientShardError):
                    await frontend.read_with_retry(
                        "alice", object_id,
                        rng=np.random.default_rng(0), sleep=fake_sleep)
            finally:
                chaos.disarm()
            await frontend.stop()

        before = _counter("service_read_retries_exhausted_total")
        asyncio.run(scenario())
        assert slept == [0.01]
        assert _counter("service_read_retries_exhausted_total") == \
            before + 1

    def test_refusals_are_answers_not_faults(self):
        frontend = _frontend(replicas=1, retry_attempts=3, backoff_ms=10)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            record = frontend.store.record("alice", object_id)
            from repro.service import stream_key
            for name in record.stream_sha:
                key = stream_key("alice", object_id, name)
                for shard in frontend.store.pool.shards.values():
                    if shard.has(key):
                        blob = bytearray(shard.blobs[key])
                        blob[0] ^= 0xFF
                        shard.blobs[key] = bytes(blob)
            result = await frontend.read_with_retry(
                "alice", object_id, rng=np.random.default_rng(0),
                sleep=fake_sleep)
            await frontend.stop()
            return result

        result = asyncio.run(scenario())
        assert result.outcome == "refused"
        assert slept == []  # a refusal is never retried

    def test_overload_walks_the_whole_ladder_then_reraises(self):
        # A never-started front-end sheds every ingest: the ladder must
        # sleep the full deterministic schedule, then re-raise.
        frontend = _frontend(retry_attempts=3, backoff_ms=10)
        slept = []

        async def fake_sleep(seconds):
            slept.append(seconds)

        async def scenario():
            with pytest.raises(ServiceOverloadError):
                await frontend.ingest_with_retry(
                    "alice", _clip(1), sleep=fake_sleep)

        asyncio.run(scenario())
        assert slept == [0.01, 0.02]


class TestHedgedReads:
    def test_hedge_fires_after_deadline(self):
        frontend = _frontend(replicas=2)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            before = _counter("service_hedged_reads_total")
            result = await frontend.read_hedged(
                "alice", object_id, rng=np.random.default_rng(0),
                hedge_after_s=0.0,
                hedge_rng=np.random.default_rng(1))
            await frontend.stop()
            return before, result

        before, result = asyncio.run(scenario())
        assert result.outcome != "refused"
        assert _counter("service_hedged_reads_total") == before + 1

    def test_fast_primary_never_hedges(self):
        frontend = _frontend(replicas=2)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            before = _counter("service_hedged_reads_total")
            result = await frontend.read_hedged(
                "alice", object_id, rng=np.random.default_rng(0),
                hedge_after_s=30.0)
            await frontend.stop()
            return before, result

        before, result = asyncio.run(scenario())
        assert result.outcome != "refused"
        assert _counter("service_hedged_reads_total") == before


class TestRepairDaemon:
    def test_daemon_drains_the_backlog(self):
        frontend = _frontend(replicas=2, repair_interval_s=0.01)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            frontend.store.repair.enqueue("alice", object_id)
            for _ in range(100):
                if frontend.store.repair.backlog() == 0:
                    break
                await asyncio.sleep(0.02)
            backlog = frontend.store.repair.backlog()
            await frontend.stop()
            return backlog

        assert asyncio.run(scenario()) == 0

    def test_manual_repair_pass_reports(self):
        frontend = _frontend(replicas=2)

        async def scenario():
            await frontend.start()
            object_id = await frontend.ingest("alice", _clip(1))
            frontend.store.repair.enqueue("alice", object_id)
            report = await frontend.repair_pass()
            await frontend.stop()
            return report

        report = asyncio.run(scenario())
        assert report.tickets_drained == 1
        assert report.backlog == 0
