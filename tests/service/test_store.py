"""Tests for the content-addressed object store."""

import numpy as np
import pytest

from repro.errors import AccessDeniedError, ServiceError, StaleKeyError
from repro.service import (
    Keyring,
    ShardPool,
    VideoObjectStore,
    stream_key,
)
from repro.video import SceneConfig, synthesize_scene


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


@pytest.fixture(scope="module")
def store():
    """One store with two alice objects and one bob object."""
    store = VideoObjectStore(pool=ShardPool(count=4),
                             keyring=Keyring(seed=5))
    ids = store.put_many("alice", [_clip(1), _clip(2)])
    bob_id = store.put("bob", _clip(1))
    return store, ids, bob_id


class TestWritePath:
    def test_object_id_is_content_address(self, store):
        the_store, ids, bob_id = store
        # Same content, different tenants: same address, separate
        # records under separate keys.
        assert ids[0] == bob_id
        assert the_store.record("alice", ids[0]) is not \
            the_store.record("bob", bob_id)

    def test_same_content_dedupes_within_tenant(self, store):
        the_store, ids, _ = store
        before = len(the_store)
        again = the_store.put("alice", _clip(1))
        assert again == ids[0]
        assert len(the_store) == before
        assert the_store.audit.events("dedupe")

    def test_ciphertext_differs_per_tenant(self, store):
        the_store, ids, bob_id = store
        alice = the_store.record("alice", ids[0])
        bob = the_store.record("bob", bob_id)
        # Same plaintext partition, different tenant keys.
        assert alice.stream_sha != bob.stream_sha

    def test_streams_placed_by_the_ring(self, store):
        the_store, ids, _ = store
        record = the_store.record("alice", ids[0])
        for name, shard_id in record.placement.items():
            key = stream_key("alice", ids[0], name)
            assert the_store.pool.place(key).shard_id == shard_id
            assert the_store.pool.shard(shard_id).has(key)

    def test_shards_hold_ciphertext_not_plaintext(self, store):
        the_store, ids, _ = store
        record = the_store.record("alice", ids[0])
        for name, shard_id in record.placement.items():
            blob = the_store.pool.shard(shard_id).blobs[
                stream_key("alice", ids[0], name)]
            plain = record.protected.streams[name]
            if len(plain) >= 8:  # tiny streams could collide by luck
                assert blob != plain


class TestReadPath:
    def test_nominal_read_is_usable(self, store):
        the_store, ids, _ = store
        result = the_store.get("alice", ids[0],
                               rng=np.random.default_rng(0))
        assert result.outcome in ("clean", "corrected")
        assert result.video is not None
        assert len(result.video) == 4
        assert result.psnr_db is not None and result.psnr_db > 30.0

    def test_unknown_object_errors(self, store):
        the_store, _, _ = store
        with pytest.raises(ServiceError):
            the_store.get("alice", "no-such-object")

    def test_foreign_reader_denied_until_shared(self, store):
        the_store, ids, _ = store
        with pytest.raises(AccessDeniedError):
            the_store.get("alice", ids[1], reader="mallory",
                          rng=np.random.default_rng(0))
        assert the_store.audit.events("denied")
        the_store.keyring.share("alice", "mallory")
        result = the_store.get("alice", ids[1], reader="mallory",
                               rng=np.random.default_rng(0))
        assert result.outcome in ("clean", "corrected")
        the_store.keyring.revoke("alice", "mallory")

    def test_retired_key_fails_both_paths(self):
        store = VideoObjectStore(pool=ShardPool(count=2),
                                 keyring=Keyring(seed=9))
        object_id = store.put("carol", _clip(3))
        store.keyring.retire("carol")
        with pytest.raises(StaleKeyError):
            store.get("carol", object_id,
                      rng=np.random.default_rng(0))
        with pytest.raises(StaleKeyError):
            store.put("carol", _clip(4))

    def test_audit_covers_ingest_and_reads(self, store):
        the_store, ids, _ = store
        kinds = {event.kind for event in the_store.audit}
        assert {"ingest", "read"} <= kinds
        lines = the_store.audit.to_jsonl().splitlines()
        assert len(lines) == len(the_store.audit)
