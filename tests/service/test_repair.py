"""The repair queue, placement scan, and the deterministic repair pass."""

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.runtime import chaos
from repro.service import (
    Keyring,
    RepairQueue,
    ShardPool,
    VideoObjectStore,
    replication_health,
    run_repair_pass,
    scan_placement,
    stream_key,
)
from repro.service.shards import QUARANTINED
from repro.video import SceneConfig, synthesize_scene


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


def _store(replicas=2, count=4, **pool_kwargs):
    store = VideoObjectStore(pool=ShardPool(count=count, **pool_kwargs),
                             keyring=Keyring(seed=5), replicas=replicas)
    return store, store.put("alice", _clip(1))


def _counter(name: str) -> int:
    snapshot = obs_metrics.get_registry().snapshot()["counters"]
    return int(snapshot.get(name, 0))


class TestRepairQueue:
    def test_fifo_and_dedupe(self):
        queue = RepairQueue()
        assert queue.enqueue("a", "x")
        assert not queue.enqueue("a", "x")  # deduped while pending
        assert queue.enqueue("a", "y")
        assert queue.backlog() == 2
        first = queue.pop()
        assert (first.tenant, first.object_id) == ("a", "x")
        # Popping releases the dedupe hold.
        assert queue.enqueue("a", "x")
        assert queue.pop().object_id == "y"

    def test_pop_empty_returns_none(self):
        assert RepairQueue().pop() is None


class TestQuarantineDrain:
    def test_drain_restores_replica_count_bit_identically(self):
        store, object_id = _store(replicas=2)
        record = store.record("alice", object_id)
        originals = {
            name: store.pool.shard(record.placement[name]).blobs[
                stream_key("alice", object_id, name)]
            for name in record.stream_sha}
        victim = record.placement[sorted(record.stream_sha)[0]]
        store.pool.shard(victim).health = QUARANTINED

        report = run_repair_pass(store)
        assert report.scan_enqueued == 1
        assert report.objects_repaired == 1
        assert victim in report.drained_shards
        assert len(store.pool.shard(victim).blobs) == 0
        # Every stream is back at full replica width on healthy shards,
        # and every copy is bit-identical to what was written.
        for name in record.stream_sha:
            chain = record.replica_chain(name)
            assert len(chain) == 2
            assert victim not in chain
            key = stream_key("alice", object_id, name)
            for sid in chain:
                assert store.pool.shard(sid).blobs[key] == originals[name]
        health = replication_health(store)
        assert health["under_replicated"] == 0
        assert health["backlog"] == 0

    def test_repair_charges_cell_writes_and_resets_age(self):
        store, object_id = _store(replicas=2)
        record = store.record("alice", object_id)
        name = sorted(record.stream_sha)[0]
        victim = record.placement[name]
        store.pool.advance_all(1000.0)
        store.pool.shard(victim).health = QUARANTINED
        before = _counter("service_repair_cell_writes_total")
        report = run_repair_pass(store)
        assert report.cell_writes > 0
        assert _counter("service_repair_cell_writes_total") == \
            before + report.cell_writes
        for sid in store.record("alice", object_id).replica_chain(name):
            shard = store.pool.shard(sid)
            key = stream_key("alice", object_id, name)
            # The rewrite reprogrammed the cells at day 1000: the key
            # reads as freshly written despite the shard's age.
            assert shard._key_age(key) == 0.0
            assert shard.repairs > 0
            assert shard.last_repair_day == 1000.0

    def test_converges_and_second_pass_is_a_noop(self):
        store, _ = _store(replicas=2)
        record = store.objects()[0]
        victim = record.placement[sorted(record.stream_sha)[0]]
        store.pool.shard(victim).health = QUARANTINED
        run_repair_pass(store)
        second = run_repair_pass(store)
        assert second.scan_enqueued == 0
        assert second.tickets_drained == 0
        assert second.streams_rewritten == 0
        assert second.backlog == 0


class TestRepairUnderChaos:
    def test_repair_under_bursts_never_serves_miscorrected(self):
        store, object_id = _store(replicas=2)
        before = _counter("storage_miscorrected_blocks_total")
        chaos.arm(chaos.ChaosPolicy(seed=3, device_burst_rate=0.9,
                                    device_burst_blocks=3))
        try:
            for attempt in range(3):
                result = store.get(
                    "alice", object_id,
                    rng=np.random.default_rng(attempt))
                assert result.outcome != "refused"
            run_repair_pass(store)
            result = store.get("alice", object_id,
                               rng=np.random.default_rng(99))
            assert result.video is not None
        finally:
            chaos.disarm()
        assert _counter("storage_miscorrected_blocks_total") == before

    def test_repair_never_propagates_tampered_bytes(self):
        store, object_id = _store(replicas=2)
        record = store.record("alice", object_id)
        name = sorted(record.stream_sha)[0]
        key = stream_key("alice", object_id, name)
        chain = record.replica_chain(name)
        pristine = store.pool.shard(chain[0]).blobs[key]
        # Tamper the primary's at-rest blob, then force a repair.
        tampered = bytearray(pristine)
        tampered[0] ^= 0xFF
        store.pool.shard(chain[0]).blobs[key] = bytes(tampered)
        store.repair.enqueue("alice", object_id)
        run_repair_pass(store, scan=False)
        # The verified secondary was the donor: the primary's copy is
        # pristine again, not the tampered bytes.
        for sid in store.record("alice", object_id).replica_chain(name):
            assert store.pool.shard(sid).blobs[key] == pristine

    def test_all_copies_tampered_is_unrepairable(self):
        store, object_id = _store(replicas=2)
        record = store.record("alice", object_id)
        name = sorted(record.stream_sha)[0]
        key = stream_key("alice", object_id, name)
        for sid in store.pool.shards:
            shard = store.pool.shard(sid)
            if shard.has(key):
                blob = bytearray(shard.blobs[key])
                blob[0] ^= 0xFF
                shard.blobs[key] = bytes(blob)
        before = _counter("service_repair_unrepairable_total")
        store.repair.enqueue("alice", object_id)
        report = run_repair_pass(store, scan=False)
        assert report.unrepairable_streams >= 1
        assert _counter("service_repair_unrepairable_total") > before


class TestScanAndLimits:
    def test_scan_is_quiet_on_a_healthy_store(self):
        store, _ = _store(replicas=2)
        scanned, enqueued = scan_placement(store)
        assert scanned == 1
        assert enqueued == 0

    def test_limit_bounds_the_drain(self):
        store, _ = _store(replicas=2)
        for index in range(2, 5):
            store.put("alice", _clip(index))
        for record in store.objects():
            store.repair.enqueue(record.tenant, record.object_id)
        report = run_repair_pass(store, limit=2, scan=False)
        assert report.tickets_drained == 2
        assert report.backlog == 2

    def test_retired_object_ticket_is_skipped(self):
        store, _ = _store(replicas=2)
        store.repair.enqueue("alice", "no-such-object")
        report = run_repair_pass(store, scan=False)
        assert report.tickets_drained == 1
        assert report.objects_repaired == 0


class TestDeterminism:
    def test_repair_pass_replays_bit_identically(self):
        states = []
        for _ in range(2):
            store, object_id = _store(replicas=2)
            record = store.record("alice", object_id)
            victim = record.placement[sorted(record.stream_sha)[0]]
            store.pool.shard(victim).health = QUARANTINED
            report = run_repair_pass(store)
            blobs = {
                (sid, key): shard.blobs[key]
                for sid, shard in sorted(store.pool.shards.items())
                for key in sorted(shard.blobs)}
            states.append((report.to_dict(), blobs))
        assert states[0] == states[1]
