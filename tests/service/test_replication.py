"""Replica placement and the escalating replicated read ladder."""

import numpy as np
import pytest

from repro.errors import ServiceError, TransientShardError
from repro.obs import metrics as obs_metrics
from repro.runtime import chaos
from repro.service import (
    HashRing,
    Keyring,
    ShardPool,
    VideoObjectStore,
    stream_key,
)
from repro.video import SceneConfig, synthesize_scene


def _clip(seed: int):
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=4, seed=seed))


def _counter(name: str) -> int:
    snapshot = obs_metrics.get_registry().snapshot()["counters"]
    return int(snapshot.get(name, 0))


class TestPlaceN:
    IDS = [f"shard-{i}" for i in range(6)]

    def test_replicas_are_distinct_shards(self):
        ring = HashRing(self.IDS)
        for key in ("a", "b", "stream/9", "x" * 40):
            chain = ring.place_n(key, 3)
            assert len(chain) == 3
            assert len(set(chain)) == 3

    def test_primary_is_stable_across_r(self):
        ring = HashRing(self.IDS)
        for key in map(str, range(32)):
            primary = ring.place(key)
            for r in (1, 2, 3, 4):
                assert ring.place_n(key, r)[0] == primary

    def test_r_one_matches_single_placement(self):
        ring = HashRing(self.IDS)
        for key in map(str, range(32)):
            assert ring.place_n(key, 1) == (ring.place(key),)

    def test_chain_is_a_prefix_of_longer_chains(self):
        ring = HashRing(self.IDS)
        for key in map(str, range(16)):
            full = ring.place_n(key, 4)
            for r in (1, 2, 3):
                assert full[:r] == ring.place_n(key, r)

    def test_r_clamped_to_pool_width(self):
        ring = HashRing(self.IDS[:2])
        assert len(ring.place_n("k", 5)) == 2

    def test_rejects_nonpositive_r(self):
        ring = HashRing(self.IDS)
        with pytest.raises(ServiceError):
            ring.place_n("k", 0)


class TestReplicatedWrites:
    def test_put_writes_every_replica(self):
        store = VideoObjectStore(pool=ShardPool(count=4),
                                 keyring=Keyring(seed=5), replicas=2)
        object_id = store.put("alice", _clip(1))
        record = store.record("alice", object_id)
        for name in record.stream_sha:
            chain = record.replica_chain(name)
            assert len(chain) == 2
            assert record.placement[name] == chain[0]
            key = stream_key("alice", object_id, name)
            blobs = [store.pool.shard(sid).blobs[key] for sid in chain]
            assert blobs[0] == blobs[1]

    def test_r_one_keeps_single_copy(self):
        store = VideoObjectStore(pool=ShardPool(count=4),
                                 keyring=Keyring(seed=5), replicas=1)
        object_id = store.put("alice", _clip(1))
        record = store.record("alice", object_id)
        for name in record.stream_sha:
            key = stream_key("alice", object_id, name)
            holders = [sid for sid in store.pool.shards
                       if store.pool.shard(sid).has(key)]
            assert holders == [record.placement[name]]


class TestReplicatedReads:
    def _stormed_store(self, replicas):
        store = VideoObjectStore(pool=ShardPool(count=4),
                                 keyring=Keyring(seed=5),
                                 replicas=replicas)
        object_id = store.put("alice", _clip(1))
        record = store.record("alice", object_id)
        # Storm the shard serving the most primaries.
        primaries = list(record.placement.values())
        victim = max(sorted(set(primaries)), key=primaries.count)
        return store, object_id, victim

    def test_storm_on_primary_escalates_to_secondary(self):
        store, object_id, victim = self._stormed_store(replicas=2)
        before = _counter("service_read_escalations_total")
        chaos.arm(chaos.ChaosPolicy(seed=0, shard_storm=victim))
        try:
            for attempt in range(3):
                result = store.get(
                    "alice", object_id,
                    rng=np.random.default_rng(100 + attempt))
                assert result.outcome != "refused"
                assert result.video is not None
        finally:
            chaos.disarm()
        assert _counter("service_read_escalations_total") > before

    def test_storm_at_r_one_stays_visible(self):
        store, object_id, victim = self._stormed_store(replicas=1)
        chaos.arm(chaos.ChaosPolicy(seed=0, shard_storm=victim))
        try:
            result = store.get("alice", object_id,
                               rng=np.random.default_rng(0))
            # No replica to walk to: the damage must surface, never be
            # served as a silently wrong read.
            assert result.outcome in ("concealed", "refused")
        finally:
            chaos.disarm()

    def test_escalated_read_enqueues_repair(self):
        store, object_id, victim = self._stormed_store(replicas=2)
        assert store.repair.backlog() == 0
        chaos.arm(chaos.ChaosPolicy(seed=0, shard_storm=victim))
        try:
            store.get("alice", object_id, rng=np.random.default_rng(0))
        finally:
            chaos.disarm()
        assert store.repair.backlog() == 1

    def test_all_replicas_flaking_raises_transient(self):
        store = VideoObjectStore(pool=ShardPool(count=4),
                                 keyring=Keyring(seed=5), replicas=1)
        object_id = store.put("alice", _clip(1))
        chaos.arm(chaos.ChaosPolicy(
            seed=0, shard_flake_reads=tuple(range(16))))
        try:
            with pytest.raises(TransientShardError):
                store.get("alice", object_id,
                          rng=np.random.default_rng(0))
        finally:
            chaos.disarm()

    def test_one_shot_flake_is_absorbed_by_the_replica_walk(self):
        store = VideoObjectStore(pool=ShardPool(count=4),
                                 keyring=Keyring(seed=5), replicas=2)
        object_id = store.put("alice", _clip(1))
        before = _counter("service_replica_read_faults_total")
        chaos.arm(chaos.ChaosPolicy(seed=0, shard_flake_reads=(0,)))
        try:
            result = store.get("alice", object_id,
                               rng=np.random.default_rng(0))
        finally:
            chaos.disarm()
        assert result.outcome != "refused"
        assert result.video is not None
        assert _counter("service_replica_read_faults_total") == before + 1

    def test_replicated_read_replays_bit_identically(self):
        outcomes = []
        for _ in range(2):
            store, object_id, victim = self._stormed_store(replicas=2)
            chaos.arm(chaos.ChaosPolicy(seed=7, shard_storm=victim))
            try:
                result = store.get("alice", object_id,
                                   rng=np.random.default_rng(3))
                outcomes.append(
                    (result.outcome, result.escalated_streams,
                     chaos.schedule_digest()))
            finally:
                chaos.disarm()
        assert outcomes[0] == outcomes[1]
