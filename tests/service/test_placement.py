"""Tests for the consistent-hash placement ring."""

import pytest

from repro.errors import ServiceError
from repro.service import HashRing


KEYS = [f"tenant-{i % 3}/object-{i:04d}/BCH-6" for i in range(600)]


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"])
        b = HashRing(["shard-0", "shard-1", "shard-2"])
        assert [a.place(k) for k in KEYS] == [b.place(k) for k in KEYS]

    def test_placement_independent_of_id_order(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"])
        b = HashRing(["shard-2", "shard-0", "shard-1"])
        assert a.placement(KEYS) == b.placement(KEYS)

    def test_spread_roughly_even(self):
        ring = HashRing([f"shard-{i}" for i in range(4)])
        counts = ring.spread(KEYS)
        assert sum(counts.values()) == len(KEYS)
        # 64 vnodes keeps every shard within a loose band of fair share.
        for count in counts.values():
            assert len(KEYS) * 0.10 < count < len(KEYS) * 0.45

    def test_growth_moves_only_a_fraction(self):
        before = HashRing([f"shard-{i}" for i in range(4)]).placement(KEYS)
        after = HashRing([f"shard-{i}" for i in range(5)]).placement(KEYS)
        moved = sum(1 for k in KEYS if before[k] != after[k])
        # Consistent hashing: ~1/5 of keys move to the new shard; a full
        # reshuffle would move ~4/5.
        assert moved < len(KEYS) * 0.40
        # ...and every moved key lands on the new shard only.
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "shard-4"

    def test_rejects_bad_construction(self):
        with pytest.raises(ServiceError):
            HashRing([])
        with pytest.raises(ServiceError):
            HashRing(["a", "a"])
        with pytest.raises(ServiceError):
            HashRing(["a"], vnodes=0)
