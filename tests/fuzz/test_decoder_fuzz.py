"""Decoder no-crash fuzz harness.

Two things are under test: the decoder's contract itself (a short clean
fuzz run must find nothing) and the harness's ability to detect and
persist violations (verified against deliberately broken decoders).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.codec import Decoder, EncodedVideo
from repro.errors import AnalysisError, BitstreamError
from repro.fuzz import (
    ALL_STRATEGIES,
    CONTAINER_STRATEGIES,
    PAYLOAD_STRATEGIES,
    STRATEGY_CONCEAL,
    FuzzReport,
    fuzz_decoder,
    replay_corpus,
)
from repro.runtime import alarm_capable

needs_alarm = pytest.mark.skipif(not alarm_capable(),
                                 reason="SIGALRM deadline unavailable")


class TestContractHolds:
    def test_short_clean_run(self, encoded_small):
        trials = 5 * len(ALL_STRATEGIES)
        report = fuzz_decoder(encoded_small, trials=trials, seed=3,
                              timeout=30.0)
        assert report.ok
        assert report.trials == trials
        assert report.hangs == 0
        # Round-robin scheduling exercises every strategy evenly.
        assert set(report.by_strategy) == set(ALL_STRATEGIES)
        assert all(count == 5 for count in report.by_strategy.values())

    def test_seeded_runs_agree(self, encoded_small):
        first = fuzz_decoder(encoded_small, trials=12, seed=9,
                             timeout=30.0)
        second = fuzz_decoder(encoded_small, trials=12, seed=9,
                              timeout=30.0)
        assert first.failures == second.failures
        assert first.by_strategy == second.by_strategy

    def test_payload_strategies_preserve_shape(self, encoded_small):
        # Payload corruption must decode to the clean geometry: the
        # harness would mask shape bugs if decode returned garbage.
        report = fuzz_decoder(encoded_small, trials=8, seed=1,
                              timeout=30.0, strategies=PAYLOAD_STRATEGIES)
        assert report.ok


class TestConcealContract:
    def test_conceal_trials_never_crash(self, encoded_small):
        # Payload flips + randomized damage maps through the concealing
        # decoder: no exception, full geometry, every trial.
        report = fuzz_decoder(encoded_small, trials=24, seed=11,
                              timeout=30.0, strategies=(STRATEGY_CONCEAL,))
        assert report.ok
        assert report.by_strategy == {STRATEGY_CONCEAL: 24}
        assert report.hangs == 0

    def test_recipe_persists_damage_map(self, encoded_small, tmp_path,
                                        monkeypatch):
        # Force a violation so the counterexample (with its damage map)
        # lands in the corpus.
        import repro.fuzz as fuzz_module

        def boom(decoded, encoded):
            raise AnalysisError("synthetic geometry violation")

        monkeypatch.setattr(fuzz_module, "_check_full_geometry", boom)
        corpus = tmp_path / "corpus"
        report = fuzz_decoder(encoded_small, trials=2, seed=4,
                              timeout=30.0, corpus_dir=corpus,
                              strategies=(STRATEGY_CONCEAL,))
        assert not report.ok
        recipes = sorted(corpus.glob("*.json"))
        assert recipes
        recipe = json.loads(recipes[0].read_text())
        assert recipe["strategy"] == STRATEGY_CONCEAL
        damage = recipe["damage"]
        assert damage  # at least one damaged frame
        for frame, ranges in damage.items():
            int(frame)  # JSON keys stringify the frame position
            for start, end in ranges:
                assert 0 <= start < end

    def test_replay_honors_recipe_damage(self, encoded_small, tmp_path,
                                         monkeypatch):
        import repro.fuzz as fuzz_module

        def boom(decoded, encoded):
            raise AnalysisError("synthetic geometry violation")

        corpus = tmp_path / "corpus"
        monkeypatch.setattr(fuzz_module, "_check_full_geometry", boom)
        fuzz_decoder(encoded_small, trials=2, seed=4, timeout=30.0,
                     corpus_dir=corpus, strategies=(STRATEGY_CONCEAL,))
        monkeypatch.undo()
        # The real decoder honors the persisted damage map and meets the
        # geometry obligation, so the historical failure is cleared.
        report = replay_corpus(corpus, timeout=30.0)
        assert report.ok
        assert set(report.by_strategy) == {STRATEGY_CONCEAL}

    def test_replay_conceal_rule_is_strict(self, encoded_small, tmp_path,
                                           monkeypatch):
        import repro.fuzz as fuzz_module

        def boom(decoded, encoded):
            raise AnalysisError("synthetic geometry violation")

        corpus = tmp_path / "corpus"
        monkeypatch.setattr(fuzz_module, "_check_full_geometry", boom)
        fuzz_decoder(encoded_small, trials=1, seed=4, timeout=30.0,
                     corpus_dir=corpus, strategies=(STRATEGY_CONCEAL,))
        # The geometry obligation applies on replay too: with the check
        # still failing, the historical counterexample reproduces.
        report = replay_corpus(corpus, timeout=30.0)
        assert not report.ok
        assert report.failures[0].exception == "AnalysisError"


class _CrashingDecoder:
    """Violates the contract with an internal error on every decode."""

    def decode(self, encoded):
        raise IndexError("list index out of range")


class _HangingDecoder:
    def decode(self, encoded):
        time.sleep(60)


class _BitstreamRejectingDecoder:
    def decode(self, encoded):
        raise BitstreamError("rejected")


class TestViolationDetection:
    def test_crash_detected_and_persisted(self, encoded_small, tmp_path):
        corpus = tmp_path / "corpus"
        report = fuzz_decoder(encoded_small, trials=4, seed=0,
                              timeout=30.0, corpus_dir=corpus,
                              strategies=PAYLOAD_STRATEGIES,
                              decoder=_CrashingDecoder())
        assert not report.ok
        assert len(report.failures) == 4
        for failure in report.failures:
            assert failure.exception == "IndexError"
            assert failure.corpus_path
        # Counterexamples replay: each .rvap deserializes and crashes
        # the same way, and the .json recipe names the trial.
        blobs = sorted(corpus.glob("*.rvap"))
        recipes = sorted(corpus.glob("*.json"))
        assert blobs and len(blobs) == len(recipes)
        victim = EncodedVideo.deserialize(blobs[0].read_bytes())
        with pytest.raises(IndexError):
            _CrashingDecoder().decode(victim)
        recipe = json.loads(recipes[0].read_text())
        assert recipe["exception"] == "IndexError"
        assert recipe["strategy"] in PAYLOAD_STRATEGIES
        assert recipe["seed"] == 0

    def test_counterexample_decodes_cleanly_with_real_decoder(
            self, encoded_small, tmp_path):
        corpus = tmp_path / "corpus"
        fuzz_decoder(encoded_small, trials=2, seed=0, timeout=30.0,
                     corpus_dir=corpus, strategies=(PAYLOAD_STRATEGIES[0],),
                     decoder=_CrashingDecoder())
        blob = next(iter(corpus.glob("*.rvap"))).read_bytes()
        video = Decoder().decode(EncodedVideo.deserialize(blob))
        assert len(video) == len(encoded_small.frames)

    @needs_alarm
    def test_hang_detected(self, encoded_small):
        report = fuzz_decoder(encoded_small, trials=1, seed=0,
                              timeout=0.2,
                              strategies=(PAYLOAD_STRATEGIES[0],),
                              decoder=_HangingDecoder())
        assert not report.ok
        assert report.hangs == 1
        assert report.failures[0].exception == "TrialTimeout"

    def test_bitstream_error_is_violation_for_payload_damage(
            self, encoded_small):
        # Headers are intact under payload strategies, so even the
        # codec's own rejection type breaks the contract there.
        report = fuzz_decoder(encoded_small, trials=2, seed=0,
                              timeout=30.0,
                              strategies=(PAYLOAD_STRATEGIES[0],),
                              decoder=_BitstreamRejectingDecoder())
        assert not report.ok
        assert report.failures[0].exception == "BitstreamError"

    def test_bitstream_error_allowed_for_container_damage(
            self, encoded_small):
        report = fuzz_decoder(encoded_small, trials=6, seed=0,
                              timeout=30.0,
                              strategies=CONTAINER_STRATEGIES,
                              decoder=_BitstreamRejectingDecoder())
        assert report.ok


class TestCorpusReplay:
    def _populate(self, encoded_small, tmp_path):
        """A corpus of real counterexamples from a crashing decoder."""
        corpus = tmp_path / "corpus"
        fuzz_decoder(encoded_small, trials=4, seed=0, timeout=30.0,
                     corpus_dir=corpus, strategies=PAYLOAD_STRATEGIES,
                     decoder=_CrashingDecoder())
        assert list(corpus.glob("*.rvap"))
        return corpus

    def test_fixed_decoder_clears_the_corpus(self, encoded_small, tmp_path):
        corpus = self._populate(encoded_small, tmp_path)
        report = replay_corpus(corpus, timeout=30.0)
        assert report.ok
        assert report.trials == len(list(corpus.glob("*.rvap")))
        assert set(report.by_strategy) <= set(PAYLOAD_STRATEGIES)

    def test_still_broken_decoder_reproduces(self, encoded_small, tmp_path):
        corpus = self._populate(encoded_small, tmp_path)
        report = replay_corpus(corpus, timeout=30.0,
                               decoder=_CrashingDecoder())
        assert not report.ok
        assert len(report.failures) == report.trials
        for failure in report.failures:
            assert failure.exception == "IndexError"
            assert failure.corpus_path  # names the offending blob

    def test_payload_strategy_rule_is_strict_on_replay(
            self, encoded_small, tmp_path):
        # BitstreamError is a violation for a payload-strategy blob,
        # exactly as in a live fuzz trial.
        corpus = self._populate(encoded_small, tmp_path)
        report = replay_corpus(corpus, timeout=30.0,
                               decoder=_BitstreamRejectingDecoder())
        assert not report.ok

    def test_missing_recipe_falls_back_to_lenient_rule(
            self, encoded_small, tmp_path):
        corpus = self._populate(encoded_small, tmp_path)
        for recipe in corpus.glob("*.json"):
            recipe.unlink()
        report = replay_corpus(corpus, timeout=30.0,
                               decoder=_BitstreamRejectingDecoder())
        # without recipes the blobs count as container damage, where
        # BitstreamError is the documented rejection path
        assert report.ok
        assert set(report.by_strategy) == {"unknown"}

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            replay_corpus(tmp_path / "nope")

    def test_empty_corpus_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="no .rvap"):
            replay_corpus(tmp_path)

    @needs_alarm
    def test_replay_hang_detected(self, encoded_small, tmp_path):
        corpus = self._populate(encoded_small, tmp_path)
        report = replay_corpus(corpus, timeout=0.2,
                               decoder=_HangingDecoder())
        assert not report.ok
        assert report.hangs == report.trials


class TestValidation:
    def test_zero_trials_rejected(self, encoded_small):
        with pytest.raises(AnalysisError):
            fuzz_decoder(encoded_small, trials=0)

    def test_unknown_strategy_rejected(self, encoded_small):
        with pytest.raises(AnalysisError, match="unknown fuzz"):
            fuzz_decoder(encoded_small, trials=1, strategies=("wat",))

    def test_empty_strategies_rejected(self, encoded_small):
        with pytest.raises(AnalysisError):
            fuzz_decoder(encoded_small, trials=1, strategies=())

    def test_report_ok_property(self):
        assert FuzzReport(trials=1, elapsed_seconds=0.0).ok
