"""Tests for SSIM."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.metrics import gaussian_kernel, ssim, ssim_map, video_ssim
from repro.video import VideoSequence


def _texture(seed=0, size=48):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (size, size)).astype(np.uint8)


class TestGaussianKernel:
    def test_normalized(self):
        kernel = gaussian_kernel(11, 1.5)
        assert kernel.sum() == pytest.approx(1.0)

    def test_symmetric(self):
        kernel = gaussian_kernel(11, 1.5)
        assert np.allclose(kernel, kernel[::-1])

    def test_rejects_even_size(self):
        with pytest.raises(VideoFormatError):
            gaussian_kernel(10)


class TestSSIM:
    def test_identical_is_one(self):
        img = _texture()
        assert ssim(img, img) == pytest.approx(1.0)

    def test_noise_reduces_ssim(self):
        img = _texture()
        noisy = np.clip(img.astype(int)
                        + np.random.default_rng(1).normal(0, 20, img.shape),
                        0, 255).astype(np.uint8)
        value = ssim(img, noisy)
        assert 0.0 < value < 0.99

    def test_more_noise_lower_ssim(self):
        img = _texture()
        rng = np.random.default_rng(2)
        noise = rng.normal(0, 1, img.shape)
        mild = np.clip(img + 5 * noise, 0, 255).astype(np.uint8)
        harsh = np.clip(img + 40 * noise, 0, 255).astype(np.uint8)
        assert ssim(img, mild) > ssim(img, harsh)

    def test_map_shape_valid_region(self):
        img = _texture(size=48)
        out = ssim_map(img, img)
        assert out.shape == (38, 38)  # 48 - 11 + 1

    def test_too_small_frame_raises(self):
        tiny = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(VideoFormatError):
            ssim(tiny, tiny)

    def test_shape_mismatch_raises(self):
        with pytest.raises(VideoFormatError):
            ssim(_texture(size=48), _texture(size=32))


class TestVideoSSIM:
    def test_identical_video(self):
        video = VideoSequence([_texture(0), _texture(1)])
        assert video_ssim(video, video) == pytest.approx(1.0)
