"""Tests for PSNR."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.metrics import PSNR_CAP, mse, psnr, quality_change_db, video_psnr
from repro.video import VideoSequence


def _flat(value):
    return np.full((32, 32), value, dtype=np.uint8)


class TestMSE:
    def test_zero_for_identical(self):
        assert mse(_flat(10), _flat(10)) == 0.0

    def test_constant_offset(self):
        assert mse(_flat(10), _flat(13)) == pytest.approx(9.0)

    def test_shape_mismatch(self):
        with pytest.raises(VideoFormatError):
            mse(_flat(0), np.zeros((16, 16), dtype=np.uint8))


class TestPSNR:
    def test_identical_capped(self):
        assert psnr(_flat(100), _flat(100)) == PSNR_CAP

    def test_known_value(self):
        # MSE = 25 -> PSNR = 10 log10(255^2/25) = 34.15 dB
        assert psnr(_flat(10), _flat(15)) == pytest.approx(34.1514, abs=1e-3)

    def test_monotone_in_error(self):
        assert psnr(_flat(10), _flat(12)) > psnr(_flat(10), _flat(20))

    def test_worst_case(self):
        assert psnr(_flat(0), _flat(255)) == pytest.approx(0.0, abs=1e-9)


class TestVideoPSNR:
    def test_frame_average(self):
        ref = VideoSequence([_flat(10), _flat(10)])
        test = VideoSequence([_flat(10), _flat(15)])
        expected = (PSNR_CAP + psnr(_flat(10), _flat(15))) / 2
        assert video_psnr(ref, test) == pytest.approx(expected)

    def test_quality_change_negative_for_damage(self):
        raw = VideoSequence([_flat(10)])
        clean = VideoSequence([_flat(11)])
        damaged = VideoSequence([_flat(40)])
        assert quality_change_db(raw, clean, damaged) < 0

    def test_quality_change_zero_for_same(self):
        raw = VideoSequence([_flat(10)])
        clean = VideoSequence([_flat(11)])
        assert quality_change_db(raw, clean, clean) == 0.0
