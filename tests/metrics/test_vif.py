"""Tests for VIFP."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.metrics import video_vifp, vifp
from repro.video import VideoSequence


def _texture(seed=0, size=96):
    rng = np.random.default_rng(seed)
    base = rng.normal(128, 30, (size // 8, size // 8))
    img = np.kron(base, np.ones((8, 8)))
    return np.clip(img + rng.normal(0, 8, img.shape), 0, 255).astype(np.uint8)


class TestVIFP:
    def test_identical_is_one(self):
        img = _texture()
        assert vifp(img, img) == pytest.approx(1.0, abs=1e-6)

    def test_noise_reduces_fidelity(self):
        img = _texture()
        rng = np.random.default_rng(3)
        noisy = np.clip(img + rng.normal(0, 25, img.shape), 0,
                        255).astype(np.uint8)
        assert vifp(img, noisy) < 0.9

    def test_monotone_in_noise(self):
        img = _texture()
        rng = np.random.default_rng(4)
        noise = rng.normal(0, 1, img.shape)
        mild = np.clip(img + 5 * noise, 0, 255).astype(np.uint8)
        harsh = np.clip(img + 50 * noise, 0, 255).astype(np.uint8)
        assert vifp(img, mild) > vifp(img, harsh)

    def test_shape_mismatch(self):
        with pytest.raises(VideoFormatError):
            vifp(_texture(size=96), _texture(size=32))

    def test_invalid_scales(self):
        img = _texture()
        with pytest.raises(VideoFormatError):
            vifp(img, img, scales=0)

    def test_video_wrapper(self):
        video = VideoSequence([_texture(0), _texture(1)])
        assert video_vifp(video, video) == pytest.approx(1.0, abs=1e-6)
