"""Tests for MS-SSIM."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.metrics import ms_ssim, video_ms_ssim
from repro.video import VideoSequence


def _texture(seed=0, size=96):
    rng = np.random.default_rng(seed)
    base = rng.normal(128, 30, (size // 8, size // 8))
    img = np.kron(base, np.ones((8, 8)))
    img += rng.normal(0, 10, img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


class TestMSSSIM:
    def test_identical_is_one(self):
        img = _texture()
        assert ms_ssim(img, img) == pytest.approx(1.0, abs=1e-9)

    def test_damage_reduces_score(self):
        img = _texture()
        damaged = img.copy()
        damaged[20:60, 20:60] = 0
        assert ms_ssim(img, damaged) < 0.95

    def test_ordering_with_damage_extent(self):
        img = _texture()
        small = img.copy()
        small[20:30, 20:30] = 0
        large = img.copy()
        large[10:70, 10:70] = 0
        assert ms_ssim(img, small) > ms_ssim(img, large)

    def test_small_frames_use_fewer_scales(self):
        img = _texture(size=32)
        assert ms_ssim(img, img) == pytest.approx(1.0, abs=1e-9)

    def test_too_small_raises(self):
        tiny = np.zeros((8, 8), dtype=np.uint8)
        with pytest.raises(VideoFormatError):
            ms_ssim(tiny, tiny)

    def test_empty_weights_raise(self):
        img = _texture(size=32)
        with pytest.raises(VideoFormatError):
            ms_ssim(img, img, weights=())

    def test_video_wrapper(self):
        video = VideoSequence([_texture(0), _texture(1)])
        assert video_ms_ssim(video, video) == pytest.approx(1.0, abs=1e-9)
