"""Tests for multi-stream encryption."""

import pytest

from repro.crypto import StreamEncryptor, derive_stream_iv
from repro.errors import CryptoError

KEY = bytes(range(16))
MASTER_IV = bytes(range(50, 66))


class TestIvDerivation:
    def test_deterministic(self):
        assert derive_stream_iv(MASTER_IV, 3, KEY) == \
            derive_stream_iv(MASTER_IV, 3, KEY)

    def test_streams_get_distinct_ivs(self):
        ivs = {derive_stream_iv(MASTER_IV, i, KEY) for i in range(8)}
        assert len(ivs) == 8

    def test_master_iv_matters(self):
        assert derive_stream_iv(MASTER_IV, 0, KEY) != \
            derive_stream_iv(bytes(16), 0, KEY)

    def test_rejects_bad_inputs(self):
        with pytest.raises(CryptoError):
            derive_stream_iv(b"short", 0, KEY)
        with pytest.raises(CryptoError):
            derive_stream_iv(MASTER_IV, -1, KEY)


class TestStreamEncryptor:
    def test_roundtrip(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        streams = {0: b"stream zero", 1: b"stream one!", 5: bytes(100)}
        encrypted = encryptor.encrypt_streams(streams)
        assert encryptor.decrypt_streams(encrypted) == streams

    def test_sizes_preserved(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        streams = {0: bytes(37)}
        encrypted = encryptor.encrypt_streams(streams)
        assert len(encrypted[0]) == 37

    def test_ciphertext_actually_differs(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        encrypted = encryptor.encrypt_streams({0: bytes(64)})
        assert encrypted[0] != bytes(64)

    def test_same_plaintext_different_streams_differ(self):
        """Per-stream IV derivation: identical stream contents must not
        encrypt identically (requirement 1 across streams)."""
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        encrypted = encryptor.encrypt_streams({0: bytes(64), 1: bytes(64)})
        assert encrypted[0] != encrypted[1]

    def test_list_interface(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        payloads = [b"alpha", b"beta", b""]
        assert encryptor.decrypt_list(encryptor.encrypt_list(payloads)) == \
            payloads

    def test_ofb_supported(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV, mode="ofb")
        streams = {0: b"hello world"}
        assert encryptor.decrypt_streams(
            encryptor.encrypt_streams(streams)) == streams

    def test_incompatible_mode_rejected(self):
        with pytest.raises(CryptoError):
            StreamEncryptor(key=KEY, master_iv=MASTER_IV, mode="CBC")

    def test_bad_key_sizes_rejected(self):
        with pytest.raises(CryptoError):
            StreamEncryptor(key=b"short", master_iv=MASTER_IV)
        with pytest.raises(CryptoError):
            StreamEncryptor(key=KEY, master_iv=b"short")

    def test_single_bit_flip_transparency(self):
        """Flipping a ciphertext bit flips exactly that plaintext bit:
        the property that lets approximate storage hold ciphertext."""
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        plaintext = bytes(128)
        encrypted = encryptor.encrypt_streams({0: plaintext})
        corrupted = bytearray(encrypted[0])
        corrupted[10] ^= 0x04
        decrypted = encryptor.decrypt_streams({0: bytes(corrupted)})[0]
        diff = sum(bin(a ^ b).count("1")
                   for a, b in zip(decrypted, plaintext))
        assert diff == 1


class TestRandomAccessStreams:
    def test_decrypt_at_matches_the_slice(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        plaintext = bytes(range(256)) * 2
        ciphertext = encryptor.encrypt_streams({2: plaintext})[2]
        for start, end in ((0, 64), (17, 93), (500, 512)):
            assert encryptor.decrypt_at(2, ciphertext[start:end],
                                        start) == plaintext[start:end]

    def test_streams_keep_distinct_offset_keystreams(self):
        encryptor = StreamEncryptor(key=KEY, master_iv=MASTER_IV)
        plaintext = bytes(64)
        encrypted = encryptor.encrypt_streams({0: plaintext, 1: plaintext})
        # Same window, same plaintext, different stream: different bytes.
        assert encryptor.decrypt_at(0, encrypted[1][16:32], 16) != plaintext[16:32]
