"""Tests for the mode compatibility analysis (Section 5 verdicts)."""

import numpy as np
import pytest

from repro.crypto import (
    analyze_all_modes,
    analyze_mode,
    check_privacy,
    compatible_modes,
    measure_propagation,
)

KEY = bytes(range(16))
IV = bytes(range(100, 116))


class TestPrivacy:
    def test_ecb_fails(self):
        assert not check_privacy("ECB", KEY, IV)

    @pytest.mark.parametrize("name", ["CBC", "OFB", "CTR"])
    def test_chained_modes_pass(self, name):
        assert check_privacy(name, KEY, IV)


class TestPropagation:
    def test_ofb_amplification_is_one(self):
        measurement = measure_propagation("OFB", KEY, IV,
                                          rng=np.random.default_rng(0))
        assert measurement.mean_plaintext_bits_damaged == 1.0
        assert measurement.max_suffix_blocks_damaged == 0

    def test_ctr_amplification_is_one(self):
        measurement = measure_propagation("CTR", KEY, IV,
                                          rng=np.random.default_rng(0))
        assert measurement.amplification == 1.0

    def test_cbc_amplifies_by_half_block(self):
        measurement = measure_propagation("CBC", KEY, IV,
                                          rng=np.random.default_rng(0))
        # ~64 garbled bits in the flipped block + 1 mirrored bit.
        assert 40 <= measurement.mean_plaintext_bits_damaged <= 90
        assert measurement.max_suffix_blocks_damaged == 1

    def test_ecb_damage_stays_in_block(self):
        measurement = measure_propagation("ECB", KEY, IV,
                                          rng=np.random.default_rng(0))
        assert measurement.max_suffix_blocks_damaged == 0
        assert measurement.mean_blocks_damaged == 1.0


class TestVerdicts:
    def test_paper_conclusion(self):
        """The paper's Section 5.2: ECB fails privacy, CBC fails
        approximability, OFB and CTR meet all three requirements."""
        verdicts = analyze_all_modes(rng=np.random.default_rng(1))
        assert not verdicts["ECB"].privacy
        assert not verdicts["ECB"].compatible
        assert verdicts["CBC"].privacy
        assert not verdicts["CBC"].approximation_transparent
        assert not verdicts["CBC"].compatible
        assert verdicts["OFB"].compatible
        assert verdicts["CTR"].compatible

    def test_compatible_modes_helper(self):
        assert sorted(compatible_modes()) == ["CTR", "OFB"]

    def test_analyze_mode_defaults(self):
        verdict = analyze_mode("CTR")
        assert verdict.mode == "CTR"
        assert verdict.compatible
