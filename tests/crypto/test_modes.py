"""Tests for the block-cipher modes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import CBC, CTR, ECB, MODES, OFB, make_mode
from repro.crypto.modes import CFB
from repro.errors import CryptoError

KEY = bytes(range(16))
IV = bytes(range(100, 116))


def _flip_bit(data: bytes, bit: int) -> bytes:
    out = bytearray(data)
    out[bit // 8] ^= 0x80 >> (bit % 8)
    return bytes(out)


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(MODES))
    def test_block_aligned_roundtrip(self, name):
        mode = make_mode(name, KEY, IV)
        plaintext = bytes(range(64))
        decrypted = make_mode(name, KEY, IV).decrypt(mode.encrypt(plaintext))
        assert decrypted[:64] == plaintext

    @pytest.mark.parametrize("name", ["OFB", "CTR"])
    def test_keystream_modes_preserve_length(self, name):
        mode = make_mode(name, KEY, IV)
        plaintext = b"exactly 21 bytes here"
        ciphertext = mode.encrypt(plaintext)
        assert len(ciphertext) == len(plaintext)
        assert make_mode(name, KEY, IV).decrypt(ciphertext) == plaintext

    @given(data=st.binary(min_size=0, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_ctr_roundtrip_property(self, data):
        assert CTR(KEY, IV).decrypt(CTR(KEY, IV).encrypt(data)) == data


class TestModeStructure:
    def test_ecb_equal_blocks_leak(self):
        plaintext = bytes(16) * 4
        ciphertext = ECB(KEY).encrypt(plaintext)
        blocks = [ciphertext[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 1  # the dictionary-attack weakness

    def test_cbc_equal_blocks_differ(self):
        plaintext = bytes(16) * 4
        ciphertext = CBC(KEY, IV).encrypt(plaintext)
        blocks = [ciphertext[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_different_ivs_different_ciphertexts(self):
        plaintext = bytes(32)
        a = CTR(KEY, IV).encrypt(plaintext)
        b = CTR(KEY, bytes(16)).encrypt(plaintext)
        assert a != b

    def test_iv_required(self):
        with pytest.raises(CryptoError):
            CBC(KEY, b"short")

    def test_unknown_mode(self):
        with pytest.raises(CryptoError):
            make_mode("XYZ", KEY, IV)


class TestErrorPropagation:
    """The paper's Section 5 behaviours, asserted bit-exactly."""

    def test_ofb_single_bit_flips_single_bit(self):
        plaintext = bytes(64)
        ciphertext = OFB(KEY, IV).encrypt(plaintext)
        for bit in (0, 100, 511):
            decrypted = OFB(KEY, IV).decrypt(_flip_bit(ciphertext, bit))
            diff = [i for i in range(64 * 8)
                    if (decrypted[i // 8] >> (7 - i % 8)) & 1
                    != (plaintext[i // 8] >> (7 - i % 8)) & 1]
            assert diff == [bit]

    def test_ctr_single_bit_flips_single_bit(self):
        plaintext = bytes(64)
        ciphertext = CTR(KEY, IV).encrypt(plaintext)
        decrypted = CTR(KEY, IV).decrypt(_flip_bit(ciphertext, 77))
        assert decrypted != plaintext
        diff = sum(bin(a ^ b).count("1")
                   for a, b in zip(decrypted, plaintext))
        assert diff == 1

    def test_cbc_damages_block_and_one_bit(self):
        plaintext = bytes(64)
        ciphertext = CBC(KEY, IV).encrypt(plaintext)
        decrypted = CBC(KEY, IV).decrypt(_flip_bit(ciphertext, 0))
        # Block 0 garbled.
        assert decrypted[:16] != plaintext[:16]
        # Block 1 has exactly the mirrored single bit flipped.
        diff_b1 = sum(bin(a ^ b).count("1")
                      for a, b in zip(decrypted[16:32], plaintext[16:32]))
        assert diff_b1 == 1
        # Blocks 2+ untouched: no unbounded chain.
        assert decrypted[32:] == plaintext[32:]

    def test_cfb_damages_bit_and_next_block(self):
        """CFB mirrors CBC's failure with the roles swapped: the flipped
        block keeps a single mirrored bit error, the *next* block is
        garbled (the flip feeds its keystream)."""
        plaintext = bytes(64)
        ciphertext = CFB(KEY, IV).encrypt(plaintext)
        decrypted = CFB(KEY, IV).decrypt(_flip_bit(ciphertext, 3))
        diff_b0 = sum(bin(a ^ b).count("1")
                      for a, b in zip(decrypted[:16], plaintext[:16]))
        assert diff_b0 == 1
        assert decrypted[16:32] != plaintext[16:32]
        assert decrypted[32:] == plaintext[32:]

    def test_ecb_damage_confined_to_block(self):
        plaintext = bytes(64)
        ciphertext = ECB(KEY).encrypt(plaintext)
        decrypted = ECB(KEY).decrypt(_flip_bit(ciphertext, 0))
        assert decrypted[:16] != plaintext[:16]
        assert decrypted[16:] == plaintext[16:]


class TestRandomAccessDecryption:
    """Keystream modes must decrypt an arbitrary byte window in place."""

    PLAINTEXT = bytes(range(256)) * 3

    @pytest.mark.parametrize("name", ["OFB", "CTR"])
    @pytest.mark.parametrize("window", [(0, 16), (5, 21), (31, 33),
                                        (100, 768), (767, 768), (40, 40)])
    def test_range_decrypt_matches_the_slice(self, name, window):
        start, end = window
        ciphertext = make_mode(name, KEY, IV).encrypt(self.PLAINTEXT)
        mode = make_mode(name, KEY, IV)
        assert mode.decrypt_range(ciphertext[start:end], start) == \
            self.PLAINTEXT[start:end]

    @pytest.mark.parametrize("name", ["ECB", "CBC", "CFB"])
    def test_chained_modes_refuse_random_access(self, name):
        with pytest.raises(CryptoError):
            make_mode(name, KEY, IV).decrypt_range(bytes(16), 16)
