"""Tests for the AES-128 implementation (FIPS-197)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AES128, expand_key
from repro.crypto.aes import INV_SBOX, SBOX
from repro.errors import CryptoError


class TestSBox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value


class TestKeyExpansion:
    def test_fips197_appendix_a(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = expand_key(key)
        assert len(round_keys) == 11
        assert bytes(round_keys[0]) == key
        assert bytes(round_keys[10]).hex() == \
            "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_rejects_wrong_key_size(self):
        with pytest.raises(CryptoError):
            expand_key(b"short")


class TestBlockCipher:
    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        aes = AES128(key)
        assert aes.encrypt_block(plaintext) == expected
        assert aes.decrypt_block(expected) == plaintext

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_avalanche(self):
        """One flipped plaintext bit must change ~half the ciphertext."""
        key = bytes(range(16))
        aes = AES128(key)
        a = aes.encrypt_block(bytes(16))
        flipped = bytearray(16)
        flipped[0] = 0x80
        b = aes.encrypt_block(bytes(flipped))
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 40 <= differing <= 88

    def test_wrong_block_size_rejected(self):
        aes = AES128(bytes(16))
        with pytest.raises(CryptoError):
            aes.encrypt_block(b"short")
        with pytest.raises(CryptoError):
            aes.decrypt_block(b"short")
