"""Tests for per-GOP streaming importance computation (Section 4.3.1)."""

import numpy as np
import pytest

from repro.codec import Encoder, EncoderConfig
from repro.core import compute_importance, compute_importance_streaming
from repro.video import SceneConfig, synthesize_scene


@pytest.fixture(scope="module")
def long_video():
    return synthesize_scene(SceneConfig(width=64, height=48, num_frames=15,
                                        seed=17, num_objects=2))


class TestStreamingEquivalence:
    @pytest.mark.parametrize("gop_size,bframes,slices", [
        (5, 0, 1),   # several closed GOPs
        (5, 2, 1),   # open GOPs: B-frames straddle I-frames
        (5, 0, 2),   # slices
        (15, 0, 1),  # single GOP == global computation
        (1, 0, 1),   # all-I video: every frame its own segment
    ])
    def test_matches_global_computation(self, long_video, gop_size,
                                        bframes, slices):
        config = EncoderConfig(crf=26, gop_size=gop_size, bframes=bframes,
                               slices=slices)
        encoded = Encoder(config).encode(long_video)
        global_result = compute_importance(encoded.trace)
        streaming_result = compute_importance_streaming(encoded.trace)
        assert np.allclose(global_result.values, streaming_result.values,
                           atol=1e-9)
        assert np.allclose(global_result.compensation,
                           streaming_result.compensation, atol=1e-9)

    def test_segments_actually_split(self, long_video):
        """With 3 closed GOPs the streaming variant must not be a
        degenerate single segment: check that cross-GOP importance is
        bounded by GOP size (errors cannot cross I-frames)."""
        config = EncoderConfig(crf=26, gop_size=5)
        encoded = Encoder(config).encode(long_video)
        result = compute_importance_streaming(encoded.trace)
        mbs_per_frame = encoded.trace.macroblocks_per_frame
        per_gop_cap = 5 * mbs_per_frame * mbs_per_frame  # loose bound
        assert result.max_importance() <= per_gop_cap

    def test_reports_timing(self, long_video):
        encoded = Encoder(EncoderConfig(crf=26, gop_size=5)).encode(
            long_video)
        result = compute_importance_streaming(encoded.trace)
        assert result.analysis_seconds > 0
