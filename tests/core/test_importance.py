"""Tests for the importance algorithm (the paper's Section 4.3)."""

import numpy as np
import pytest

from repro.codec import Encoder, EncoderConfig, FrameType
from repro.codec.types import (
    DependencyRecord,
    EncodingTrace,
    FrameTrace,
    MacroblockTrace,
)
from repro.core import (
    compute_importance,
    importance_is_scan_monotone,
    macroblock_bits,
)


def _chain_trace():
    """Figure-5-like: frame 0 (2 MBs, coding chain), frame 1 references
    frame 0's MB 1 fully."""
    trace = EncodingTrace(mb_rows=1, mb_cols=2)
    trace.frames.append(FrameTrace(
        coded_index=0, display_index=0, frame_type=FrameType.I,
        payload_bits=100, slice_starts=[0],
        macroblocks=[MacroblockTrace(0, 0, 0, 50),
                     MacroblockTrace(0, 1, 50, 100)]))
    trace.frames.append(FrameTrace(
        coded_index=1, display_index=1, frame_type=FrameType.P,
        payload_bits=40, slice_starts=[0],
        macroblocks=[
            MacroblockTrace(1, 0, 0, 20, dependencies=[
                DependencyRecord((0, 1), 256)]),
            MacroblockTrace(1, 1, 20, 40, dependencies=[
                DependencyRecord((1, 0), 256)]),
        ]))
    return trace


class TestHandComputedValues:
    def test_chain(self):
        """Verify the two-pass algorithm against hand computation.

        Compensation: node (1,1) = 1; (1,0) = 1 + 1*1 = 2;
        (0,1) = 1 + 1*2 = 3; (0,0) = 1.
        Coding: frame 1: (1,1) = 1; (1,0) = 2 + 1 = 3.
        frame 0: (0,1) = 3; (0,0) = 1 + 3 = 4.
        """
        result = compute_importance(_chain_trace())
        assert result.compensation[0].tolist() == [1.0, 3.0]
        assert result.compensation[1].tolist() == [2.0, 1.0]
        assert result.values[0].tolist() == [4.0, 3.0]
        assert result.values[1].tolist() == [3.0, 1.0]

    def test_weighted_split(self):
        """A 50/50 referenced MB transfers half its dependent's area."""
        trace = EncodingTrace(mb_rows=1, mb_cols=2)
        trace.frames.append(FrameTrace(
            coded_index=0, display_index=0, frame_type=FrameType.I,
            payload_bits=20, slice_starts=[0],
            macroblocks=[MacroblockTrace(0, 0, 0, 10),
                         MacroblockTrace(0, 1, 10, 20)]))
        trace.frames.append(FrameTrace(
            coded_index=1, display_index=1, frame_type=FrameType.P,
            payload_bits=10, slice_starts=[0],
            macroblocks=[
                MacroblockTrace(1, 0, 0, 5, dependencies=[
                    DependencyRecord((0, 0), 128),
                    DependencyRecord((0, 1), 128)]),
                MacroblockTrace(1, 1, 5, 10),
            ]))
        result = compute_importance(trace)
        assert result.compensation[0].tolist() == [1.5, 1.5]


class TestInvariantsOnRealVideo:
    def test_minimum_importance_is_one(self, importance_medium):
        assert importance_medium.values.min() >= 1.0 - 1e-9

    def test_scan_monotone(self, encoded_medium, importance_medium):
        """The pivot precondition: strictly decreasing in scan order."""
        assert importance_is_scan_monotone(encoded_medium.trace,
                                           importance_medium)

    def test_total_at_least_compensation(self, importance_medium):
        assert np.all(importance_medium.values
                      >= importance_medium.compensation - 1e-9)

    def test_i_frames_most_important(self, encoded_medium,
                                     importance_medium):
        """The first I-frame's first MB damages (almost) the whole GOP."""
        first_i = importance_medium.values[0, 0]
        assert first_i == importance_medium.values.max()

    def test_last_mb_of_last_frame_is_leaf(self, encoded_medium,
                                           importance_medium):
        """Nothing references it and nothing follows it: importance 1
        unless something references it (it is the last coded frame)."""
        last = importance_medium.values[-1, -1]
        assert last == pytest.approx(1.0)

    def test_bframes_are_unimportant(self, medium_video):
        """Unreferenced B-frames cap at the intra-frame coding chain:
        their max importance is far below anchors'."""
        config = EncoderConfig(crf=26, gop_size=12, bframes=2)
        encoded = Encoder(config).encode(medium_video)
        result = compute_importance(encoded.trace)
        b_frames = [f.coded_index for f in encoded.trace.frames
                    if f.frame_type == FrameType.B]
        anchors = [f.coded_index for f in encoded.trace.frames
                   if f.frame_type != FrameType.B]
        max_b = max(result.values[i].max() for i in b_frames)
        max_anchor = max(result.values[i].max() for i in anchors)
        mbs_per_frame = encoded.trace.macroblocks_per_frame
        assert max_b <= mbs_per_frame  # coding chain only
        assert max_anchor > max_b

    def test_analysis_time_recorded(self, importance_medium):
        assert importance_medium.analysis_seconds > 0


class TestMacroblockBits:
    def test_joins_every_mb(self, encoded_medium, importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        expected = len(encoded_medium.frames) * 24
        assert len(mb_bits) == expected

    def test_bits_total_at_most_payload(self, encoded_medium,
                                        importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        total = sum(mb.bit_end - mb.bit_start for mb in mb_bits)
        assert total <= encoded_medium.payload_bits

    def test_importance_attached(self, encoded_medium, importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        assert all(mb.importance >= 1.0 for mb in mb_bits)
