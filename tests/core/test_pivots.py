"""Tests for pivot tables."""

import pytest

from repro.codec import Encoder, EncoderConfig
from repro.core import (
    PAPER_TABLE1,
    UNIFORM_ASSIGNMENT,
    build_frame_pivots,
    compute_importance,
    macroblock_bits,
    total_pivot_bits,
)
from repro.core.pivots import FramePivots, Segment
from repro.errors import AnalysisError
from repro.storage import scheme_by_name


@pytest.fixture(scope="module")
def pivot_setup(encoded_medium, importance_medium):
    mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
    tables = build_frame_pivots(encoded_medium, mb_bits, PAPER_TABLE1)
    return encoded_medium, mb_bits, tables


class TestBuildPivots:
    def test_one_table_per_frame(self, pivot_setup):
        encoded, _mb_bits, tables = pivot_setup
        assert len(tables) == len(encoded.frames)

    def test_segments_cover_payload_exactly(self, pivot_setup):
        encoded, _mb_bits, tables = pivot_setup
        for frame, table in zip(encoded.frames, tables):
            covered = sum(s.bits for s in table.segments)
            assert covered == frame.payload_bits

    def test_few_segments_per_frame(self, pivot_setup):
        """The paper's point: a handful of pivots per frame, not one
        per macroblock."""
        encoded, _mb_bits, tables = pivot_setup
        menu_size = len(PAPER_TABLE1.distinct_schemes())
        for table in tables:
            assert len(table.segments) <= menu_size + 1

    def test_schemes_weaken_along_frame(self, pivot_setup):
        """Within a single-slice frame, protection only weakens."""
        _encoded, _mb_bits, tables = pivot_setup
        for table in tables:
            strengths = [scheme_by_name(s.scheme_name).t
                         for s in table.segments]
            assert strengths == sorted(strengths, reverse=True)

    def test_uniform_assignment_single_segment(self, encoded_medium,
                                               importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        tables = build_frame_pivots(encoded_medium, mb_bits,
                                    UNIFORM_ASSIGNMENT)
        for table in tables:
            assert len(table.segments) == 1

    def test_header_bits_small(self, pivot_setup):
        encoded, _mb_bits, tables = pivot_setup
        overhead = total_pivot_bits(tables)
        # "a few bytes per frame": well under 32 bytes each here.
        assert overhead < len(encoded.frames) * 32 * 8
        assert overhead < encoded.payload_bits * 0.05

    def test_sliced_frames_covered(self, medium_video):
        config = EncoderConfig(crf=26, gop_size=12, slices=2)
        encoded = Encoder(config).encode(medium_video)
        importance = compute_importance(encoded.trace)
        mb_bits = macroblock_bits(encoded.trace, importance)
        tables = build_frame_pivots(encoded, mb_bits, PAPER_TABLE1)
        for frame, table in zip(encoded.frames, tables):
            assert sum(s.bits for s in table.segments) == frame.payload_bits


class TestValidation:
    def test_gap_detected(self):
        table = FramePivots(frame_coded_index=0, payload_bits=100,
                            segments=[Segment(0, 40, "None"),
                                      Segment(50, 100, "None")])
        with pytest.raises(AnalysisError):
            table.validate()

    def test_wrong_total_detected(self):
        table = FramePivots(frame_coded_index=0, payload_bits=100,
                            segments=[Segment(0, 90, "None")])
        with pytest.raises(AnalysisError):
            table.validate()

    def test_wrong_start_detected(self):
        table = FramePivots(frame_coded_index=0, payload_bits=100,
                            segments=[Segment(10, 100, "None")])
        with pytest.raises(AnalysisError):
            table.validate()

    def test_empty_table_for_empty_payload(self):
        FramePivots(frame_coded_index=0, payload_bits=0).validate()

    def test_header_bits_formula(self):
        table = FramePivots(frame_coded_index=0, payload_bits=100,
                            segments=[Segment(0, 50, "None"),
                                      Segment(50, 100, "BCH-6")])
        assert table.header_bits() == 8 + 4 + 36
