"""Integration tests for the end-to-end approximate video store."""

import numpy as np
import pytest

from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore, UNIFORM_ASSIGNMENT
from repro.crypto import StreamEncryptor
from repro.errors import AnalysisError
from repro.metrics import video_psnr
from repro.storage import MLCCellModel
from repro.video import frames_equal

KEY = bytes(range(16))
MASTER_IV = bytes(range(16, 32))


@pytest.fixture(scope="module")
def store():
    return ApproximateVideoStore(config=EncoderConfig(crf=24, gop_size=8))


@pytest.fixture(scope="module")
def stored(store, small_video):
    return store.put(small_video)


class TestPut:
    def test_stored_artifacts(self, stored, small_video):
        assert stored.total_pixels == small_video.total_pixels
        assert not stored.encrypted
        assert stored.protected.streams.keys() == \
            stored.device_streams.keys()

    def test_density_report(self, stored):
        report = stored.density()
        assert 0 < report.cells_per_pixel < 1.0
        assert report.ecc_overhead < 0.3125  # cheaper than uniform BCH-16


class TestRead:
    def test_error_free_read_matches_reconstruct(self, store, stored):
        clean = store.reconstruct(stored)
        read = store.read(stored, inject_errors=False)
        assert frames_equal(read, clean)

    def test_read_with_errors_bounded_loss(self, store, stored,
                                           small_video):
        """At the paper's operating point storage errors are so rare on
        a small video that quality is essentially unaffected."""
        clean = store.reconstruct(stored)
        rng = np.random.default_rng(5)
        worst = min(video_psnr(clean, store.read(stored, rng=rng))
                    for _ in range(3))
        assert worst > 40.0

    def test_raw_mlc_without_ecc_is_disastrous(self, small_video):
        """Sanity check of the premise: storing everything raw at 1e-3
        visibly damages the video, which is why ECC exists at all."""
        from repro.core.assignment import ClassAssignment
        from repro.storage.ecc import NONE_SCHEME
        raw_everything = ClassAssignment(boundaries=(0,),
                                         schemes=(NONE_SCHEME,))
        store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            assignment=raw_everything)
        stored = store.put(small_video)
        clean = store.reconstruct(stored)
        rng = np.random.default_rng(6)
        damaged = store.read(stored, rng=rng)
        assert video_psnr(clean, damaged) < 40.0


class TestEncryptedStore:
    def test_roundtrip_with_encryption(self, small_video):
        store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            encryptor=StreamEncryptor(key=KEY, master_iv=MASTER_IV))
        stored = store.put(small_video)
        assert stored.encrypted
        clean = store.reconstruct(stored)
        read = store.read(stored, inject_errors=False)
        assert frames_equal(read, clean)

    def test_ciphertext_unreadable(self, small_video):
        plain_store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8))
        cipher_store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            encryptor=StreamEncryptor(key=KEY, master_iv=MASTER_IV))
        plain = plain_store.put(small_video)
        cipher = cipher_store.put(small_video)
        for name in plain.device_streams:
            if len(plain.device_streams[name]) >= 8:
                assert plain.device_streams[name] != \
                    cipher.device_streams[name]

    def test_requirement3_same_quality_encrypted_or_not(self,
                                                        small_video):
        """Paper requirement #3, end to end: flipping stored bits hurts
        an encrypted video exactly as much as an unencrypted one. Same
        rng seed -> same device flips -> identical decoded output."""
        plain_store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            cell_model=MLCCellModel(write_sigma=0.05))  # noisy substrate
        cipher_store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            cell_model=MLCCellModel(write_sigma=0.05),
            encryptor=StreamEncryptor(key=KEY, master_iv=MASTER_IV))
        plain = plain_store.put(small_video)
        cipher = cipher_store.put(small_video)
        out_plain = plain_store.read(plain,
                                     rng=np.random.default_rng(7))
        out_cipher = cipher_store.read(cipher,
                                       rng=np.random.default_rng(7))
        assert frames_equal(out_plain, out_cipher)

    def test_reading_encrypted_without_key_fails(self, small_video):
        keyed = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            encryptor=StreamEncryptor(key=KEY, master_iv=MASTER_IV))
        stored = keyed.put(small_video)
        keyless = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8))
        with pytest.raises(AnalysisError):
            keyless.read(stored, inject_errors=False)


class TestStreamingAnalysis:
    def test_streaming_put_identical(self, small_video):
        """GOP-by-GOP analysis yields the same streams and density."""
        batch = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=4))
        streaming = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=4),
            streaming_analysis=True)
        a = batch.put(small_video)
        b = streaming.put(small_video)
        assert a.protected.stream_bits == b.protected.stream_bits
        assert a.protected.streams == b.protected.streams
        assert a.density().cells == b.density().cells


class TestExactEcc:
    def test_exact_mode_end_to_end(self, small_video):
        """Real BCH encode/decode over real Monte Carlo cells: at the
        nominal substrate the protected video survives intact or nearly
        so (block failures at 1e-6 are essentially impossible here)."""
        store = ApproximateVideoStore(
            config=EncoderConfig(crf=28, gop_size=8), exact_ecc=True)
        stored = store.put(small_video)
        clean = store.reconstruct(stored)
        read = store.read(stored, rng=np.random.default_rng(12))
        # The only exposed bits are the tiny "None" stream (raw cells).
        assert video_psnr(clean, read) > 35.0


class TestUniformBaseline:
    def test_uniform_store_denser_than_slc_but_sparser_than_variable(
            self, small_video, stored):
        uniform_store = ApproximateVideoStore(
            config=EncoderConfig(crf=24, gop_size=8),
            assignment=UNIFORM_ASSIGNMENT)
        uniform = uniform_store.put(small_video)
        assert uniform.density().cells > stored.density().cells
