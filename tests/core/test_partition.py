"""Tests for bitstream partitioning into reliability streams."""

import numpy as np
import pytest

from repro.codec import Decoder
from repro.core import (
    PAPER_TABLE1,
    UNIFORM_ASSIGNMENT,
    merge_streams,
    partition_video,
)
from repro.errors import AnalysisError
from repro.video import frames_equal


@pytest.fixture(scope="module")
def protected(encoded_medium, importance_medium):
    return partition_video(encoded_medium, importance_medium, PAPER_TABLE1)


class TestPartition:
    def test_split_merge_identity(self, protected, encoded_medium):
        payloads = merge_streams(protected)
        assert payloads == encoded_medium.frame_payloads()

    def test_stream_bits_total_payload(self, protected, encoded_medium):
        assert sum(protected.stream_bits.values()) == \
            encoded_medium.payload_bits

    def test_stream_padding_at_most_seven_bits(self, protected):
        for name, data in protected.streams.items():
            assert 0 <= 8 * len(data) - protected.stream_bits[name] < 8

    def test_multiple_streams_exist(self, protected):
        """Real content spans several importance classes."""
        assert len(protected.streams) >= 2

    def test_weak_stream_holds_majority(self, protected):
        """Most storage sits in the cheap schemes — the effect the
        paper's savings rely on (Figure 10b)."""
        weak = sum(bits for name, bits in protected.stream_bits.items()
                   if name in ("None", "BCH-6", "BCH-7"))
        assert weak > 0.5 * sum(protected.stream_bits.values())

    def test_uniform_assignment_one_stream(self, encoded_medium,
                                           importance_medium):
        protected = partition_video(encoded_medium, importance_medium,
                                    UNIFORM_ASSIGNMENT)
        assert set(protected.streams) == {"BCH-16"}

    def test_requires_trace(self, encoded_medium, importance_medium):
        from repro.codec import EncodedVideo
        stripped = EncodedVideo(header=encoded_medium.header,
                                frames=encoded_medium.frames, trace=None)
        with pytest.raises(AnalysisError):
            partition_video(stripped, importance_medium, PAPER_TABLE1)


class TestMergeWithCorruption:
    def test_corrupted_streams_still_merge(self, protected,
                                           encoded_medium):
        rng = np.random.default_rng(0)
        corrupted = {}
        for name, data in protected.streams.items():
            buffer = bytearray(data)
            if buffer:
                buffer[int(rng.integers(0, len(buffer)))] ^= 0xFF
            corrupted[name] = bytes(buffer)
        payloads = merge_streams(protected, corrupted)
        assert [len(p) for p in payloads] == \
            [len(p) for p in encoded_medium.frame_payloads()]

    def test_corruption_lands_in_right_place(self, protected,
                                             encoded_medium):
        """Flipping a bit in the weakest stream must corrupt a payload
        bit attributed to a low-importance segment."""
        weakest = min(protected.stream_bits,
                      key=lambda name: protected.stream_bits[name])
        corrupted = dict(protected.streams)
        buffer = bytearray(corrupted[weakest])
        buffer[0] ^= 0x80
        corrupted[weakest] = bytes(buffer)
        merged = merge_streams(protected, corrupted)
        clean = encoded_medium.frame_payloads()
        diffs = sum(1 for a, b in zip(merged, clean) if a != b)
        assert diffs == 1

    def test_decodes_after_roundtrip(self, protected, encoded_medium,
                                     decoded_medium):
        payloads = merge_streams(protected)
        clone = encoded_medium.with_payloads(payloads)
        assert frames_equal(Decoder().decode(clone), decoded_medium)

    def test_missing_stream_rejected(self, protected):
        streams = dict(protected.streams)
        streams.pop(next(iter(streams)))
        with pytest.raises(AnalysisError):
            merge_streams(protected, streams)

    def test_resized_stream_rejected(self, protected):
        streams = dict(protected.streams)
        name = next(iter(streams))
        streams[name] = streams[name] + b"\x00"
        with pytest.raises(AnalysisError):
            merge_streams(protected, streams)


class TestDensity:
    def test_variable_cheaper_than_uniform(self, encoded_medium,
                                           importance_medium,
                                           medium_video):
        variable = partition_video(encoded_medium, importance_medium,
                                   PAPER_TABLE1)
        uniform = partition_video(encoded_medium, importance_medium,
                                  UNIFORM_ASSIGNMENT)
        dv = variable.density(medium_video.total_pixels)
        du = uniform.density(medium_video.total_pixels)
        assert dv.cells < du.cells
        assert dv.cells_per_pixel < du.cells_per_pixel

    def test_precise_bits_include_pivots(self, protected, encoded_medium):
        assert protected.precise_bits > encoded_medium.header_bits
