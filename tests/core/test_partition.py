"""Tests for bitstream partitioning into reliability streams."""

import numpy as np
import pytest

from repro.codec import Decoder
from repro.core import (
    PAPER_TABLE1,
    UNIFORM_ASSIGNMENT,
    map_stream_damage,
    merge_streams,
    partition_video,
)
from repro.errors import AnalysisError
from repro.video import frames_equal


@pytest.fixture(scope="module")
def protected(encoded_medium, importance_medium):
    return partition_video(encoded_medium, importance_medium, PAPER_TABLE1)


class TestPartition:
    def test_split_merge_identity(self, protected, encoded_medium):
        payloads = merge_streams(protected)
        assert payloads == encoded_medium.frame_payloads()

    def test_stream_bits_total_payload(self, protected, encoded_medium):
        assert sum(protected.stream_bits.values()) == \
            encoded_medium.payload_bits

    def test_stream_padding_at_most_seven_bits(self, protected):
        for name, data in protected.streams.items():
            assert 0 <= 8 * len(data) - protected.stream_bits[name] < 8

    def test_multiple_streams_exist(self, protected):
        """Real content spans several importance classes."""
        assert len(protected.streams) >= 2

    def test_weak_stream_holds_majority(self, protected):
        """Most storage sits in the cheap schemes — the effect the
        paper's savings rely on (Figure 10b)."""
        weak = sum(bits for name, bits in protected.stream_bits.items()
                   if name in ("None", "BCH-6", "BCH-7"))
        assert weak > 0.5 * sum(protected.stream_bits.values())

    def test_uniform_assignment_one_stream(self, encoded_medium,
                                           importance_medium):
        protected = partition_video(encoded_medium, importance_medium,
                                    UNIFORM_ASSIGNMENT)
        assert set(protected.streams) == {"BCH-16"}

    def test_requires_trace(self, encoded_medium, importance_medium):
        from repro.codec import EncodedVideo
        stripped = EncodedVideo(header=encoded_medium.header,
                                frames=encoded_medium.frames, trace=None)
        with pytest.raises(AnalysisError):
            partition_video(stripped, importance_medium, PAPER_TABLE1)


class TestMergeWithCorruption:
    def test_corrupted_streams_still_merge(self, protected,
                                           encoded_medium):
        rng = np.random.default_rng(0)
        corrupted = {}
        for name, data in protected.streams.items():
            buffer = bytearray(data)
            if buffer:
                buffer[int(rng.integers(0, len(buffer)))] ^= 0xFF
            corrupted[name] = bytes(buffer)
        payloads = merge_streams(protected, corrupted)
        assert [len(p) for p in payloads] == \
            [len(p) for p in encoded_medium.frame_payloads()]

    def test_corruption_lands_in_right_place(self, protected,
                                             encoded_medium):
        """Flipping a bit in the weakest stream must corrupt a payload
        bit attributed to a low-importance segment."""
        weakest = min(protected.stream_bits,
                      key=lambda name: protected.stream_bits[name])
        corrupted = dict(protected.streams)
        buffer = bytearray(corrupted[weakest])
        buffer[0] ^= 0x80
        corrupted[weakest] = bytes(buffer)
        merged = merge_streams(protected, corrupted)
        clean = encoded_medium.frame_payloads()
        diffs = sum(1 for a, b in zip(merged, clean) if a != b)
        assert diffs == 1

    def test_decodes_after_roundtrip(self, protected, encoded_medium,
                                     decoded_medium):
        payloads = merge_streams(protected)
        clone = encoded_medium.with_payloads(payloads)
        assert frames_equal(Decoder().decode(clone), decoded_medium)

    def test_missing_stream_rejected(self, protected):
        streams = dict(protected.streams)
        streams.pop(next(iter(streams)))
        with pytest.raises(AnalysisError):
            merge_streams(protected, streams)

    def test_resized_stream_rejected(self, protected):
        streams = dict(protected.streams)
        name = next(iter(streams))
        streams[name] = streams[name] + b"\x00"
        with pytest.raises(AnalysisError):
            merge_streams(protected, streams)


class TestDensity:
    def test_variable_cheaper_than_uniform(self, encoded_medium,
                                           importance_medium,
                                           medium_video):
        variable = partition_video(encoded_medium, importance_medium,
                                   PAPER_TABLE1)
        uniform = partition_video(encoded_medium, importance_medium,
                                  UNIFORM_ASSIGNMENT)
        dv = variable.density(medium_video.total_pixels)
        du = uniform.density(medium_video.total_pixels)
        assert dv.cells < du.cells
        assert dv.cells_per_pixel < du.cells_per_pixel

    def test_precise_bits_include_pivots(self, protected, encoded_medium):
        assert protected.precise_bits > encoded_medium.header_bits


class TestMapStreamDamage:
    """Stream-coordinate damage must project onto exactly the payload
    bits merge_streams would place those stream bits into."""

    def _diff_bits(self, merged, clean):
        """{frame: sorted payload-bit positions that differ}."""
        diffs = {}
        for index, (a, b) in enumerate(zip(merged, clean)):
            bits_a = np.unpackbits(np.frombuffer(a, dtype=np.uint8))
            bits_b = np.unpackbits(np.frombuffer(b, dtype=np.uint8))
            positions = np.nonzero(bits_a != bits_b)[0]
            if positions.size:
                diffs[index] = positions.tolist()
        return diffs

    def test_mapping_matches_merge_placement(self, protected,
                                             encoded_medium):
        # Flip every bit in one stream interval; the payload bits that
        # change must be exactly the mapped damage ranges.
        name = max(protected.stream_bits,
                   key=lambda n: protected.stream_bits[n])
        interval = (100, 1200)
        damage_map = map_stream_damage(protected, {name: [interval]})
        assert damage_map  # the interval lands somewhere

        bits = np.unpackbits(
            np.frombuffer(protected.streams[name], dtype=np.uint8)).copy()
        bits[interval[0]:interval[1]] ^= 1
        corrupted = dict(protected.streams)
        corrupted[name] = np.packbits(bits).tobytes()
        merged = merge_streams(protected, corrupted)
        diffs = self._diff_bits(merged, encoded_medium.frame_payloads())

        expected = {
            frame: sorted(pos for start, end in ranges
                          for pos in range(start, end))
            for frame, ranges in damage_map.items()
        }
        assert diffs == expected

    def test_ranges_sorted_and_coalesced(self, protected):
        name = max(protected.stream_bits,
                   key=lambda n: protected.stream_bits[n])
        damage_map = map_stream_damage(
            protected, {name: [(50, 300), (200, 400), (390, 600)]})
        merged_once = map_stream_damage(protected, {name: [(50, 600)]})
        assert damage_map == merged_once
        for ranges in damage_map.values():
            assert ranges == sorted(ranges)
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                assert e1 < s2  # strictly separated after coalescing

    def test_ranges_stay_inside_payloads(self, protected, encoded_medium):
        name = max(protected.stream_bits,
                   key=lambda n: protected.stream_bits[n])
        total = protected.stream_bits[name]
        damage_map = map_stream_damage(protected, {name: [(0, total)]})
        payload_bits = [f.payload_bits for f in encoded_medium.frames]
        for frame, ranges in damage_map.items():
            for start, end in ranges:
                assert 0 <= start < end <= payload_bits[frame]

    def test_empty_and_inverted_intervals_ignored(self, protected):
        name = next(iter(protected.streams))
        assert map_stream_damage(protected, {name: [(10, 10)]}) == {}
        assert map_stream_damage(protected, {name: [(20, 10)]}) == {}
        assert map_stream_damage(protected, {}) == {}

    def test_unknown_stream_rejected(self, protected):
        with pytest.raises(AnalysisError, match="unknown stream"):
            map_stream_damage(protected, {"BCH-99": [(0, 10)]})


class TestStreamRangesForFrames:
    def test_all_frames_cover_every_stream(self, protected):
        from repro.core import stream_ranges_for_frames
        positions = range(len(protected.encoded.frames))
        ranges = stream_ranges_for_frames(protected, positions)
        assert set(ranges) == set(protected.streams)
        for name, (lo, hi) in ranges.items():
            assert (lo, hi) == (0, protected.stream_bits[name])

    def test_single_frame_is_a_subwindow(self, protected):
        from repro.core import stream_ranges_for_frames
        ranges = stream_ranges_for_frames(protected, [0])
        assert ranges  # an I frame always lands in some stream
        for name, (lo, hi) in ranges.items():
            assert 0 <= lo < hi <= protected.stream_bits[name]

    def test_empty_input_is_empty(self, protected):
        from repro.core import stream_ranges_for_frames
        assert stream_ranges_for_frames(protected, []) == {}

    def test_out_of_range_positions_are_rejected(self, protected):
        from repro.core import stream_ranges_for_frames
        with pytest.raises(AnalysisError):
            stream_ranges_for_frames(
                protected, [len(protected.encoded.frames)])
