"""Property-based tests of VideoApp's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import Encoder, EncoderConfig
from repro.core import (
    ClassAssignment,
    compute_importance,
    importance_is_scan_monotone,
    merge_streams,
    partition_video,
)
from repro.storage import SCHEME_MENU
from repro.video import SceneConfig, synthesize_scene


@st.composite
def assignments(draw):
    """Random valid class assignments over the scheme menu."""
    menu = sorted(SCHEME_MENU, key=lambda s: s.t)
    count = draw(st.integers(1, 4))
    scheme_indices = sorted(draw(st.lists(
        st.integers(0, len(menu) - 1), min_size=count, max_size=count)))
    boundaries = sorted(draw(st.lists(
        st.integers(0, 30), min_size=count, max_size=count, unique=True)))
    return ClassAssignment(
        boundaries=tuple(boundaries),
        schemes=tuple(menu[i] for i in scheme_indices),
    )


@pytest.fixture(scope="module")
def analyzed():
    video = synthesize_scene(SceneConfig(width=64, height=48, num_frames=8,
                                         seed=21, num_objects=2))
    encoded = Encoder(EncoderConfig(crf=25, gop_size=8)).encode(video)
    importance = compute_importance(encoded.trace)
    return video, encoded, importance


class TestPartitionProperties:
    @given(assignment=assignments())
    @settings(max_examples=20, deadline=None)
    def test_split_merge_identity_any_assignment(self, analyzed,
                                                 assignment):
        """Split + merge is the identity for *every* valid assignment,
        not just the paper's."""
        _video, encoded, importance = analyzed
        protected = partition_video(encoded, importance, assignment)
        assert merge_streams(protected) == encoded.frame_payloads()

    @given(assignment=assignments())
    @settings(max_examples=20, deadline=None)
    def test_stream_bits_conserved(self, analyzed, assignment):
        _video, encoded, importance = analyzed
        protected = partition_video(encoded, importance, assignment)
        assert sum(protected.stream_bits.values()) == encoded.payload_bits

    @given(assignment=assignments(), seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_flip_count_preserved_through_merge(self, analyzed,
                                                assignment, seed):
        """Flipping k stream bits yields exactly k flipped payload bits:
        partitioning is a pure permutation of bit positions."""
        _video, encoded, importance = analyzed
        protected = partition_video(encoded, importance, assignment)
        rng = np.random.default_rng(seed)
        corrupted = {}
        flipped = 0
        for name, data in protected.streams.items():
            buffer = bytearray(data)
            bits = protected.stream_bits[name]
            if bits:
                position = int(rng.integers(0, bits))
                buffer[position // 8] ^= 0x80 >> (position % 8)
                flipped += 1
            corrupted[name] = bytes(buffer)
        merged = merge_streams(protected, corrupted)
        clean = encoded.frame_payloads()
        diff_bits = sum(
            int(np.unpackbits(np.frombuffer(a, dtype=np.uint8)
                              ^ np.frombuffer(b, dtype=np.uint8)).sum())
            for a, b in zip(merged, clean))
        assert diff_bits == flipped


class TestImportanceProperties:
    @pytest.mark.parametrize("seed,bframes,slices", [
        (1, 0, 1), (2, 2, 1), (3, 0, 2), (4, 1, 3),
    ])
    def test_invariants_across_configs(self, seed, bframes, slices):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=7, seed=seed,
                                             num_objects=2))
        config = EncoderConfig(crf=26, gop_size=7, bframes=bframes,
                               slices=slices)
        encoded = Encoder(config).encode(video)
        importance = compute_importance(encoded.trace)
        # Invariant 1: everything is at least as important as itself.
        assert importance.values.min() >= 1.0 - 1e-9
        # Invariant 2: scan-order monotonicity within slices.
        assert importance_is_scan_monotone(encoded.trace, importance)
        # Invariant 3: compensation weights normalized.
        totals = importance.graph.incoming_compensation_weight()
        predicted = totals[totals > 1e-9]
        assert np.allclose(predicted, 1.0, atol=1e-9)
        # Invariant 4: total >= compensation component.
        assert np.all(importance.values
                      >= importance.compensation - 1e-9)

    def test_importance_conserves_area(self, analyzed):
        """Summing every MB's own area once: total importance equals
        num_MBs plus all propagated area, so it is at least num_MBs."""
        _video, _encoded, importance = analyzed
        num_mbs = importance.values.size
        assert importance.values.sum() >= num_mbs
