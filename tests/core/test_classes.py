"""Tests for importance classes."""

import pytest

from repro.core import (
    class_bit_ranges,
    class_storage_distribution,
    cumulative_storage_fractions,
    importance_class,
    macroblock_bits,
    storage_fraction_by_class,
)
from repro.core.importance import MacroblockBits
from repro.errors import AnalysisError


class TestImportanceClass:
    def test_class_boundaries(self):
        """Class i holds importance in (2^(i-1), 2^i]."""
        assert importance_class(1.0) == 0
        assert importance_class(2.0) == 1
        assert importance_class(2.001) == 2
        assert importance_class(4.0) == 2
        assert importance_class(1000.0) == 10

    def test_rejects_below_one(self):
        with pytest.raises(AnalysisError):
            importance_class(0.5)

    def test_near_one_tolerated(self):
        assert importance_class(1.0 - 1e-12) == 0


def _mb(frame, index, start, end, importance):
    return MacroblockBits(frame, index, start, end, importance)


class TestDistribution:
    def test_bits_and_counts(self):
        mb_bits = [
            _mb(0, 0, 0, 100, 1.5),    # class 1
            _mb(0, 1, 100, 150, 2.0),  # class 1
            _mb(0, 2, 150, 400, 30.0),  # class 5
        ]
        distribution = class_storage_distribution(mb_bits)
        by_class = {d.class_index: d for d in distribution}
        assert by_class[1].bits == 150 and by_class[1].macroblocks == 2
        assert by_class[5].bits == 250 and by_class[5].macroblocks == 1

    def test_cumulative_fractions(self):
        mb_bits = [
            _mb(0, 0, 0, 100, 1.5),
            _mb(0, 1, 100, 400, 30.0),
        ]
        distribution = class_storage_distribution(mb_bits)
        fractions = cumulative_storage_fractions(distribution)
        assert fractions == pytest.approx([0.25, 1.0])

    def test_fraction_map_sums_to_one(self, encoded_medium,
                                      importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        fractions = storage_fraction_by_class(mb_bits)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_distribution_rejected(self):
        with pytest.raises(AnalysisError):
            cumulative_storage_fractions([])


class TestClassBitRanges:
    def test_cumulative_inclusion(self):
        mb_bits = [
            _mb(0, 0, 0, 100, 1.5),
            _mb(0, 1, 100, 150, 100.0),
        ]
        low = class_bit_ranges(mb_bits, 1)
        high = class_bit_ranges(mb_bits, 7)
        assert len(low) == 1
        assert len(high) == 2
        assert set(low) <= set(high)

    def test_zero_length_excluded(self):
        mb_bits = [_mb(0, 0, 50, 50, 1.0)]
        assert class_bit_ranges(mb_bits, 0) == []

    def test_real_video_monotone_coverage(self, encoded_medium,
                                          importance_medium):
        mb_bits = macroblock_bits(encoded_medium.trace, importance_medium)
        distribution = class_storage_distribution(mb_bits)
        sizes = []
        for entry in distribution:
            ranges = class_bit_ranges(mb_bits, entry.class_index)
            sizes.append(sum(end - start for _f, start, end in ranges))
        assert sizes == sorted(sizes)
