"""Tests for the dependency graph construction."""

import numpy as np
import pytest

from repro.codec import Encoder, EncoderConfig, FrameType
from repro.codec.types import (
    DependencyRecord,
    EncodingTrace,
    FrameTrace,
    MacroblockTrace,
)
from repro.core import build_dependency_graph, topological_order
from repro.errors import AnalysisError


def _tiny_trace():
    """Two frames, 2 MBs each: frame 1 MB 0 depends on frame 0 MBs."""
    trace = EncodingTrace(mb_rows=1, mb_cols=2)
    trace.frames.append(FrameTrace(
        coded_index=0, display_index=0, frame_type=FrameType.I,
        payload_bits=100, slice_starts=[0],
        macroblocks=[
            MacroblockTrace(0, 0, 0, 40),
            MacroblockTrace(0, 1, 40, 90,
                            dependencies=[DependencyRecord((0, 0), 256)]),
        ]))
    trace.frames.append(FrameTrace(
        coded_index=1, display_index=1, frame_type=FrameType.P,
        payload_bits=60, slice_starts=[0],
        macroblocks=[
            MacroblockTrace(1, 0, 0, 30, dependencies=[
                DependencyRecord((0, 0), 192),
                DependencyRecord((0, 1), 64),
            ]),
            MacroblockTrace(1, 1, 30, 50, dependencies=[
                DependencyRecord((0, 1), 256),
            ]),
        ]))
    return trace


class TestBuildGraph:
    def test_compensation_weights_normalized(self):
        graph = build_dependency_graph(_tiny_trace())
        totals = graph.incoming_compensation_weight()
        # Nodes 1, 2, 3 are predicted; node 0 is not.
        assert totals[0] == 0.0
        assert np.allclose(totals[1:], 1.0)

    def test_coding_chain_per_frame(self):
        graph = build_dependency_graph(_tiny_trace())
        assert graph.coding_src.tolist() == [0, 2]
        assert graph.coding_dst.tolist() == [1, 3]

    def test_edges_aggregate_duplicates(self):
        trace = _tiny_trace()
        # Add a second dependency record for the same (src, dst) pair.
        trace.frames[1].macroblocks[0].dependencies.append(
            DependencyRecord((0, 0), 64))
        graph = build_dependency_graph(trace)
        pairs = list(zip(graph.comp_src.tolist(), graph.comp_dst.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_self_dependency_rejected(self):
        trace = _tiny_trace()
        trace.frames[0].macroblocks[0].dependencies.append(
            DependencyRecord((0, 0), 10))
        with pytest.raises(AnalysisError):
            build_dependency_graph(trace)

    def test_wrong_mb_count_rejected(self):
        trace = _tiny_trace()
        trace.frames[0].macroblocks.pop()
        with pytest.raises(AnalysisError):
            build_dependency_graph(trace)


class TestTopologicalOrder:
    def test_respects_edges(self):
        graph = build_dependency_graph(_tiny_trace())
        order = topological_order(graph.num_nodes, graph.comp_src,
                                  graph.comp_dst)
        position = {node: i for i, node in enumerate(order)}
        for src, dst in zip(graph.comp_src, graph.comp_dst):
            assert position[int(src)] < position[int(dst)]

    def test_natural_order_for_codec_graphs(self):
        """Codec graphs' edges always point forward in node id, so the
        heap-based Kahn must return the identity order."""
        graph = build_dependency_graph(_tiny_trace())
        order = topological_order(graph.num_nodes, graph.comp_src,
                                  graph.comp_dst)
        assert order.tolist() == list(range(graph.num_nodes))

    def test_cycle_detected(self):
        with pytest.raises(AnalysisError):
            topological_order(2, np.array([0, 1]), np.array([1, 0]))


class TestOnRealTrace:
    def test_graph_from_encoder(self, encoded_medium):
        graph = build_dependency_graph(encoded_medium.trace)
        assert graph.num_nodes == len(encoded_medium.frames) * 24
        # Every predicted MB's incoming weights sum to 1.
        totals = graph.incoming_compensation_weight()
        predicted = totals[totals > 1e-12]
        assert np.allclose(predicted, 1.0, atol=1e-9)

    def test_all_edges_forward_in_natural_order(self, encoded_medium):
        graph = build_dependency_graph(encoded_medium.trace)
        assert np.all(graph.comp_src < graph.comp_dst)
        assert np.all(graph.coding_src < graph.coding_dst)

    def test_bframes_keep_graph_acyclic(self, medium_video):
        config = EncoderConfig(crf=26, gop_size=12, bframes=2)
        encoded = Encoder(config).encode(medium_video)
        graph = build_dependency_graph(encoded.trace)
        order = topological_order(graph.num_nodes, graph.comp_src,
                                  graph.comp_dst)
        assert order.size == graph.num_nodes
