"""Tests for ECC assignment (Table 1 and the budget optimizer)."""

import pytest

from repro.core import (
    ClassAssignment,
    PAPER_TABLE1,
    QualityCurve,
    UNIFORM_ASSIGNMENT,
    assign_schemes,
    assign_schemes_conservative,
)
from repro.errors import AnalysisError
from repro.storage import NONE_SCHEME, PRECISE_SCHEME


class TestPaperTable1:
    def test_matches_published_rows(self):
        """Importance 0-2 -> None, 3-10 -> BCH-6, ..., 21-26 -> BCH-10."""
        cases = [
            (1.0, "None"),        # class 0
            (4.0, "None"),        # class 2
            (5.0, "BCH-6"),       # class 3
            (1024.0, "BCH-6"),    # class 10
            (2049.0, "BCH-7"),    # class 12
            (2 ** 14.0, "BCH-8"),
            (2 ** 18.0, "BCH-9"),
            (2 ** 22.0, "BCH-10"),
            (2 ** 26.0, "BCH-10"),
        ]
        for importance, expected in cases:
            scheme = PAPER_TABLE1.scheme_for_importance(importance)
            assert scheme.name == expected, (importance, scheme.name)

    def test_beyond_last_boundary_uses_strongest_listed(self):
        assert PAPER_TABLE1.scheme_for_class(40).name == "BCH-10"

    def test_header_scheme_precise(self):
        assert PAPER_TABLE1.header_scheme == PRECISE_SCHEME

    def test_rows_shape(self):
        rows = PAPER_TABLE1.rows()
        assert rows[0]["classes"] == "0-2"
        assert rows[0]["scheme"] == "None"
        assert rows[-1]["classes"] == "frame header"
        assert rows[-1]["scheme"] == "BCH-16"

    def test_uniform_assignment(self):
        assert UNIFORM_ASSIGNMENT.scheme_for_importance(1.0).name == "BCH-16"
        assert UNIFORM_ASSIGNMENT.scheme_for_importance(1e6).name == "BCH-16"


class TestValidation:
    def test_misaligned_rejected(self):
        with pytest.raises(AnalysisError):
            ClassAssignment(boundaries=(1, 2), schemes=(NONE_SCHEME,))

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(AnalysisError):
            ClassAssignment(boundaries=(5, 3),
                            schemes=(NONE_SCHEME, PRECISE_SCHEME))

    def test_weakening_schemes_rejected(self):
        with pytest.raises(AnalysisError):
            ClassAssignment(boundaries=(3, 8),
                            schemes=(PRECISE_SCHEME, NONE_SCHEME))


def _curve(class_index, base_loss):
    """Loss grows linearly with log-rate above 1e-8; tiny below."""
    points = {}
    for exponent in range(-10, -1):
        rate = 10.0 ** exponent
        loss = base_loss * max(0.0, exponent + 8)
        points[rate] = -loss
    return QualityCurve(class_index=class_index, points=points)


class TestQualityCurve:
    def test_interpolation_monotone(self):
        curve = _curve(0, 0.1)
        assert curve.loss_at(1e-9) <= curve.loss_at(1e-5)

    def test_below_range_scales_linearly(self):
        curve = QualityCurve(class_index=0, points={1e-6: -0.4})
        assert curve.loss_at(1e-7) == pytest.approx(0.04)

    def test_above_range_clamps(self):
        curve = QualityCurve(class_index=0, points={1e-4: -0.5})
        assert curve.loss_at(1e-2) == pytest.approx(0.5)

    def test_log_interpolation_midpoint(self):
        curve = QualityCurve(class_index=0, points={1e-6: 0.0, 1e-4: -1.0})
        assert curve.loss_at(1e-5) == pytest.approx(0.5)

    def test_empty_curve_rejected(self):
        with pytest.raises(AnalysisError):
            QualityCurve(class_index=0).loss_at(1e-5)


class TestAssignSchemes:
    def test_low_classes_get_weak_schemes(self):
        curves = [_curve(i, 0.001 * (i + 1)) for i in range(6)]
        fractions = {i: 1 / 6 for i in range(6)}
        assignment = assign_schemes(curves, fractions, budget_db=0.3)
        weakest = assignment.scheme_for_class(0)
        strongest = assignment.scheme_for_class(5)
        assert weakest.t <= strongest.t

    def test_tight_budget_forces_strong_schemes(self):
        curves = [_curve(i, 0.5) for i in range(4)]
        fractions = {i: 0.25 for i in range(4)}
        loose = assign_schemes(curves, fractions, budget_db=3.0)
        tight = assign_schemes(curves, fractions, budget_db=0.01)
        for class_index in range(4):
            assert tight.scheme_for_class(class_index).t >= \
                loose.scheme_for_class(class_index).t

    def test_zero_loss_curves_get_no_ecc(self):
        curves = [QualityCurve(class_index=i,
                               points={1e-3: 0.0, 1e-6: 0.0})
                  for i in range(3)]
        fractions = {i: 1 / 3 for i in range(3)}
        assignment = assign_schemes(curves, fractions)
        assert assignment.scheme_for_class(0).name == "None"
        assert assignment.scheme_for_class(2).name == "None"

    def test_schemes_strengthen_with_class(self):
        curves = [_curve(i, 0.02 * (i + 1) ** 2) for i in range(8)]
        fractions = {i: 1 / 8 for i in range(8)}
        assignment = assign_schemes(curves, fractions, budget_db=0.3)
        strengths = [assignment.scheme_for_class(i).t for i in range(8)]
        assert strengths == sorted(strengths)

    def test_invalid_budget(self):
        with pytest.raises(AnalysisError):
            assign_schemes([_curve(0, 0.1)], {0: 1.0}, budget_db=0.0)

    def test_no_curves_rejected(self):
        with pytest.raises(AnalysisError):
            assign_schemes([], {}, budget_db=0.3)


class TestConservativeStrategy:
    """The paper's Section 7.2.1 alternative: approximate only where it
    clearly beats deterministic compression."""

    def test_harmless_classes_get_weak_schemes(self):
        curves = [QualityCurve(class_index=i,
                               points={1e-6: 0.0, 1e-3: 0.0})
                  for i in range(3)]
        fractions = {i: 1 / 3 for i in range(3)}
        assignment = assign_schemes_conservative(curves, fractions)
        assert assignment.scheme_for_class(0).name == "None"

    def test_lossy_classes_stay_protected(self):
        """A class whose weak-scheme losses dwarf the compression
        equivalent must escalate to a strong scheme (here the weakest
        loss-free option, BCH-9)."""
        curves = [_curve(0, 5.0)]  # huge loss per decade
        assignment = assign_schemes_conservative(curves, {0: 1.0})
        assert assignment.scheme_for_class(0).t >= 9

    def test_stricter_trade_rate_strengthens_schemes(self):
        curves = [_curve(i, 0.01 * (i + 1)) for i in range(5)]
        fractions = {i: 0.2 for i in range(5)}
        generous = assign_schemes_conservative(
            curves, fractions, compression_db_per_percent=0.5)
        strict = assign_schemes_conservative(
            curves, fractions, compression_db_per_percent=0.001)
        for index in range(5):
            assert strict.scheme_for_class(index).t >= \
                generous.scheme_for_class(index).t

    def test_schemes_strengthen_with_class(self):
        curves = [_curve(i, 0.02 * (i + 1) ** 2) for i in range(8)]
        fractions = {i: 1 / 8 for i in range(8)}
        assignment = assign_schemes_conservative(curves, fractions)
        strengths = [assignment.scheme_for_class(i).t for i in range(8)]
        assert strengths == sorted(strengths)

    def test_invalid_rate_rejected(self):
        with pytest.raises(AnalysisError):
            assign_schemes_conservative([_curve(0, 0.1)], {0: 1.0},
                                        compression_db_per_percent=0.0)

    def test_no_curves_rejected(self):
        with pytest.raises(AnalysisError):
            assign_schemes_conservative([], {})
