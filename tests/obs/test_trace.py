"""Span tracer: nesting, aggregates, disabled fast path, exporters."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NULL_SPAN,
    NULL_STAGE_CLOCK,
    SpanRecord,
    StageClock,
    Tracer,
    spans_to_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _by_name(records, name):
    return [r for r in records if r.name == name]


class TestSpanRecording:
    def test_nesting_sets_parent_ids(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                with trace.span("leaf"):
                    pass
        records = trace.active().drain()
        outer = _by_name(records, "outer")[0]
        inner = _by_name(records, "inner")[0]
        leaf = _by_name(records, "leaf")[0]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id

    def test_innermost_closes_first(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        records = trace.active().drain()
        assert [r.name for r in records] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        trace.enable()
        with trace.span("parent"):
            with trace.span("a"):
                pass
            with trace.span("b"):
                pass
        records = trace.active().drain()
        parent = _by_name(records, "parent")[0]
        assert _by_name(records, "a")[0].parent_id == parent.span_id
        assert _by_name(records, "b")[0].parent_id == parent.span_id

    def test_span_ids_unique(self):
        trace.enable()
        for _ in range(5):
            with trace.span("s"):
                pass
        records = trace.active().drain()
        ids = [r.span_id for r in records]
        assert len(set(ids)) == len(ids)

    def test_timing_monotonic_and_contained(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        records = trace.active().drain()
        outer = _by_name(records, "outer")[0]
        inner = _by_name(records, "inner")[0]
        assert outer.duration >= 0
        assert inner.start >= outer.start
        assert inner.end <= outer.end + 1e-9

    def test_attrs_recorded_and_mutable_inside(self):
        trace.enable()
        with trace.span("work", size=3) as live:
            live.attrs["learned"] = "later"
        record = trace.active().drain()[0]
        assert record.attrs == {"size": 3, "learned": "later"}

    def test_pid_is_this_process(self):
        trace.enable()
        with trace.span("s"):
            pass
        assert trace.active().drain()[0].pid == os.getpid()

    def test_exception_still_closes_span(self):
        trace.enable()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("x")
        records = trace.active().drain()
        assert [r.name for r in records] == ["boom"]

    def test_leaked_child_popped_with_parent(self):
        # A span left open across an exception boundary must not corrupt
        # the stack for subsequent spans.
        tracer = trace.enable()
        outer_ctx = tracer.span("outer")
        outer_ctx.__enter__()
        tracer.span("leaked").__enter__()     # never exited explicitly
        outer_ctx.__exit__(None, None, None)  # pops leaked, then outer
        with trace.span("after"):
            pass
        records = tracer.drain()
        names = [r.name for r in records]
        assert names == ["leaked", "outer", "after"]
        assert _by_name(records, "after")[0].parent_id is None


class TestDisabledFastPath:
    def test_span_returns_shared_null_singleton(self):
        assert trace.span("anything") is NULL_SPAN
        assert trace.span("other", k=1) is NULL_SPAN

    def test_null_span_yields_none(self):
        with trace.span("off") as live:
            assert live is None

    def test_aggregate_is_noop(self):
        trace.aggregate("stage", 1.0)  # must not raise

    def test_stage_clock_returns_shared_null(self):
        assert trace.stage_clock() is NULL_STAGE_CLOCK
        with NULL_STAGE_CLOCK.time("x"):
            pass
        NULL_STAGE_CLOCK.add("x", 1.0)
        NULL_STAGE_CLOCK.emit()

    def test_enable_disable_roundtrip(self):
        assert not trace.enabled()
        tracer = trace.enable()
        assert trace.enabled()
        assert trace.enable() is tracer  # idempotent
        trace.disable()
        assert not trace.enabled()
        assert trace.active() is None


class TestAggregates:
    def test_aggregate_becomes_child_of_current_span(self):
        trace.enable()
        with trace.span("frame"):
            trace.aggregate("stage.a", 0.25, count=10)
        records = trace.active().drain()
        frame = _by_name(records, "frame")[0]
        agg = _by_name(records, "stage.a")[0]
        assert agg.parent_id == frame.span_id
        assert agg.duration == 0.25
        assert agg.attrs["aggregate"] is True
        assert agg.attrs["count"] == 10

    def test_aggregates_laid_out_sequentially(self):
        trace.enable()
        with trace.span("frame"):
            trace.aggregate("a", 0.1)
            trace.aggregate("b", 0.2)
        records = trace.active().drain()
        a = _by_name(records, "a")[0]
        b = _by_name(records, "b")[0]
        assert b.start == pytest.approx(a.start + 0.1)

    def test_stage_clock_accumulates_and_emits(self):
        trace.enable()
        clock = trace.stage_clock()
        assert isinstance(clock, StageClock)
        clock.add("encode.intra", 0.5)
        clock.add("encode.intra", 0.25)
        clock.add("encode.transform", 0.125, count=3)
        with trace.span("frame"):
            clock.emit()
        records = trace.active().drain()
        intra = _by_name(records, "encode.intra")[0]
        assert intra.duration == 0.75
        assert intra.attrs["count"] == 2
        transform = _by_name(records, "encode.transform")[0]
        assert transform.attrs["count"] == 3
        # emit resets the clock
        assert clock.totals == {} and clock.counts == {}

    def test_stage_timer_measures(self):
        trace.enable()
        clock = trace.stage_clock()
        with clock.time("stage"):
            pass
        assert clock.totals["stage"] >= 0
        assert clock.counts["stage"] == 1


class TestMerge:
    def test_absorb_keeps_foreign_pids(self):
        tracer = Tracer()
        foreign = SpanRecord(name="remote", start=1.0, duration=0.5,
                             span_id=0, parent_id=None, pid=99999)
        tracer.absorb([foreign])
        with tracer.span("local"):
            pass
        records = tracer.drain()
        assert {r.pid for r in records} == {99999, os.getpid()}

    def test_drain_clears_buffer(self):
        trace.enable()
        with trace.span("s"):
            pass
        assert len(trace.active().drain()) == 1
        assert trace.active().drain() == []

    def test_reset_after_fork_drops_parent_state(self):
        tracer = trace.enable()
        with tracer.span("parent-span"):
            pass
        open_ctx = tracer.span("still-open")
        open_ctx.__enter__()
        tracer.reset_after_fork()
        assert tracer.records == []
        with tracer.span("fresh"):
            pass
        assert [r.name for r in tracer.drain()] == ["fresh"]

    def test_records_picklable(self):
        import pickle
        record = SpanRecord(name="s", start=0.0, duration=1.0, span_id=1,
                            parent_id=None, pid=1, attrs={"k": "v"})
        assert pickle.loads(pickle.dumps(record)) == record


class TestExport:
    def _records(self):
        trace.enable()
        with trace.span("outer", kind="sweep"):
            with trace.span("inner"):
                pass
        return trace.active().drain()

    def test_jsonl_round_trip(self, tmp_path):
        records = self._records()
        path = tmp_path / "spans.jsonl"
        write_jsonl(path, records)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert {p["name"] for p in parsed} == {"outer", "inner"}
        assert all("span_id" in p and "pid" in p for p in parsed)

    def test_jsonl_empty_is_empty_string(self):
        assert spans_to_jsonl([]) == ""

    def test_chrome_trace_shape(self):
        records = self._records()
        doc = to_chrome_trace(records)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 1  # one process
        assert metas[0]["name"] == "process_name"
        assert len(complete) == 2
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["tid"] == 0

    def test_chrome_trace_parent_links(self):
        records = self._records()
        events = [e for e in to_chrome_trace(records)["traceEvents"]
                  if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        assert (by_name["inner"]["args"]["parent_id"]
                == by_name["outer"]["args"]["span_id"])
        assert "parent_id" not in by_name["outer"]["args"]

    def test_chrome_trace_microseconds(self):
        record = SpanRecord(name="s", start=2.0, duration=0.5, span_id=0,
                            parent_id=None, pid=1)
        event = [e for e in to_chrome_trace([record])["traceEvents"]
                 if e["ph"] == "X"][0]
        assert event["ts"] == 2.0e6
        assert event["dur"] == 0.5e6

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._records())
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_non_jsonable_attrs_stringified(self):
        record = SpanRecord(name="s", start=0.0, duration=0.0, span_id=0,
                            parent_id=None, pid=1,
                            attrs={"obj": object(), "ok": 3})
        event = [e for e in to_chrome_trace([record])["traceEvents"]
                 if e["ph"] == "X"][0]
        assert isinstance(event["args"]["obj"], str)
        assert event["args"]["ok"] == 3
        json.dumps(event)  # must serialize
