"""Metrics registry: instruments, exact histogram merges, snapshots."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import AnalysisError
from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_counts(self):
        counter = metrics.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_instrument(self):
        assert metrics.counter("c") is metrics.counter("c")

    def test_negative_increment_rejected(self):
        with pytest.raises(AnalysisError, match="cannot decrease"):
            metrics.counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = metrics.gauge("g")
        gauge.set(1)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram("h", boundaries=(1.0, 10.0))
        hist.observe(0.5)    # <= 1.0
        hist.observe(5.0)    # <= 10.0
        hist.observe(100.0)  # overflow
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == 105.5

    def test_mean(self):
        hist = Histogram("h", boundaries=(1.0,))
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0

    def test_boundaries_must_increase(self):
        with pytest.raises(AnalysisError, match="strictly"):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(AnalysisError, match="strictly"):
            Histogram("h", boundaries=(1.0, 1.0))
        with pytest.raises(AnalysisError, match=">= 1 boundary"):
            Histogram("h", boundaries=())

    def test_merge_is_exact_integer_addition(self):
        a = Histogram("h", boundaries=(1.0, 10.0))
        b = Histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 2.0, 2.0, 50.0):
            a.observe(value)
        for value in (0.1, 99.0):
            b.observe(value)
        a.merge(b.boundaries, b.counts, b.count, b.sum)
        # Equal, bucket for bucket, to one histogram seeing all values.
        one = Histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 2.0, 2.0, 50.0, 0.1, 99.0):
            one.observe(value)
        assert a.counts == one.counts
        assert a.count == one.count
        assert a.sum == pytest.approx(one.sum)

    def test_merge_rejects_different_boundaries(self):
        a = Histogram("h", boundaries=(1.0, 10.0))
        with pytest.raises(AnalysisError, match="cannot merge"):
            a.merge((1.0, 20.0), [0, 0, 0], 0, 0.0)

    def test_reregistering_with_other_boundaries_rejected(self):
        metrics.histogram("h", boundaries=(1.0,))
        with pytest.raises(AnalysisError, match="already exists"):
            metrics.histogram("h", boundaries=(2.0,))

    def test_default_buckets_span_ms_to_minute(self):
        assert DEFAULT_TIME_BUCKETS[0] == 0.001
        assert DEFAULT_TIME_BUCKETS[-1] == 60.0


class TestRegistry:
    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(AnalysisError, match="another instrument kind"):
            registry.gauge("n")
        with pytest.raises(AnalysisError, match="another instrument kind"):
            registry.histogram("n")

    def test_snapshot_is_picklable_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_drain_resets(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = registry.drain()
        assert snap["counters"] == {"c": 1}
        assert registry.snapshot()["counters"] == {}

    def test_merge_mirrors_worker_channel(self):
        # The executor's exact flow: worker drains, parent merges.
        worker = MetricsRegistry()
        worker.counter("trials_total").inc(3)
        worker.histogram("trial_seconds", boundaries=(1.0,)).observe(0.5)
        parent = MetricsRegistry()
        parent.counter("trials_total").inc(1)
        parent.histogram("trial_seconds", boundaries=(1.0,)).observe(2.0)
        parent.merge(worker.drain())
        assert parent.counter("trials_total").value == 4
        hist = parent.histogram("trial_seconds", boundaries=(1.0,))
        assert hist.counts == [1, 1]
        assert hist.count == 2

    def test_merge_into_empty_registry_creates_instruments(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(7)
        worker.gauge("g").set(3.0)
        parent = MetricsRegistry()
        parent.merge(worker.snapshot())
        assert parent.counter("c").value == 7
        assert parent.gauge("g").value == 3.0

    def test_module_registry_reset(self):
        metrics.counter("c").inc()
        metrics.reset_registry()
        assert metrics.get_registry().snapshot()["counters"] == {}
