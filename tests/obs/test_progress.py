"""Progress reporter: resolution, rendering, and fault visibility."""

from __future__ import annotations

import io

import pytest

from repro.errors import AnalysisError
from repro.obs.progress import (
    PROGRESS_ENV,
    ProgressReporter,
    format_eta,
    resolve_progress,
)


class TestResolveProgress:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_ENV, "1")
        assert resolve_progress(False) is False
        monkeypatch.setenv(PROGRESS_ENV, "0")
        assert resolve_progress(True) is True

    def test_unset_env_means_off(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        assert resolve_progress() is False

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "", "  "])
    def test_falsy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(PROGRESS_ENV, value)
        assert resolve_progress() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
    def test_truthy_env_values(self, monkeypatch, value):
        monkeypatch.setenv(PROGRESS_ENV, value)
        assert resolve_progress() is True


class TestFormatEta:
    def test_seconds(self):
        assert format_eta(5) == "0:05"

    def test_minutes(self):
        assert format_eta(125) == "2:05"

    def test_hours(self):
        assert format_eta(3725) == "1:02:05"

    def test_negative_clamped(self):
        assert format_eta(-3) == "0:00"


def _reporter(total=10, **kwargs):
    stream = io.StringIO()
    kwargs.setdefault("min_interval", 0.0)
    return ProgressReporter(total, stream=stream, **kwargs), stream


class TestProgressReporter:
    def test_negative_total_rejected(self):
        with pytest.raises(AnalysisError):
            ProgressReporter(-1, stream=io.StringIO())

    def test_counts_and_final_line(self):
        reporter, stream = _reporter(total=3)
        reporter.begin()
        for _ in range(3):
            reporter.trial_finished(True)
        reporter.finish()
        output = stream.getvalue()
        assert "3/3 trials" in output
        assert "(100%)" in output
        assert output.endswith("\n")

    def test_failures_always_visible(self):
        # A failure repaints even under an aggressive throttle.
        stream = io.StringIO()
        reporter = ProgressReporter(10, stream=stream, min_interval=3600)
        reporter.begin()
        reporter.trial_finished(False, label="sweep rate 1e-03")
        assert "1 failed" in stream.getvalue()
        assert "sweep rate 1e-03" in stream.getvalue()

    def test_retry_and_pool_restart_rendered(self):
        reporter, stream = _reporter()
        reporter.begin()
        reporter.note_retry(2)
        reporter.note_pool_restart()
        output = stream.getvalue()
        assert "2 retried" in output
        assert "1 pool restarts" in output

    def test_resumed_counts_as_completed(self):
        reporter, stream = _reporter(total=10)
        reporter.begin(resumed=4)
        assert "4/10 trials" in stream.getvalue()
        assert "4 resumed" in stream.getvalue()

    def test_throttle_suppresses_clean_repaints(self):
        stream = io.StringIO()
        reporter = ProgressReporter(100, stream=stream, min_interval=3600)
        reporter.begin()
        painted = stream.getvalue()
        for _ in range(50):
            reporter.trial_finished(True)
        assert stream.getvalue() == painted  # nothing clean repainted

    def test_finish_idempotent(self):
        reporter, stream = _reporter(total=1)
        reporter.begin()
        reporter.trial_finished(True)
        reporter.finish()
        once = stream.getvalue()
        reporter.finish()
        assert stream.getvalue() == once

    def test_repaint_pads_over_previous_longer_line(self):
        reporter, stream = _reporter(total=10)
        reporter.begin()
        reporter.trial_finished(False, label="a very long trial label")
        reporter.trial_finished(False, label="x")
        paints = stream.getvalue().split("\r")
        # the short repaint is space-padded to blank the longer one out
        assert len(paints[-1]) >= len(paints[-2])
