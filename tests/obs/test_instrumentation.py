"""Instrumentation invariants: results never change, spans cover the
pipeline, worker spans/metrics merge across the process boundary."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import quality_sweep
from repro.obs import metrics, trace
from repro.runtime import fork_available

RATES = (1e-4, 1e-3)
RUNS = 2


def _sweep(encoded, video, decoded, workers=0, progress=None):
    return quality_sweep(encoded, video, decoded, None, rates=RATES,
                         runs=RUNS, rng=np.random.default_rng(7),
                         workers=workers, progress=progress)


class TestDeterminism:
    def test_tracing_never_changes_results(self, encoded_small, small_video,
                                           decoded_small):
        baseline = _sweep(encoded_small, small_video, decoded_small)
        trace.enable()
        traced = _sweep(encoded_small, small_video, decoded_small)
        trace.disable()
        assert traced == baseline
        for a, b in zip(baseline.points, traced.points):
            assert a.mean_change_db == b.mean_change_db
            assert a.max_loss_db == b.max_loss_db
            assert a.mean_flips == b.mean_flips

    def test_progress_never_changes_results(self, encoded_small, small_video,
                                            decoded_small, capsys):
        baseline = _sweep(encoded_small, small_video, decoded_small)
        shown = _sweep(encoded_small, small_video, decoded_small,
                       progress=True)
        assert shown == baseline

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel execution needs fork")
    def test_traced_parallel_matches_untraced_serial(
            self, encoded_small, small_video, decoded_small):
        baseline = _sweep(encoded_small, small_video, decoded_small)
        trace.enable()
        traced = _sweep(encoded_small, small_video, decoded_small,
                        workers=2)
        trace.disable()
        assert traced == baseline


class TestSpanCoverage:
    def test_serial_sweep_span_tree(self, encoded_small, small_video,
                                    decoded_small):
        trace.enable()
        _sweep(encoded_small, small_video, decoded_small)
        records = trace.active().drain()
        names = {r.name for r in records}
        for stage in ("campaign", "trial", "inject", "decode",
                      "decode.frame", "metric.psnr"):
            assert stage in names, f"missing span {stage}"
        # every trial span is a child of the campaign span
        campaign = [r for r in records if r.name == "campaign"][0]
        trials = [r for r in records if r.name == "trial"]
        assert len(trials) == len(RATES) * RUNS
        assert all(t.parent_id == campaign.span_id for t in trials)

    def test_encode_emits_aggregate_stage_spans(self, small_video,
                                                default_config):
        from repro.codec import Encoder

        trace.enable()
        Encoder(default_config).encode(small_video)
        records = trace.active().drain()
        names = {r.name for r in records}
        for stage in ("encode", "encode.frame", "encode.intra",
                      "encode.transform", "encode.entropy"):
            assert stage in names, f"missing span {stage}"
        aggregates = [r for r in records
                      if r.attrs.get("aggregate") is True]
        assert aggregates, "per-macroblock stages must aggregate"
        frames = {r.span_id: r for r in records
                  if r.name == "encode.frame"}
        assert all(a.parent_id in frames for a in aggregates)

    def test_bch_and_device_spans(self):
        from repro.storage.device import ApproximateDevice
        from repro.storage.ecc import scheme_by_name

        trace.enable()
        device = ApproximateDevice(rng=np.random.default_rng(0), exact=True)
        device.store_and_read(bytes(range(32)), scheme_by_name("BCH-6"))
        names = {r.name for r in trace.active().drain()}
        assert "ecc.store_read" in names
        assert "bch.encode" in names
        assert "bch.decode" in names

    def test_aes_spans(self):
        from repro.crypto import StreamEncryptor

        trace.enable()
        encryptor = StreamEncryptor(key=bytes(16), master_iv=bytes(16))
        streams = [b"payload-one", b"payload-two"]
        encrypted = encryptor.encrypt_list(streams)
        encryptor.decrypt_list(encrypted)
        records = trace.active().drain()
        names = {r.name for r in records}
        assert "aes.encrypt" in names
        assert "aes.decrypt" in names


@pytest.mark.skipif(not fork_available(),
                    reason="parallel execution needs fork")
class TestCrossProcessMerge:
    def test_worker_spans_absorbed_with_distinct_pids(
            self, encoded_small, small_video, decoded_small):
        trace.enable()
        _sweep(encoded_small, small_video, decoded_small, workers=2)
        records = trace.active().drain()
        pids = {r.pid for r in records}
        assert os.getpid() in pids
        assert len(pids) >= 2, "no worker spans crossed the boundary"
        worker_trials = [r for r in records
                         if r.name == "trial" and r.pid != os.getpid()]
        assert len(worker_trials) == len(RATES) * RUNS

    def test_worker_metrics_merged(self, encoded_small, small_video,
                                   decoded_small):
        metrics.reset_registry()
        _sweep(encoded_small, small_video, decoded_small, workers=2)
        snap = metrics.get_registry().snapshot()
        # worker-side counters made it home
        assert snap["counters"]["trials_total"] == len(RATES) * RUNS
        assert (snap["histograms"]["trial_seconds"]["count"]
                == len(RATES) * RUNS)
        # parent-side campaign accounting
        assert snap["counters"]["campaign_runs_total"] == 1
        assert snap["counters"]["campaign_trials_total"] == len(RATES) * RUNS


class TestRuntimeMetrics:
    def test_serial_campaign_publishes_metrics(self, encoded_small,
                                               small_video, decoded_small):
        metrics.reset_registry()
        _sweep(encoded_small, small_video, decoded_small)
        snap = metrics.get_registry().snapshot()
        assert snap["counters"]["trials_total"] == len(RATES) * RUNS
        assert snap["counters"]["campaign_runs_total"] == 1
        assert snap["gauges"]["campaign_workers"] == 0
        assert snap["counters"].get("trial_failures_total", 0) == 0

    def test_journal_metrics(self, tmp_path, encoded_small, small_video,
                             decoded_small):
        metrics.reset_registry()
        journal = tmp_path / "sweep.jsonl"
        first = quality_sweep(encoded_small, small_video, decoded_small,
                              None, rates=RATES, runs=RUNS,
                              rng=np.random.default_rng(7),
                              journal=journal)
        written = metrics.get_registry().snapshot()
        # header + one record per trial
        assert (written["counters"]["journal_records_total"]
                == len(RATES) * RUNS + 1)
        metrics.reset_registry()
        resumed = quality_sweep(encoded_small, small_video, decoded_small,
                                None, rates=RATES, runs=RUNS,
                                rng=np.random.default_rng(7),
                                journal=journal)
        assert resumed == first
        restored = metrics.get_registry().snapshot()
        assert (restored["counters"]["journal_restored_total"]
                == len(RATES) * RUNS)
        assert (restored["counters"]["campaign_resumed_total"]
                == len(RATES) * RUNS)
