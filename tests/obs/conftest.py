"""Observability tests share one invariant: no global state leaks.

The tracer and the metrics registry are process-wide; every test in
this package gets them reset afterwards so test order cannot matter.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def clean_obs_state():
    trace.disable()
    metrics.reset_registry()
    yield
    trace.disable()
    metrics.reset_registry()
