"""Tests for the extended experiment runners (beyond the paper's core
exhibits): metric agreement, CRF approximability, substrate ablation."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    run_crf_approximability,
    run_figure10_suite,
    run_gop_ablation,
    run_metric_agreement,
    run_substrate_ablation,
    run_table1,
    _spearman,
)
from repro.codec import EncoderConfig
from repro.errors import AnalysisError
from repro.video import SceneConfig, make_suite, synthesize_scene


@pytest.fixture(scope="module")
def probe_video():
    return synthesize_scene(SceneConfig(width=64, height=48, num_frames=8,
                                        seed=5, num_objects=2))


class TestSpearman:
    def test_perfect_agreement(self):
        assert _spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert _spearman([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series(self):
        assert _spearman([1, 1, 1], [5, 6, 7]) == 1.0


class TestMetricAgreement:
    def test_all_metrics_correlate(self, probe_video):
        result = run_metric_agreement(
            probe_video, EncoderConfig(crf=24, gop_size=8),
            rates=(1e-4, 1e-2), trials_per_rate=3,
            rng=np.random.default_rng(0))
        assert result.trials == 6
        assert set(result.spearman) == {"ssim", "ms_ssim", "vifp"}
        for name, value in result.spearman.items():
            assert value > 0.5, name

    def test_values_recorded_per_trial(self, probe_video):
        result = run_metric_agreement(
            probe_video, EncoderConfig(crf=24, gop_size=8),
            rates=(1e-3,), trials_per_rate=2,
            rng=np.random.default_rng(1))
        assert len(result.psnr_values) == 2
        assert all(len(v) == 2 for v in result.metric_values.values())


class TestCrfApproximability:
    def test_bits_and_quality_track_crf(self, probe_video):
        points = run_crf_approximability(
            probe_video, crfs=(20, 30), gop_size=8, probe_rate=1e-4,
            runs=2, rng=np.random.default_rng(2))
        by_crf = {p.crf: p for p in points}
        assert by_crf[20].payload_bits > by_crf[30].payload_bits
        assert by_crf[20].clean_psnr_db > by_crf[30].clean_psnr_db

    def test_losses_are_nonnegative(self, probe_video):
        points = run_crf_approximability(
            probe_video, crfs=(24,), gop_size=8, probe_rate=1e-3,
            runs=2, rng=np.random.default_rng(3))
        assert all(p.loss_at_probe_db >= 0 for p in points)


class TestApproxVsCompression:
    def test_equal_storage_comparison(self, probe_video):
        from repro.analysis.experiments import (
            run_approximation_vs_compression,
        )
        result = run_approximation_vs_compression(
            probe_video, base_crf=24, gop_size=8, runs=2,
            rng=np.random.default_rng(6))
        # The interpolation puts both designs at identical footprint.
        assert result.compress_cells_per_pixel == pytest.approx(
            result.approx_cells_per_pixel)
        assert result.compress_crf >= result.base_crf
        assert result.approx_psnr_db > 0 and result.compress_psnr_db > 0


class TestGopAblation:
    def test_checkpoint_trade(self, probe_video):
        points = run_gop_ablation(probe_video, gop_sizes=(2, 8), crf=26,
                                  probe_rate=1e-3, runs=2,
                                  rng=np.random.default_rng(4))
        by_gop = {p.gop_size: p for p in points}
        # Frequent checkpoints: more bits, bounded importance.
        assert by_gop[2].payload_bits > by_gop[8].payload_bits
        assert by_gop[2].max_importance < by_gop[8].max_importance

    def test_sorted_output(self, probe_video):
        points = run_gop_ablation(probe_video, gop_sizes=(8, 2), crf=26,
                                  probe_rate=1e-3, runs=1,
                                  rng=np.random.default_rng(5))
        assert [p.gop_size for p in points] == [2, 8]


class TestSuiteFigure10:
    @pytest.fixture(scope="class")
    def suite_result(self):
        suite = make_suite(width=64, height=48, num_frames=6,
                           names=["slow_objects", "busy_objects"])
        return run_figure10_suite(
            suite, EncoderConfig(crf=26, gop_size=6),
            rates=(1e-4, 1e-2), runs=2, rng=np.random.default_rng(9))

    def test_classes_merged_across_videos(self, suite_result):
        assert suite_result.class_indices == \
            sorted(suite_result.class_indices)
        assert sum(suite_result.storage_fractions.values()) == \
            pytest.approx(1.0)

    def test_cumulative_storage_complete(self, suite_result):
        assert suite_result.cumulative_storage[-1] == pytest.approx(1.0)
        assert suite_result.cumulative_storage == \
            sorted(suite_result.cumulative_storage)

    def test_feeds_table1(self, suite_result):
        assignment = run_table1(suite_result)
        strengths = [assignment.scheme_for_class(i).t
                     for i in suite_result.class_indices]
        assert strengths == sorted(strengths)

    def test_empty_suite_rejected(self):
        with pytest.raises(AnalysisError):
            run_figure10_suite([])


class TestSubstrateAblation:
    def test_full_grid(self):
        points = run_substrate_ablation()
        assert len(points) == 9

    def test_paper_design_point(self):
        points = run_substrate_ablation(levels_options=(8,),
                                        scrub_days_options=(90.0,))
        point = points[0]
        assert point.bits_per_cell == 3
        assert 3e-4 < point.raw_ber < 3e-3
        assert point.required_scheme == "BCH-16"
        assert 2.0 < point.net_bits_per_cell < 3.0

    def test_scrubbing_direction(self):
        points = run_substrate_ablation(levels_options=(8,),
                                        scrub_days_options=(7.0, 365.0))
        weekly, yearly = points
        assert weekly.raw_ber < yearly.raw_ber

    def test_dense_cells_exceed_menu(self):
        points = run_substrate_ablation(levels_options=(16,),
                                        scrub_days_options=(90.0,))
        assert points[0].net_bits_per_cell == 0.0
