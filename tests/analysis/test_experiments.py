"""Integration tests for the per-figure experiment runners.

These run every exhibit's code path at reduced scale and assert the
paper's qualitative shapes (orderings and win directions), not absolute
numbers.
"""

import numpy as np
import pytest

from repro.analysis import (
    run_figure3,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_overhead,
    run_section5,
    run_section8,
    run_table1,
)
from repro.codec import EncoderConfig
from repro.errors import AnalysisError
from repro.video import SceneConfig, synthesize_scene


@pytest.fixture(scope="module")
def exp_video():
    return synthesize_scene(SceneConfig(width=96, height=64, num_frames=10,
                                        seed=5, num_objects=3))


class TestFigure3:
    def test_damage_decreases_toward_bottom_right(self, exp_video):
        result = run_figure3(exp_video, EncoderConfig(crf=24, gop_size=10),
                             max_frames=3)
        top_left, bottom_right = result.corners()
        assert bottom_right > top_left + 5.0
        grid = result.psnr_grid
        # Row means increase downward (less damage lower in the frame).
        row_means = np.nanmean(grid, axis=1)
        assert row_means[-1] > row_means[0]

    def test_requires_p_frames(self):
        video = synthesize_scene(SceneConfig(width=32, height=32,
                                             num_frames=1, seed=1))
        with pytest.raises(AnalysisError):
            run_figure3(video)


class TestFigure8:
    def test_rows_match_paper(self):
        rows = run_figure8()
        by_scheme = {r["scheme"]: r for r in rows}
        assert by_scheme["BCH-6"]["overhead_percent"] == pytest.approx(
            11.7, abs=0.1)
        assert by_scheme["BCH-16"]["overhead_percent"] == pytest.approx(
            31.3, abs=0.1)
        assert by_scheme["BCH-6"]["uncorrectable_rate"] < 1e-5
        assert by_scheme["BCH-16"]["uncorrectable_rate"] < 1e-16


class TestFigures9And10:
    @pytest.fixture(scope="class")
    def fig9(self, exp_video):
        return run_figure9(exp_video, EncoderConfig(crf=24, gop_size=10),
                           num_bins=4, rates=(1e-5, 1e-3, 1e-2), runs=4,
                           rng=np.random.default_rng(0))

    def test_bin_importance_ascending(self, fig9):
        assert fig9.max_importance_log2 == sorted(fig9.max_importance_log2)

    def test_loss_grows_with_rate_within_bins(self, fig9):
        matrix = fig9.losses_matrix()
        for row in matrix:
            assert row[0] <= row[-1] + 0.2

    def test_high_bins_lose_more_at_moderate_rates(self, fig9):
        """The paper's validation: curve order follows bin importance.
        Asserted loosely (lowest vs highest bin) at the mid rate."""
        matrix = fig9.losses_matrix()
        assert matrix[0, 1] <= matrix[-1, 1] + 0.5

    @pytest.fixture(scope="class")
    def fig10(self, exp_video):
        return run_figure10(exp_video, EncoderConfig(crf=24, gop_size=10),
                            rates=(1e-5, 1e-3), runs=3,
                            rng=np.random.default_rng(1))

    def test_cumulative_storage_monotone(self, fig10):
        assert fig10.cumulative_storage == sorted(fig10.cumulative_storage)
        assert fig10.cumulative_storage[-1] == pytest.approx(1.0)

    def test_storage_fractions_sum_to_one(self, fig10):
        assert sum(fig10.storage_fractions.values()) == pytest.approx(1.0)

    def test_table1_from_curves(self, fig10):
        assignment = run_table1(fig10, budget_db=0.3)
        strengths = [assignment.scheme_for_class(i).t
                     for i in fig10.class_indices]
        assert strengths == sorted(strengths)


class TestFigure11:
    @pytest.fixture(scope="class")
    def fig11(self, exp_video):
        return run_figure11([("probe", exp_video)], crfs=(20, 24),
                            gop_size=10, runs=2,
                            rng=np.random.default_rng(2))

    def test_density_ordering(self, fig11):
        """Ideal < variable < uniform cells/pixel at every CRF."""
        for crf in (20, 24):
            cells = {p.design: p.cells_per_pixel for p in fig11.points
                     if p.crf == crf}
            assert cells["ideal"] < cells["variable"] < cells["uniform"]

    def test_quality_ordering_with_crf(self, fig11):
        uniform = {p.crf: p.psnr_db for p in fig11.by_design("uniform")}
        assert uniform[20] > uniform[24]

    def test_headline_metrics(self, fig11):
        assert 0.0 < fig11.ecc_overhead_reduction < 1.0
        assert fig11.density_gain_vs_uniform > 0.0
        assert fig11.density_gain_vs_slc > 2.0
        assert fig11.worst_quality_loss_db < 1.0


class TestSection5:
    def test_verdicts(self):
        verdicts = run_section5()
        assert not verdicts["ECB"].compatible
        assert not verdicts["CBC"].compatible
        assert verdicts["OFB"].compatible
        assert verdicts["CTR"].compatible


class TestSection8:
    @pytest.fixture(scope="class")
    def ablations(self, exp_video):
        return run_section8(exp_video, base_crf=24, gop_size=10,
                            probe_rate=1e-4, runs=2,
                            rng=np.random.default_rng(3))

    def test_all_variants_present(self, ablations):
        names = [a.name for a in ablations]
        assert len(names) == 4
        assert any("CAVLC" in n for n in names)

    def test_bframes_increase_unreferenced_storage(self, ablations):
        by_name = {a.name: a for a in ablations}
        baseline = by_name["baseline (CABAC, 1 slice)"]
        bframes = by_name["B-frames x2"]
        assert bframes.unreferenced_fraction > baseline.unreferenced_fraction

    def test_cavlc_larger_payload(self, ablations):
        by_name = {a.name: a for a in ablations}
        assert by_name["CAVLC"].payload_bits > \
            by_name["baseline (CABAC, 1 slice)"].payload_bits


class TestOverhead:
    def test_analysis_far_cheaper_than_encode(self, exp_video):
        result = run_overhead(exp_video, EncoderConfig(crf=24, gop_size=10))
        assert result.ratio < 0.10  # paper: 2-3%; ours is even cheaper
