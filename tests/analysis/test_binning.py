"""Tests for equal-storage importance bins."""

import pytest

from repro.core import macroblock_bits
from repro.core.importance import MacroblockBits
from repro.analysis import bin_balance, equal_storage_bins
from repro.errors import AnalysisError


def _mb(index, bits, importance):
    return MacroblockBits(0, index, index * 1000, index * 1000 + bits,
                          importance)


class TestEqualStorageBins:
    def test_bins_ordered_by_importance(self):
        mbs = [_mb(i, 100, float(10 - i)) for i in range(10)]
        bins = equal_storage_bins(mbs, num_bins=5)
        maxima = [b.max_importance for b in bins]
        assert maxima == sorted(maxima)

    def test_bins_roughly_equal(self):
        mbs = [_mb(i, 100, float(i + 1)) for i in range(64)]
        bins = equal_storage_bins(mbs, num_bins=16)
        assert bin_balance(bins) < 0.2

    def test_all_bits_assigned(self):
        mbs = [_mb(i, 37, float(i + 1)) for i in range(20)]
        bins = equal_storage_bins(mbs, num_bins=4)
        assert sum(b.total_bits for b in bins) == 20 * 37

    def test_single_bin_holds_everything(self):
        mbs = [_mb(i, 10, float(i + 1)) for i in range(5)]
        bins = equal_storage_bins(mbs, num_bins=1)
        assert len(bins) == 1
        assert bins[0].total_bits == 50

    def test_zero_length_mbs_ignored_in_ranges(self):
        mbs = [_mb(0, 0, 1.0), _mb(1, 100, 2.0)]
        bins = equal_storage_bins(mbs, num_bins=2)
        total_ranges = sum(len(b.ranges) for b in bins)
        assert total_ranges == 1

    def test_rejects_empty_video(self):
        with pytest.raises(AnalysisError):
            equal_storage_bins([_mb(0, 0, 1.0)], num_bins=4)

    def test_rejects_zero_bins(self):
        with pytest.raises(AnalysisError):
            equal_storage_bins([_mb(0, 10, 1.0)], num_bins=0)

    def test_on_real_video(self, encoded_medium, importance_medium):
        mbs = macroblock_bits(encoded_medium.trace, importance_medium)
        bins = equal_storage_bins(mbs, num_bins=8)
        assert bin_balance(bins) < 0.6  # real MBs are lumpy but close
        maxima = [b.max_importance for b in bins]
        assert maxima == sorted(maxima)
        assert sum(b.total_bits for b in bins) == \
            sum(mb.bit_end - mb.bit_start for mb in mbs)
