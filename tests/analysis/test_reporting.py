"""Tests for ASCII reporting."""

import pytest

from repro.analysis import format_series, format_table
from repro.errors import AnalysisError


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "value"),
                            [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_title(self):
        text = format_table(("x",), [(1,)], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        text = format_table(("v",), [(1.23456,), (1.2e-7,)])
        assert "1.235" in text
        assert "1.200e-07" in text

    def test_row_width_mismatch(self):
        with pytest.raises(AnalysisError):
            format_table(("a", "b"), [(1,)])


class TestFormatSeries:
    def test_rows(self):
        text = format_series("curve", [1e-6, 1e-3], [0.0, -1.5],
                             x_label="rate", y_label="dB")
        assert "curve" in text
        assert "rate" in text and "dB" in text
        assert "-1.500" in text

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            format_series("x", [1.0], [1.0, 2.0])
