"""Rate/quality predictor: fit-quality floor and pruning semantics.

``DEFAULT_PREDICTOR``'s module docstring promises its committed
weights keep predicting the synthetic fit suite well; the floor test
here is that promise. It re-measures a diverse subset of the
``tools/fit_predictor.py`` suite and fails if the committed weights'
R^2 drops below floors set safely under the fit-time values (0.952
for log2 bits/pixel, 0.997 for PSNR) — so refitting with worse
features, or editing the weights by hand, is caught.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.predictor import (
    DEFAULT_PREDICTOR,
    PROBE_CRF,
    EncodePrediction,
    probe_and_predict,
    probe_features,
    prune_dominated,
)
from repro.codec.config import EncoderConfig
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.stats import inspect_video
from repro.errors import AnalysisError
from repro.metrics.psnr import video_psnr
from repro.video.frame import VideoSequence

FRAMES, HEIGHT, WIDTH = 10, 48, 64


def _suite_clip(seed):
    """One clip of the ``tools/fit_predictor.py`` synthetic suite."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 220, size=(HEIGHT, WIDTH), dtype=np.int32)
    detail = rng.integers(0, 35 + 15 * (seed % 3), size=(HEIGHT, WIDTH))
    pan = seed % 4
    noise = 3 * (seed % 3)
    fade = 4 if seed % 5 == 0 else 0
    frames = []
    for t in range(FRAMES):
        frame = np.roll(base + detail, shift=pan * t, axis=1)
        if noise:
            frame = frame + rng.integers(-noise, noise + 1,
                                         size=frame.shape)
        frames.append(np.clip(frame + fade * t, 0, 255))
    return VideoSequence.from_array(np.stack(frames).astype(np.uint8))


class TestFitQualityFloor:
    #: Static+fade, pan+noise, and fast-pan+detail regimes.
    SEEDS = (0, 5, 7)
    CRF_GRID = (16, 24, 32)

    def test_default_weights_keep_predicting_the_fit_suite(self):
        predicted_bpp, actual_bpp = [], []
        predicted_psnr, actual_psnr = [], []
        for seed in self.SEEDS:
            clip = _suite_clip(seed)
            pixels = clip.total_pixels
            probe = Encoder(EncoderConfig(crf=PROBE_CRF)).encode(clip)
            stats = inspect_video(probe)
            for crf in self.CRF_GRID:
                prediction = DEFAULT_PREDICTOR.predict(stats, pixels, crf)
                config = dataclasses.replace(EncoderConfig(), crf=crf)
                encoded = Encoder(config).encode(clip)
                bits = inspect_video(encoded).total_payload_bits
                predicted_bpp.append(np.log2(prediction.bits_per_pixel))
                actual_bpp.append(np.log2(bits / pixels))
                predicted_psnr.append(prediction.psnr_db)
                actual_psnr.append(
                    video_psnr(clip, Decoder().decode(encoded)))

        def r_squared(actual, predicted):
            actual = np.asarray(actual)
            residual = actual - np.asarray(predicted)
            return 1.0 - residual.var() / actual.var()

        assert r_squared(actual_bpp, predicted_bpp) > 0.80
        assert r_squared(actual_psnr, predicted_psnr) > 0.95


class TestPredictionShape:
    def test_probe_and_predict_covers_the_grid_monotonically(self):
        clip = _suite_clip(1)
        grid = (16, 22, 28, 34)
        predictions = probe_and_predict(clip, grid)
        assert [p.crf for p in predictions] == list(grid)
        bpp = [p.bits_per_pixel for p in predictions]
        psnr = [p.psnr_db for p in predictions]
        # Raising CRF must never be predicted to cost more bits or
        # gain quality.
        assert all(a >= b for a, b in zip(bpp, bpp[1:]))
        assert all(a >= b for a, b in zip(psnr, psnr[1:]))

    def test_probe_features_reject_empty_frame_budget(self):
        clip = _suite_clip(2)
        stats = inspect_video(Encoder(EncoderConfig()).encode(clip))
        with pytest.raises(AnalysisError):
            probe_features(stats, 0, 24)


class TestPruneDominated:
    def _point(self, crf, bpp, psnr):
        return EncodePrediction(crf=crf, bits_per_pixel=bpp, psnr_db=psnr)

    def test_plateau_points_are_dominated(self):
        predictions = [
            self._point(36, 0.4, 30.0),
            self._point(28, 0.8, 33.0),
            self._point(20, 1.6, 33.1),  # +0.1 dB for 2x the bits
        ]
        assert prune_dominated(predictions, epsilon_db=0.25) == [
            True, True, False]

    def test_cheapest_point_always_survives(self):
        predictions = [
            self._point(36, 0.4, 35.0),  # cheapest and best: dominates
            self._point(28, 0.8, 33.0),
            self._point(20, 1.6, 31.0),
        ]
        keep = prune_dominated(predictions, epsilon_db=0.25)
        assert keep == [True, False, False]

    def test_epsilon_widens_the_pruning_band(self):
        predictions = [
            self._point(36, 0.4, 30.0),
            self._point(28, 0.8, 31.0),
        ]
        assert prune_dominated(predictions, epsilon_db=0.25) == [
            True, True]
        assert prune_dominated(predictions, epsilon_db=1.5) == [
            True, False]

    def test_negative_epsilon_rejected(self):
        with pytest.raises(AnalysisError):
            prune_dominated([self._point(24, 1.0, 30.0)], epsilon_db=-0.1)
