"""The scenario matrix: hostile content × injected fault, replayably.

A small single-content matrix must come back green (every invariant
held), reproduce its matrix digest bit-for-bit under the same seed, and
serialize losslessly to the JSON report CI consumes.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.scenarios import (
    ALL_CONTENTS,
    DEFAULT_FAULTS,
    QUICK_CONTENTS,
    build_content,
    run_repair_matrix,
    run_scenario_matrix,
)
from repro.errors import AnalysisError
from repro.runtime import ChaosPolicy, arm_chaos, disarm_chaos


@pytest.fixture(scope="module")
def small_matrix(tmp_path_factory):
    return run_scenario_matrix(
        contents=("scene_cut_storm",), seed=11, trials=3,
        journal_dir=tmp_path_factory.mktemp("journals"),
        model_checks=False)


class TestMatrix:
    def test_all_cells_green(self, small_matrix):
        assert small_matrix.passed
        assert [c.fault for c in small_matrix.cells] == list(DEFAULT_FAULTS)
        for cell in small_matrix.cells:
            assert cell.invariants, cell.fault
            assert all(cell.invariants.values()), (cell.fault,
                                                   cell.invariants)

    def test_fault_cells_record_their_schedule(self, small_matrix):
        by_fault = {c.fault: c for c in small_matrix.cells}
        # The baseline cell runs disarmed; every chaos cell must have
        # fired at least one parent-side or declared fault.
        for fault in ("trial_error", "journal_torn"):
            assert by_fault[fault].chaos_events >= 1
        assert by_fault["none"].chaos_events == 0

    def test_same_seed_same_digest(self, small_matrix, tmp_path):
        again = run_scenario_matrix(
            contents=("scene_cut_storm",), seed=11, trials=3,
            journal_dir=tmp_path, model_checks=False)
        assert again.matrix_digest == small_matrix.matrix_digest
        assert again.journal_digest == small_matrix.journal_digest

    def test_json_report_round_trips(self, small_matrix):
        blob = json.dumps(small_matrix.to_dict(), sort_keys=True)
        loaded = json.loads(blob)
        assert loaded["passed"] is True
        assert loaded["matrix_digest"] == small_matrix.matrix_digest
        assert len(loaded["cells"]) == len(small_matrix.cells)
        assert loaded["cells"][0]["content"] == "scene_cut_storm"


class TestValidation:
    def test_contents_and_faults_checked(self):
        with pytest.raises(AnalysisError, match="unknown scenario"):
            run_scenario_matrix(contents=("mystery",))
        with pytest.raises(AnalysisError, match="unknown fault"):
            run_scenario_matrix(contents=("friendly",),
                                faults=("meteor_strike",))
        with pytest.raises(AnalysisError, match="trials"):
            run_scenario_matrix(contents=("friendly",), trials=2)

    def test_refuses_ambient_chaos(self):
        arm_chaos(ChaosPolicy(fail_trials=(0,)))
        try:
            with pytest.raises(AnalysisError, match="disarm"):
                run_scenario_matrix(contents=("friendly",))
        finally:
            disarm_chaos()

    def test_content_catalog(self):
        assert set(QUICK_CONTENTS) <= set(ALL_CONTENTS)
        assert "friendly" in QUICK_CONTENTS
        video = build_content("friendly", 64, 48, 4, seed=0)
        assert video.to_array().shape == (4, 48, 64)
        hostile = build_content("flicker", 64, 48, 4, seed=0)
        assert hostile.to_array().shape == (4, 48, 64)


@pytest.fixture(scope="module")
def storm_matrix():
    return run_repair_matrix(faults=("single_shard_storm",), seed=11,
                             objects=2, reads=2)


class TestRepairMatrix:
    def test_storm_column_green(self, storm_matrix):
        assert storm_matrix.passed
        assert len(storm_matrix.cells) == 4  # R x repair axes
        for cell in storm_matrix.cells:
            assert cell.invariants["no_silent_miscorrection"], cell
            assert cell.chaos_events >= 1
        by_axes = {(c.replicas, c.repair): c for c in storm_matrix.cells}
        assert by_axes[(2, False)].invariants["zero_refusals"]
        assert by_axes[(2, True)].invariants["repair_converges"]
        assert by_axes[(2, True)].invariants["victim_drained"]
        assert by_axes[(2, True)].invariants["post_repair_clean"]

    def test_same_seed_same_digest(self, storm_matrix):
        again = run_repair_matrix(faults=("single_shard_storm",),
                                  seed=11, objects=2, reads=2)
        assert again.matrix_digest == storm_matrix.matrix_digest

    def test_json_report_round_trips(self, storm_matrix):
        blob = json.dumps(storm_matrix.to_dict(), sort_keys=True)
        loaded = json.loads(blob)
        assert loaded["passed"] is True
        assert loaded["matrix_digest"] == storm_matrix.matrix_digest
        assert len(loaded["cells"]) == 4

    def test_unknown_fault_rejected(self):
        with pytest.raises(AnalysisError, match="unknown repair fault"):
            run_repair_matrix(faults=("meteor_strike",))
        with pytest.raises(AnalysisError, match="replicas axis"):
            run_repair_matrix(replicas_axis=(0,))

    def test_refuses_ambient_chaos(self):
        arm_chaos(ChaosPolicy(fail_trials=(0,)))
        try:
            with pytest.raises(AnalysisError, match="disarm"):
                run_repair_matrix()
        finally:
            disarm_chaos()
