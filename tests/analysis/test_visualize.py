"""Tests for terminal visualization helpers."""

import numpy as np
import pytest

from repro.analysis import (
    SHADES,
    importance_map,
    macroblock_error_map,
    video_error_maps,
)
from repro.errors import AnalysisError
from repro.video import VideoSequence


def _frame(value=0, size=48):
    return np.full((size, size), value, dtype=np.uint8)


class TestErrorMap:
    def test_identical_frames_blank(self):
        text = macroblock_error_map(_frame(), _frame())
        assert set(text) <= {" ", "\n"}

    def test_one_damaged_macroblock(self):
        damaged = _frame()
        damaged[16:32, 16:32] = 200
        text = macroblock_error_map(_frame(), damaged)
        lines = text.splitlines()
        assert lines[1][1] != " "
        assert lines[0][0] == " "

    def test_grid_dimensions(self):
        text = macroblock_error_map(_frame(size=64), _frame(size=64))
        lines = text.splitlines()
        assert len(lines) == 4 and all(len(line) == 4 for line in lines)

    def test_saturation_caps_shade(self):
        damaged = _frame(255)
        text = macroblock_error_map(_frame(0), damaged, saturation=10.0)
        assert set(text) <= {SHADES[-1], "\n"}

    def test_more_damage_darker(self):
        mild = _frame()
        mild[0:16, 0:16] = 8
        harsh = _frame()
        harsh[0:16, 0:16] = 200
        shade_mild = macroblock_error_map(_frame(), mild)[0]
        shade_harsh = macroblock_error_map(_frame(), harsh)[0]
        assert SHADES.index(shade_harsh) > SHADES.index(shade_mild)

    def test_shape_mismatch(self):
        with pytest.raises(AnalysisError):
            macroblock_error_map(_frame(size=48), _frame(size=64))


class TestVideoErrorMaps:
    def test_labels_all_frames(self):
        clean = VideoSequence([_frame(), _frame()])
        text = video_error_maps(clean, clean)
        assert "frame 0:" in text and "frame 1:" in text

    def test_frame_subset(self):
        clean = VideoSequence([_frame(), _frame(), _frame()])
        text = video_error_maps(clean, clean, frames=[2])
        assert "frame 2:" in text and "frame 0:" not in text


class TestImportanceMap:
    def test_leaf_lightest_peak_darkest(self):
        values = np.array([1.0, 1.0, 1.0, 1000.0])
        text = importance_map(values, mb_cols=2)
        assert text.splitlines()[1][1] == SHADES[-1]
        assert SHADES.index(text[0]) < SHADES.index(SHADES[-1])

    def test_rejects_misaligned(self):
        with pytest.raises(AnalysisError):
            importance_map(np.ones(5), mb_cols=2)

    def test_rejects_below_one(self):
        with pytest.raises(AnalysisError):
            importance_map(np.array([0.5, 1.0]), mb_cols=2)

    def test_linear_scale_option(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        text = importance_map(values, mb_cols=2, log_scale=False)
        assert len(text.splitlines()) == 2
