"""Tests for the retention sweep (quality over the device lifetime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    DEFAULT_CONFIGS,
    MitigationConfig,
    run_retention_sweep,
    single_scheme_assignment,
)
from repro.analysis.retention import TRACKED_COUNTERS, lifetime_substrate
from repro.codec import EncoderConfig
from repro.errors import AnalysisError
from repro.video import SceneConfig, synthesize_scene

#: Tiny but multi-slice clip: concealment operates per slice band.
CONFIG = EncoderConfig(crf=24, gop_size=8, slices=2)


@pytest.fixture(scope="module")
def video():
    return synthesize_scene(SceneConfig(
        width=64, height=48, num_frames=6, seed=3, num_objects=2))


@pytest.fixture(scope="module")
def sweep(video):
    """One shared small sweep: unmitigated vs the full mitigation stack."""
    return run_retention_sweep(
        video, t_days=(90.0, 3650.0),
        configs=(MitigationConfig(label="unmitigated"),
                 MitigationConfig(label="scrub", scrub_days=90.0),
                 MitigationConfig(label="all", scrub_days=90.0, retries=3,
                                  conceal=True)),
        scheme="BCH-6", config=CONFIG, runs=2, workers=0,
        rng=np.random.default_rng(17))


class TestMitigationConfig:
    def test_defaults_are_distinct_and_valid(self):
        labels = [c.label for c in DEFAULT_CONFIGS]
        assert len(set(labels)) == len(labels)
        assert any(c.scrub_days for c in DEFAULT_CONFIGS)
        assert any(c.retries for c in DEFAULT_CONFIGS)
        assert any(c.conceal for c in DEFAULT_CONFIGS)

    def test_invalid_scrub_rejected(self):
        with pytest.raises(AnalysisError):
            MitigationConfig(label="x", scrub_days=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(AnalysisError):
            MitigationConfig(label="x", retries=-1)


class TestSingleSchemeAssignment:
    def test_uniform_single_scheme(self):
        assignment = single_scheme_assignment("BCH-6")
        assert len(assignment.schemes) == 1
        assert assignment.schemes[0].name == "BCH-6"

    def test_raw_scheme_rejected(self):
        with pytest.raises(AnalysisError):
            single_scheme_assignment("None")


class TestSweepShape:
    def test_every_cell_present(self, sweep):
        assert len(sweep.points) == 3 * 2  # configs x t grid
        for label in ("unmitigated", "scrub", "all"):
            curve = sweep.series(label)
            assert [p.t_days for p in curve] == [90.0, 3650.0]
            for point in curve:
                assert point.runs == 2
                assert point.failed == 0
                assert np.isfinite(point.psnr_db)
                assert point.worst_psnr_db <= point.psnr_db

    def test_clean_psnr_is_ceiling(self, sweep):
        for point in sweep.points:
            assert point.psnr_db <= sweep.clean_psnr_db + 1e-9

    def test_unknown_series_rejected(self, sweep):
        with pytest.raises(AnalysisError, match="unknown mitigation"):
            sweep.series("nope")
        with pytest.raises(AnalysisError, match="no point"):
            sweep.quality_at("scrub", 123.0)


class TestLifetimeStory:
    """The headline claims, pinned at unit-test scale."""

    def test_unmitigated_quality_degrades(self, sweep):
        assert sweep.quality_at("unmitigated", 3650.0) < \
            sweep.quality_at("unmitigated", 90.0) - 3.0

    def test_mitigations_recover_quality(self, sweep):
        unmitigated = sweep.quality_at("unmitigated", 3650.0)
        assert sweep.quality_at("scrub", 3650.0) > unmitigated
        assert sweep.quality_at("all", 3650.0) > unmitigated

    def test_counters_attribute_mitigations(self, sweep):
        assert set(sweep.counters) == {"unmitigated", "scrub", "all"}
        assert all(set(c) <= set(TRACKED_COUNTERS)
                   for c in sweep.counters.values())
        # Unmitigated: only failures; no scrubs, retries, concealment.
        unmitigated = sweep.counters["unmitigated"]
        assert unmitigated.get("storage_uncorrectable_blocks_total", 0) > 0
        assert "storage_scrubs_total" not in unmitigated
        assert "storage_read_retries_total" not in unmitigated
        assert "decode_concealed_slices_total" not in unmitigated
        # Scrubbing config actually scrubbed.
        assert sweep.counters["scrub"].get("storage_scrubs_total", 0) > 0
        assert "decode_concealed_slices_total" not in \
            sweep.counters["scrub"]
        # The full stack scrubs too (and with drift reset, rarely needs
        # the rest of the ladder).
        assert sweep.counters["all"].get("storage_scrubs_total", 0) > 0

    def test_run_stats_per_config(self, sweep):
        assert set(sweep.stats) == {"unmitigated", "scrub", "all"}
        for stats in sweep.stats.values():
            assert stats.completed == 4  # 2 t_days x 2 runs


class TestSubstrate:
    def test_lifetime_substrate_is_drift_dominated(self):
        model = lifetime_substrate()
        ber_now = model.raw_bit_error_rate(model.scrub_interval_days)
        ber_decade = model.raw_bit_error_rate(3650.0)
        assert ber_decade > 10 * ber_now


class TestValidation:
    def test_empty_grid_rejected(self, video):
        with pytest.raises(AnalysisError):
            run_retention_sweep(video, t_days=(), config=CONFIG)

    def test_negative_t_rejected(self, video):
        with pytest.raises(AnalysisError):
            run_retention_sweep(video, t_days=(-5.0,), config=CONFIG)

    def test_duplicate_labels_rejected(self, video):
        with pytest.raises(AnalysisError, match="duplicate"):
            run_retention_sweep(
                video, configs=(MitigationConfig(label="a"),
                                MitigationConfig(label="a", retries=1)),
                config=CONFIG)

    def test_empty_configs_rejected(self, video):
        with pytest.raises(AnalysisError):
            run_retention_sweep(video, configs=(), config=CONFIG)


class TestJournaling:
    def test_per_config_journals(self, video, tmp_path):
        prefix = tmp_path / "retention"
        run_retention_sweep(
            video, t_days=(3650.0,),
            configs=(MitigationConfig(label="unmitigated"),
                     MitigationConfig(label="scrub", scrub_days=90.0)),
            scheme="BCH-6", config=CONFIG, runs=1, workers=0,
            rng=np.random.default_rng(5), journal=str(prefix))
        assert (tmp_path / "retention.unmitigated.jsonl").exists()
        assert (tmp_path / "retention.scrub.jsonl").exists()
