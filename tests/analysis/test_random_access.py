"""Tests for the random-access seek exhibit."""

import numpy as np
import pytest

from repro.analysis import (
    RandomAccessResult,
    SeekCell,
    run_random_access_sweep,
)
from repro.errors import AnalysisError
from repro.storage import MLCCellModel
from repro.video import SceneConfig, synthesize_scene


@pytest.fixture(scope="module")
def sweep_video():
    return synthesize_scene(SceneConfig(
        width=48, height=32, num_frames=8, seed=4, num_objects=2))


def _sweep(video, **kwargs):
    settings = dict(gop_sizes=(4,), crfs=(30,), ages=(None,), seeks=6,
                    seed=3, shards=2,
                    cell_model=MLCCellModel(write_sigma=1e-9))
    settings.update(kwargs)
    return run_random_access_sweep(video, **settings)


class TestDeterminism:
    def test_digest_replays_across_runs(self, sweep_video):
        first = _sweep(sweep_video)
        second = _sweep(sweep_video)
        assert first.sweep_digest() == second.sweep_digest()

    def test_digest_ignores_wall_clock(self, sweep_video):
        result = _sweep(sweep_video)
        cell = result.cells[0]
        fields = cell.digest_fields()
        for latency_field in ("seek_p50_ms", "seek_p99_ms",
                              "full_read_ms", "speedup"):
            assert latency_field not in fields


class TestCellAccounting:
    def test_grid_and_outcome_bookkeeping(self, sweep_video):
        result = _sweep(sweep_video, gop_sizes=(4, 8), ages=(None,))
        assert len(result.cells) == 2
        for cell in result.cells:
            assert isinstance(cell, SeekCell)
            assert sum(cell.outcomes.values()) == cell.seeks == 6
            assert cell.compression_ratio > 1.0
            assert 0.0 < cell.bytes_read_fraction <= 1.0
            assert cell.frames_decoded_mean > 0.0

    def test_to_dict_carries_digest_and_latencies(self, sweep_video):
        result = _sweep(sweep_video)
        payload = result.to_dict()
        assert payload["sweep_digest"] == result.sweep_digest()
        assert payload["frames"] == len(sweep_video)
        for cell in payload["cells"]:
            assert "seek_p50_ms" in cell and "speedup" in cell

    def test_result_type(self, sweep_video):
        assert isinstance(_sweep(sweep_video), RandomAccessResult)


class TestValidation:
    def test_rejects_empty_axes_and_zero_seeks(self, sweep_video):
        with pytest.raises(AnalysisError):
            run_random_access_sweep(sweep_video, gop_sizes=())
        with pytest.raises(AnalysisError):
            run_random_access_sweep(sweep_video, seeks=0)
