"""Tests for error-rate sweeps."""

import numpy as np
import pytest

from repro.analysis import quality_sweep
from repro.errors import AnalysisError


class TestQualitySweep:
    def test_zero_flip_short_circuit(self, encoded_small, small_video,
                                     decoded_small):
        """At rate 0 no decode is needed; change must be exactly 0."""
        result = quality_sweep(encoded_small, small_video, decoded_small,
                               None, rates=(0.0,), runs=2,
                               rng=np.random.default_rng(0))
        assert result.points[0].mean_change_db == 0.0
        assert result.points[0].max_loss_db == 0.0

    def test_high_rate_causes_loss(self, encoded_small, small_video,
                                   decoded_small):
        result = quality_sweep(encoded_small, small_video, decoded_small,
                               None, rates=(1e-2,), runs=2,
                               rng=np.random.default_rng(1))
        assert result.points[0].max_loss_db > 1.0
        assert result.points[0].mean_flips > 10

    def test_loss_grows_with_rate(self, encoded_small, small_video,
                                  decoded_small):
        result = quality_sweep(encoded_small, small_video, decoded_small,
                               None, rates=(1e-6, 1e-2), runs=3,
                               rng=np.random.default_rng(2))
        assert result.points[0].max_loss_db <= result.points[1].max_loss_db

    def test_forced_runs_scaled_down(self, encoded_small, small_video,
                                     decoded_small):
        """At 1e-10 every run forces a flip; scaling must shrink the
        reported loss to (near) nothing."""
        result = quality_sweep(encoded_small, small_video, decoded_small,
                               None, rates=(1e-10,), runs=2,
                               rng=np.random.default_rng(3))
        point = result.points[0]
        assert point.forced_fraction == 1.0
        assert point.max_loss_db < 1e-3

    def test_ranges_restrict_targets(self, encoded_small, small_video,
                                     decoded_small):
        ranges = [(0, 0, 64)]
        result = quality_sweep(encoded_small, small_video, decoded_small,
                               ranges, rates=(1e-3,), runs=1,
                               rng=np.random.default_rng(4))
        assert result.targeted_bits == 64

    def test_rejects_zero_runs(self, encoded_small, small_video,
                               decoded_small):
        with pytest.raises(AnalysisError):
            quality_sweep(encoded_small, small_video, decoded_small, None,
                          rates=(1e-3,), runs=0)
