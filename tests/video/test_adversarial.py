"""Adversarial content generators: hostile by design, stable by seed.

Each generator must produce a valid, deterministic VideoSequence at the
requested geometry; the suite builder must mirror make_suite's shape so
the scenario matrix (and any sweep) can consume either interchangeably.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video import (
    ADVERSARIAL_PRESETS,
    AdversarialConfig,
    VideoSequence,
    make_adversarial_suite,
)
from repro.video.adversarial import (
    flicker,
    hard_pan_occlusion,
    high_freq_texture,
    noise_burst,
    scene_cut_storm,
    timeline_reverse,
    timeline_shuffle,
)

_CFG = AdversarialConfig(width=64, height=48, num_frames=8, seed=5)

_GENERATORS = (scene_cut_storm, timeline_shuffle, timeline_reverse,
               flicker, noise_burst, high_freq_texture,
               hard_pan_occlusion)


class TestGenerators:
    @pytest.mark.parametrize("generator", _GENERATORS,
                             ids=lambda g: g.__name__)
    def test_geometry_and_dtype(self, generator):
        video = generator(_CFG)
        assert isinstance(video, VideoSequence)
        array = video.to_array()
        assert array.shape == (8, 48, 64)
        assert array.dtype == np.uint8
        assert video.fps == _CFG.fps

    @pytest.mark.parametrize("generator", _GENERATORS,
                             ids=lambda g: g.__name__)
    def test_deterministic_by_seed(self, generator):
        first = generator(_CFG).to_array()
        second = generator(_CFG).to_array()
        assert np.array_equal(first, second)
        other = generator(AdversarialConfig(
            width=64, height=48, num_frames=8, seed=6)).to_array()
        assert not np.array_equal(first, other)

    def test_timeline_reverse_is_exact_reversal_of_a_coherent_scene(self):
        forward = timeline_shuffle(_CFG)  # any permutation of the scene
        reverse = timeline_reverse(_CFG)
        # Both permute the same underlying coherent frames: equal frame
        # multisets, different orders.
        fwd = sorted(f.tobytes() for f in forward.to_array())
        rev = sorted(f.tobytes() for f in reverse.to_array())
        assert fwd == rev

    def test_scene_cut_storm_actually_cuts(self):
        video = scene_cut_storm(_CFG, cut_every=2).to_array()
        # Consecutive frames across a cut differ massively more than
        # frames inside a scene.
        within = np.abs(video[1].astype(int) - video[0].astype(int)).mean()
        across = np.abs(video[2].astype(int) - video[1].astype(int)).mean()
        assert across > 4 * max(within, 1.0)

    def test_config_validation(self):
        with pytest.raises(VideoFormatError):
            AdversarialConfig(width=0, height=48, num_frames=8)
        with pytest.raises(VideoFormatError):
            AdversarialConfig(width=64, height=48, num_frames=0)


class TestSuite:
    def test_mirrors_make_suite_shape(self):
        suite = make_adversarial_suite(64, 48, num_frames=4, seed=1)
        assert [name for name, _ in suite] == \
            [name for name, _ in ADVERSARIAL_PRESETS]
        for _, video in suite:
            assert video.to_array().shape == (4, 48, 64)

    def test_name_selection_and_unknown_rejected(self):
        suite = make_adversarial_suite(64, 48, num_frames=4,
                                       names=["flicker"], seed=1)
        assert len(suite) == 1 and suite[0][0] == "flicker"
        with pytest.raises(VideoFormatError, match="unknown"):
            make_adversarial_suite(64, 48, num_frames=4,
                                   names=["mystery_scene"])

    def test_presets_are_pairwise_distinct(self):
        suite = make_adversarial_suite(64, 48, num_frames=4, seed=1)
        blobs = [video.to_array().tobytes() for _, video in suite]
        assert len(set(blobs)) == len(blobs)
