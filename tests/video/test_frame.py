"""Tests for raw video containers."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video import (
    VideoSequence,
    frames_equal,
    require_comparable,
    sequences_comparable,
    validate_frame,
)


def _frame(height=48, width=64, value=7):
    return np.full((height, width), value, dtype=np.uint8)


class TestValidateFrame:
    def test_accepts_uint8_multiple_of_16(self):
        out = validate_frame(_frame())
        assert out.dtype == np.uint8 and out.shape == (48, 64)

    def test_rejects_non_2d(self):
        with pytest.raises(VideoFormatError):
            validate_frame(np.zeros((2, 16, 16), dtype=np.uint8))

    def test_rejects_bad_dimensions(self):
        with pytest.raises(VideoFormatError):
            validate_frame(np.zeros((17, 32), dtype=np.uint8))

    def test_rejects_float_dtype(self):
        with pytest.raises(VideoFormatError):
            validate_frame(np.zeros((16, 16), dtype=np.float64))

    def test_converts_int_in_range(self):
        out = validate_frame(np.full((16, 16), 200, dtype=np.int32))
        assert out.dtype == np.uint8
        assert int(out[0, 0]) == 200

    def test_rejects_int_out_of_range(self):
        with pytest.raises(VideoFormatError):
            validate_frame(np.full((16, 16), 300, dtype=np.int32))

    def test_rejects_empty(self):
        with pytest.raises(VideoFormatError):
            validate_frame(np.zeros((0, 0), dtype=np.uint8))


class TestVideoSequence:
    def test_basic_geometry(self):
        video = VideoSequence([_frame()] * 3, fps=25.0)
        assert len(video) == 3
        assert video.width == 64 and video.height == 48
        assert video.mb_cols == 4 and video.mb_rows == 3
        assert video.macroblocks_per_frame == 12
        assert video.total_pixels == 3 * 48 * 64

    def test_rejects_mixed_shapes(self):
        with pytest.raises(VideoFormatError):
            VideoSequence([_frame(48, 64), _frame(48, 80)])

    def test_rejects_nonpositive_fps(self):
        with pytest.raises(VideoFormatError):
            VideoSequence([_frame()], fps=0.0)

    def test_empty_geometry_raises(self):
        video = VideoSequence([])
        with pytest.raises(VideoFormatError):
            _ = video.width

    def test_iteration_and_indexing(self):
        frames = [_frame(value=i) for i in range(3)]
        video = VideoSequence(frames)
        assert int(video[1][0, 0]) == 1
        assert [int(f[0, 0]) for f in video] == [0, 1, 2]

    def test_copy_is_deep(self):
        video = VideoSequence([_frame()])
        clone = video.copy()
        clone.frames[0][0, 0] = 99
        assert int(video[0][0, 0]) == 7

    def test_subsequence(self):
        video = VideoSequence([_frame(value=i) for i in range(5)])
        sub = video.subsequence(1, 3)
        assert len(sub) == 2
        assert int(sub[0][0, 0]) == 1

    def test_array_roundtrip(self):
        stack = np.stack([_frame(value=i) for i in range(4)])
        video = VideoSequence.from_array(stack)
        assert np.array_equal(video.to_array(), stack)

    def test_from_array_rejects_2d(self):
        with pytest.raises(VideoFormatError):
            VideoSequence.from_array(_frame())


class TestComparability:
    def test_comparable(self):
        a = VideoSequence([_frame()] * 2)
        b = VideoSequence([_frame(value=9)] * 2)
        assert sequences_comparable(a, b)
        require_comparable(a, b)

    def test_not_comparable_lengths(self):
        a = VideoSequence([_frame()] * 2)
        b = VideoSequence([_frame()])
        assert not sequences_comparable(a, b)
        with pytest.raises(VideoFormatError):
            require_comparable(a, b)

    def test_frames_equal(self):
        a = VideoSequence([_frame()])
        b = VideoSequence([_frame()])
        c = VideoSequence([_frame(value=8)])
        assert frames_equal(a, b)
        assert not frames_equal(a, c)
