"""Tests for raw video file I/O."""

import pytest

from repro.errors import VideoFormatError
from repro.video import (
    SceneConfig,
    VideoSequence,
    frames_equal,
    read_raw_video,
    synthesize_scene,
    write_raw_video,
)


@pytest.fixture()
def video():
    return synthesize_scene(SceneConfig(width=32, height=32, num_frames=3,
                                        seed=2, num_objects=1))


class TestRoundTrip:
    def test_roundtrip_identity(self, tmp_path, video):
        path = tmp_path / "clip.ryuv"
        write_raw_video(path, video)
        loaded = read_raw_video(path)
        assert frames_equal(video, loaded)
        assert loaded.fps == video.fps

    def test_fps_preserved(self, tmp_path, video):
        video.fps = 59.94
        path = tmp_path / "clip.ryuv"
        write_raw_video(path, video)
        assert abs(read_raw_video(path).fps - 59.94) < 1e-9


class TestErrors:
    def test_refuses_empty_sequence(self, tmp_path):
        with pytest.raises(VideoFormatError):
            write_raw_video(tmp_path / "x.ryuv", VideoSequence([]))

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ryuv"
        path.write_bytes(b"NOTAVIDEO")
        with pytest.raises(VideoFormatError):
            read_raw_video(path)

    def test_rejects_truncated_file(self, tmp_path, video):
        path = tmp_path / "trunc.ryuv"
        write_raw_video(path, video)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 100])
        with pytest.raises(VideoFormatError):
            read_raw_video(path)

    def test_rejects_malformed_header(self, tmp_path):
        path = tmp_path / "hdr.ryuv"
        path.write_bytes(b"REPROYUV" + b"not numbers\n")
        with pytest.raises(VideoFormatError):
            read_raw_video(path)
