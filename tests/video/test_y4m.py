"""Tests for YUV4MPEG2 I/O."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video import SceneConfig, frames_equal, synthesize_scene
from repro.video.y4m import read_y4m, write_y4m


@pytest.fixture()
def video():
    return synthesize_scene(SceneConfig(width=32, height=32, num_frames=3,
                                        seed=4, num_objects=1))


def _write_manual_y4m(path, width, height, frames, colorspace="C420",
                      fps="F30:1"):
    chroma_sizes = {"C420": (width // 2) * (height // 2) * 2,
                    "C422": (width // 2) * height * 2,
                    "C444": width * height * 2,
                    "C400": 0}
    with open(path, "wb") as handle:
        handle.write(
            f"YUV4MPEG2 W{width} H{height} {fps} {colorspace}\n"
            .encode("ascii"))
        for frame in frames:
            handle.write(b"FRAME\n")
            handle.write(frame.tobytes())
            handle.write(b"\x80" * chroma_sizes[colorspace])


class TestRoundTrip:
    def test_mono_roundtrip(self, tmp_path, video):
        path = tmp_path / "clip.y4m"
        write_y4m(path, video)
        loaded = read_y4m(path)
        assert frames_equal(video, loaded)
        assert loaded.fps == pytest.approx(video.fps)

    def test_header_format_standard(self, tmp_path, video):
        path = tmp_path / "clip.y4m"
        write_y4m(path, video)
        first = path.read_bytes().split(b"\n", 1)[0]
        assert first.startswith(b"YUV4MPEG2 W32 H32")
        assert b"C400" in first


class TestChromaHandling:
    @pytest.mark.parametrize("colorspace", ["C420", "C422", "C444"])
    def test_chroma_planes_skipped(self, tmp_path, colorspace):
        rng = np.random.default_rng(0)
        frames = [rng.integers(0, 256, (32, 32), dtype=np.uint8)
                  for _ in range(2)]
        path = tmp_path / "color.y4m"
        _write_manual_y4m(path, 32, 32, frames, colorspace=colorspace)
        loaded = read_y4m(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0], frames[0])

    def test_unsupported_colorspace(self, tmp_path):
        path = tmp_path / "weird.y4m"
        path.write_bytes(b"YUV4MPEG2 W32 H32 F30:1 C410\nFRAME\n"
                         + bytes(32 * 32 * 2))
        with pytest.raises(VideoFormatError):
            read_y4m(path)


class TestCropping:
    def test_unaligned_cropped_to_grid(self, tmp_path):
        rng = np.random.default_rng(1)
        frames = [rng.integers(0, 256, (50, 70), dtype=np.uint8)]
        path = tmp_path / "odd.y4m"
        _write_manual_y4m(path, 70, 50, frames, colorspace="C400")
        loaded = read_y4m(path)
        assert loaded.width == 64 and loaded.height == 48
        assert np.array_equal(loaded[0], frames[0][:48, :64])

    def test_crop_disabled_rejects(self, tmp_path):
        frames = [np.zeros((50, 70), dtype=np.uint8)]
        path = tmp_path / "odd.y4m"
        _write_manual_y4m(path, 70, 50, frames, colorspace="C400")
        with pytest.raises(VideoFormatError):
            read_y4m(path, crop_to_macroblocks=False)


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.y4m"
        path.write_bytes(b"NOTY4M W32 H32\n")
        with pytest.raises(VideoFormatError):
            read_y4m(path)

    def test_missing_geometry(self, tmp_path):
        path = tmp_path / "nogeo.y4m"
        path.write_bytes(b"YUV4MPEG2 F30:1 C400\n")
        with pytest.raises(VideoFormatError):
            read_y4m(path)

    def test_truncated_frame(self, tmp_path):
        path = tmp_path / "trunc.y4m"
        path.write_bytes(b"YUV4MPEG2 W32 H32 F30:1 C400\nFRAME\n"
                         + bytes(100))
        with pytest.raises(VideoFormatError):
            read_y4m(path)

    def test_bad_frame_marker(self, tmp_path):
        path = tmp_path / "marker.y4m"
        path.write_bytes(b"YUV4MPEG2 W32 H32 F30:1 C400\nXRAME\n"
                         + bytes(32 * 32))
        with pytest.raises(VideoFormatError):
            read_y4m(path)

    def test_no_frames(self, tmp_path):
        path = tmp_path / "empty.y4m"
        path.write_bytes(b"YUV4MPEG2 W32 H32 F30:1 C400\n")
        with pytest.raises(VideoFormatError):
            read_y4m(path)

    def test_fractional_fps(self, tmp_path):
        frames = [np.zeros((32, 32), dtype=np.uint8)]
        path = tmp_path / "ntsc.y4m"
        _write_manual_y4m(path, 32, 32, frames, colorspace="C400",
                          fps="F30000:1001")
        loaded = read_y4m(path)
        assert loaded.fps == pytest.approx(29.97, abs=0.01)
