"""Tests for synthetic video generation."""

import numpy as np
import pytest

from repro.errors import VideoFormatError
from repro.video import (
    MovingObject,
    SceneConfig,
    SUITE_PRESETS,
    make_suite,
    synthesize_scene,
    textured_background,
)


class TestTexturedBackground:
    def test_shape_and_range(self):
        bg = textured_background(48, 64, seed=1)
        assert bg.shape == (48, 64)
        assert bg.min() >= 0.0 and bg.max() <= 255.0

    def test_deterministic(self):
        assert np.array_equal(textured_background(32, 32, seed=5),
                              textured_background(32, 32, seed=5))

    def test_seed_changes_content(self):
        assert not np.array_equal(textured_background(32, 32, seed=5),
                                  textured_background(32, 32, seed=6))

    def test_has_spatial_structure(self):
        bg = textured_background(64, 64, seed=2)
        # Neighboring pixels should correlate far more than distant ones.
        horizontal_diff = np.abs(np.diff(bg, axis=1)).mean()
        assert horizontal_diff < bg.std()


class TestMovingObject:
    def test_bounces_off_edges(self):
        obj = MovingObject(x=0.0, y=0.0, width=16, height=16,
                           vx=-5.0, vy=0.0)
        obj.step(64, 64)
        assert obj.vx > 0

    def test_render_within_canvas(self):
        obj = MovingObject(x=10.0, y=5.0, width=16, height=16,
                           vx=0.0, vy=0.0, brightness=250.0)
        canvas = np.zeros((48, 64))
        obj.render(canvas)
        assert canvas.max() > 200.0
        assert canvas[:5, :].max() == 0.0  # above the object untouched

    def test_disc_mask_is_round(self):
        obj = MovingObject(x=0, y=0, width=16, height=16, vx=0, vy=0,
                           shape="disc")
        mask = obj.mask()
        assert mask[8, 8]
        assert not mask[0, 0]

    def test_unknown_shape_raises(self):
        obj = MovingObject(x=0, y=0, width=8, height=8, vx=0, vy=0,
                           shape="hexagon")
        with pytest.raises(VideoFormatError):
            obj.mask()


class TestSynthesizeScene:
    def test_geometry(self):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=5, seed=3))
        assert len(video) == 5
        assert video.width == 64 and video.height == 48

    def test_deterministic(self):
        cfg = SceneConfig(width=64, height=48, num_frames=4, seed=9)
        a = synthesize_scene(cfg)
        b = synthesize_scene(cfg)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_motion_changes_frames(self):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=4, seed=3,
                                             num_objects=2))
        assert not np.array_equal(video[0], video[3])

    def test_temporal_redundancy(self):
        """Consecutive frames must be far more similar than random ones:
        that's what motion compensation exploits."""
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=6, seed=3,
                                             num_objects=2))
        consecutive = np.abs(video[1].astype(int) - video[0].astype(int))
        assert consecutive.mean() < 30.0

    def test_scene_cut_discontinuity(self):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=8, seed=3,
                                             num_objects=1, cut_every=4))
        pre_cut = np.abs(video[3].astype(int) - video[2].astype(int)).mean()
        at_cut = np.abs(video[4].astype(int) - video[3].astype(int)).mean()
        assert at_cut > pre_cut * 2

    def test_pan_moves_background(self):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=6, seed=3,
                                             num_objects=0,
                                             pan_speed=(2.0, 0.0)))
        assert not np.array_equal(video[0], video[5])

    def test_noise_adds_variation(self):
        quiet = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=2, seed=3,
                                             num_objects=0))
        noisy = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=2, seed=3,
                                             num_objects=0,
                                             noise_sigma=3.0))
        assert not np.array_equal(quiet[0], noisy[0])

    def test_rejects_zero_frames(self):
        with pytest.raises(VideoFormatError):
            synthesize_scene(SceneConfig(num_frames=0))


class TestSuite:
    def test_full_suite(self):
        suite = make_suite(width=64, height=48, num_frames=3)
        assert len(suite) == len(SUITE_PRESETS)
        for name, video in suite:
            assert len(video) == 3
            assert video.width == 64

    def test_subset_by_name(self):
        suite = make_suite(width=64, height=48, num_frames=2,
                           names=["slow_objects"])
        assert len(suite) == 1
        assert suite[0][0] == "slow_objects"

    def test_unknown_name_raises(self):
        with pytest.raises(VideoFormatError):
            make_suite(names=["nope"])
