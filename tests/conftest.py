"""Shared fixtures.

Encoding is the expensive step, so encoded artifacts are session-scoped
and shared by every test that only reads them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import Decoder, EncodedVideo, Encoder, EncoderConfig
from repro.core import compute_importance
from repro.video import SceneConfig, VideoSequence, synthesize_scene


@pytest.fixture(scope="session")
def small_video() -> VideoSequence:
    """A 64x48, 8-frame scene with two moving objects."""
    return synthesize_scene(SceneConfig(
        width=64, height=48, num_frames=8, seed=11, num_objects=2))


@pytest.fixture(scope="session")
def medium_video() -> VideoSequence:
    """A 96x64, 12-frame scene with more motion (2 GOPs)."""
    return synthesize_scene(SceneConfig(
        width=96, height=64, num_frames=12, seed=7, num_objects=3,
        pan_speed=(0.5, 0.0)))


@pytest.fixture(scope="session")
def default_config() -> EncoderConfig:
    return EncoderConfig(crf=24, gop_size=8)


@pytest.fixture(scope="session")
def encoded_small(small_video, default_config) -> EncodedVideo:
    return Encoder(default_config).encode(small_video)


@pytest.fixture(scope="session")
def encoded_medium(medium_video) -> EncodedVideo:
    return Encoder(EncoderConfig(crf=24, gop_size=12)).encode(medium_video)


@pytest.fixture(scope="session")
def decoded_small(encoded_small) -> VideoSequence:
    return Decoder().decode(encoded_small)


@pytest.fixture(scope="session")
def decoded_medium(encoded_medium) -> VideoSequence:
    return Decoder().decode(encoded_medium)


@pytest.fixture(scope="session")
def importance_small(encoded_small):
    return compute_importance(encoded_small.trace)


@pytest.fixture(scope="session")
def importance_medium(encoded_medium):
    return compute_importance(encoded_medium.trace)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
