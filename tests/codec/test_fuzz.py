"""Fuzz tests: the decoder must decode *anything* placed in a payload.

Approximate storage hands the decoder corrupted bitstreams by design;
the paper's methodology depends on decode-with-errors never failing.
These tests drive that guarantee with adversarial payloads: random
bytes, truncated-looking content (all zeros / all ones), and randomized
multi-bit corruption, across entropy coders and GOP structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import Decoder, Encoder, EncoderConfig, EntropyCoder
from repro.video import SceneConfig, synthesize_scene


@pytest.fixture(scope="module")
def fuzz_targets():
    """Encoded videos across the config space (session-expensive)."""
    video = synthesize_scene(SceneConfig(width=64, height=48, num_frames=6,
                                         seed=13, num_objects=2))
    configs = [
        EncoderConfig(crf=26, gop_size=6),
        EncoderConfig(crf=26, gop_size=6, bframes=2),
        EncoderConfig(crf=26, gop_size=6, slices=2),
        EncoderConfig(crf=26, gop_size=6,
                      entropy_coder=EntropyCoder.CAVLC),
    ]
    return video, [Encoder(config).encode(video) for config in configs]


class TestRandomPayloads:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_bytes_decode(self, fuzz_targets, seed):
        video, encoded_variants = fuzz_targets
        rng = np.random.default_rng(seed)
        encoded = encoded_variants[seed % len(encoded_variants)]
        payloads = [
            rng.integers(0, 256, len(p), dtype=np.uint8).tobytes()
            for p in encoded.frame_payloads()
        ]
        decoded = Decoder().decode(encoded.with_payloads(payloads))
        assert len(decoded) == len(video)
        assert decoded[0].shape == (video.height, video.width)

    @pytest.mark.parametrize("filler", [0x00, 0xFF, 0xAA])
    def test_constant_payloads_decode(self, fuzz_targets, filler):
        _video, encoded_variants = fuzz_targets
        for encoded in encoded_variants:
            payloads = [bytes([filler]) * len(p)
                        for p in encoded.frame_payloads()]
            decoded = Decoder().decode(encoded.with_payloads(payloads))
            assert len(decoded) == len(encoded.frames)


class TestMultiBitCorruption:
    @given(seed=st.integers(0, 10_000), flips=st.integers(1, 64))
    @settings(max_examples=15, deadline=None)
    def test_scattered_flips_decode(self, fuzz_targets, seed, flips):
        _video, encoded_variants = fuzz_targets
        rng = np.random.default_rng(seed)
        encoded = encoded_variants[seed % len(encoded_variants)]
        buffers = [bytearray(p) for p in encoded.frame_payloads()]
        total_bits = sum(8 * len(b) for b in buffers)
        for _ in range(min(flips, total_bits)):
            position = int(rng.integers(0, total_bits))
            cursor = position
            for buffer in buffers:
                if cursor < 8 * len(buffer):
                    buffer[cursor // 8] ^= 0x80 >> (cursor % 8)
                    break
                cursor -= 8 * len(buffer)
        decoded = Decoder().decode(
            encoded.with_payloads([bytes(b) for b in buffers]))
        assert len(decoded) == len(encoded.frames)

    def test_clean_frames_unaffected_by_other_frames(self, fuzz_targets):
        """Corrupting only the final frame leaves every earlier frame
        bit-identical (no backward propagation)."""
        _video, encoded_variants = fuzz_targets
        encoded = encoded_variants[0]  # IPPP
        clean = Decoder().decode(encoded)
        payloads = encoded.frame_payloads()
        corrupted = list(payloads)
        corrupted[-1] = bytes(len(payloads[-1]))
        damaged = Decoder().decode(encoded.with_payloads(corrupted))
        for index in range(len(payloads) - 1):
            assert np.array_equal(damaged[index], clean[index])
