"""Tests for shared encoder/decoder neighbor state."""

from repro.codec.neighbors import FrameMbState
from repro.codec.types import MacroblockMode, MotionVector


def _state(rows=3, cols=4):
    return FrameMbState(rows, cols)


def _record_inter(state, row, col, mv, qp=24, dqp=0, nnz=3):
    state.record(row, col, MacroblockMode.INTER, mv, qp, dqp, nnz)


class TestMvPrediction:
    def test_no_neighbors_predicts_zero(self):
        state = _state()
        assert state.predict_mv(0, 0, 0) == MotionVector(0, 0)

    def test_single_inter_neighbor(self):
        state = _state()
        _record_inter(state, 0, 0, MotionVector(2, 3))
        assert state.predict_mv(0, 1, 0) == MotionVector(2, 3)

    def test_median_of_three(self):
        state = _state()
        _record_inter(state, 1, 0, MotionVector(1, 10))   # A (left)
        _record_inter(state, 0, 1, MotionVector(5, -2))   # B (above)
        _record_inter(state, 0, 2, MotionVector(3, 4))    # C (above-right)
        assert state.predict_mv(1, 1, 0) == MotionVector(3, 4)

    def test_lone_inter_among_intra_used_directly(self):
        state = _state()
        _record_inter(state, 1, 0, MotionVector(6, 6))
        state.record(0, 1, MacroblockMode.INTRA, MotionVector(0, 0),
                     24, 0, 0)
        state.record(0, 2, MacroblockMode.INTRA, MotionVector(0, 0),
                     24, 0, 0)
        # H.264's special case: exactly one inter neighbor -> its MV.
        assert state.predict_mv(1, 1, 0) == MotionVector(6, 6)

    def test_intra_neighbors_contribute_zero_to_median(self):
        state = _state()
        _record_inter(state, 1, 0, MotionVector(6, 6))
        _record_inter(state, 0, 1, MotionVector(6, 6))
        state.record(0, 2, MacroblockMode.INTRA, MotionVector(0, 0),
                     24, 0, 0)
        # Candidates: (6,6), (6,6), (0,0) -> median (6,6).
        assert state.predict_mv(1, 1, 0) == MotionVector(6, 6)

    def test_d_fallback_when_c_missing(self):
        state = _state(rows=2, cols=2)
        _record_inter(state, 0, 0, MotionVector(4, 4))  # D position
        _record_inter(state, 0, 1, MotionVector(4, 4))  # B position
        _record_inter(state, 1, 0, MotionVector(0, 0))  # A position
        # C = (0, 2) out of bounds -> D = (0, 0) used instead.
        assert state.predict_mv(1, 1, 0) == MotionVector(4, 4)

    def test_skip_counts_as_inter(self):
        state = _state()
        state.record(0, 0, MacroblockMode.SKIP, MotionVector(7, 0),
                     24, 0, 0)
        assert state.predict_mv(0, 1, 0) == MotionVector(7, 0)

    def test_slice_boundary_hides_above(self):
        state = _state()
        _record_inter(state, 0, 1, MotionVector(9, 9))
        # With the slice starting at row 1, row 0 is invisible.
        assert state.predict_mv(1, 1, 1) == MotionVector(0, 0)


class TestContexts:
    def test_skip_context_counts(self):
        state = _state()
        assert state.skip_context(1, 1, 0) == 0
        state.record(1, 0, MacroblockMode.SKIP, MotionVector(0, 0), 24, 0, 0)
        assert state.skip_context(1, 1, 0) == 1
        state.record(0, 1, MacroblockMode.SKIP, MotionVector(0, 0), 24, 0, 0)
        assert state.skip_context(1, 1, 0) == 2

    def test_intra_context_counts(self):
        state = _state()
        state.record(1, 0, MacroblockMode.INTRA, MotionVector(0, 0),
                     24, 0, 0)
        assert state.intra_context(1, 1, 0) == 1

    def test_mvd_context_buckets(self):
        state = _state()
        assert state.mvd_context(1, 1, 0) == 0
        _record_inter(state, 1, 0, MotionVector(2, 2))
        assert state.mvd_context(1, 1, 0) == 1
        _record_inter(state, 0, 1, MotionVector(20, 20))
        assert state.mvd_context(1, 1, 0) == 2

    def test_dqp_context_follows_last(self):
        state = _state()
        assert state.dqp_context() == 0
        _record_inter(state, 0, 0, MotionVector(0, 0), qp=25, dqp=1)
        assert state.dqp_context() == 1

    def test_nnz_context_buckets(self):
        state = _state()
        assert state.nnz_context(1, 1, 0) == 0
        _record_inter(state, 1, 0, MotionVector(0, 0), nnz=4)
        assert state.nnz_context(1, 1, 0) == 1
        _record_inter(state, 0, 1, MotionVector(0, 0), nnz=30)
        assert state.nnz_context(1, 1, 0) == 2

    def test_slice_start_resets_qp(self):
        state = _state()
        _record_inter(state, 0, 0, MotionVector(0, 0), qp=30, dqp=6)
        state.start_slice(24)
        assert state.prev_qp == 24
        assert state.dqp_context() == 0
