"""Property tests: vectorized hot paths == scalar references, bit for bit.

Every batched numpy kernel introduced for throughput is checked against
the loop-level implementations in :mod:`repro.codec.reference` on
Hypothesis-generated inputs. These tests are the per-kernel counterpart
of the whole-pipeline net in ``test_golden_bitstreams.py``: a digest
mismatch says *something* diverged, a failure here says exactly which
kernel and on which input.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.codec import reference as ref
from repro.codec.batch import (
    assemble_gop_units,
    encode_batch_with_recon,
    gop_unit_bounds,
)
from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.cabac import CabacDecoder, CabacEncoder
from repro.codec.cavlc import CavlcDecoder, CavlcEncoder
from repro.codec.config import EncoderConfig
from repro.codec.decoder import Decoder
from repro.codec.deblock import (
    _filter_vertical_edges,
    deblock_frame,
    filter_thresholds,
)
from repro.codec.encoder import Encoder
from repro.codec.intra import choose_intra_mode
from repro.codec.motion import (
    ENCODER_RECTS,
    FrameMotionSearch,
    MacroblockSearch,
    pad_reference,
)
from repro.codec.ratecontrol import activity_qp_offset, frame_activity_offsets
from repro.codec.transform import (
    forward_transform,
    quantize,
    reconstruct_residual,
    reconstruct_residuals_many,
)
from repro.video.frame import VideoSequence

pixels = st.integers(min_value=0, max_value=255)


def frames(min_mbs: int = 1, max_mbs: int = 3):
    """Strategy: uint8 frames whose sides are 16 * [min_mbs, max_mbs]."""
    return st.integers(min_mbs, max_mbs).flatmap(
        lambda mb_rows: st.integers(min_mbs, max_mbs).flatmap(
            lambda mb_cols: npst.arrays(
                np.uint8, (16 * mb_rows, 16 * mb_cols),
                elements=pixels,
            )
        )
    )


# ----------------------------------------------------------------------
# Motion search
# ----------------------------------------------------------------------

class TestMotionSearchEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(), search_range=st.integers(1, 4),
           lam=st.floats(0.0, 8.0, allow_nan=False))
    def test_frame_search_matches_macroblock_oracle(self, data,
                                                    search_range, lam):
        current = data.draw(frames(max_mbs=2))
        reference = data.draw(
            npst.arrays(np.uint8, current.shape, elements=pixels))
        padded = pad_reference(reference, search_range)
        frame_search = FrameMotionSearch(current, padded, search_range,
                                         search_range, lam)
        mb_rows = current.shape[0] // 16
        mb_cols = current.shape[1] // 16
        for mb_row in range(mb_rows):
            for mb_col in range(mb_cols):
                oracle = MacroblockSearch(
                    current[16 * mb_row:16 * mb_row + 16,
                            16 * mb_col:16 * mb_col + 16],
                    padded, search_range, 16 * mb_row, 16 * mb_col,
                    search_range)
                table = frame_search.mb_table(mb_row, mb_col)
                for rect in ENCODER_RECTS:
                    want_mv, want_sad = oracle.best_mv(rect, lam)
                    got_mv, got_sad = table[
                        FrameMotionSearch.rect_column(rect)]
                    assert got_mv == want_mv
                    assert got_sad == want_sad

    @settings(max_examples=10, deadline=None)
    @given(data=st.data(), search_range=st.integers(1, 2),
           lam=st.floats(0.0, 4.0, allow_nan=False))
    def test_macroblock_oracle_matches_exhaustive_loops(self, data,
                                                        search_range, lam):
        current = data.draw(
            npst.arrays(np.uint8, (16, 16), elements=pixels))
        reference = data.draw(
            npst.arrays(np.uint8, (16, 16), elements=pixels))
        padded = pad_reference(reference, search_range)
        oracle = MacroblockSearch(current, padded, search_range, 0, 0,
                                  search_range)
        for rect in ((0, 0, 16, 16), (0, 0, 8, 8), (8, 4, 4, 8)):
            want_mv, want_sad = ref.best_mv_scalar(
                current, padded, search_range, 0, 0, rect, search_range,
                lam)
            got_mv, got_sad = oracle.best_mv(rect, lam)
            assert got_mv == want_mv
            assert got_sad == want_sad


# ----------------------------------------------------------------------
# Intra mode selection
# ----------------------------------------------------------------------

class TestIntraEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), min_mb_row=st.integers(0, 1))
    def test_batched_mode_choice_matches_scalar_scan(self, data,
                                                     min_mb_row):
        recon = data.draw(frames(min_mbs=2, max_mbs=2))
        mb_rows = recon.shape[0] // 16
        mb_cols = recon.shape[1] // 16
        source = data.draw(
            npst.arrays(np.uint8, (16, 16), elements=pixels))
        mb_row = data.draw(st.integers(0, mb_rows - 1))
        mb_col = data.draw(st.integers(0, mb_cols - 1))
        want = ref.choose_intra_mode_scalar(source, recon, mb_row, mb_col,
                                            min_mb_row)
        got = choose_intra_mode(source, recon, mb_row, mb_col, min_mb_row)
        assert got[0] == want[0]
        assert got[2] == want[2]
        np.testing.assert_array_equal(got[1], want[1])


# ----------------------------------------------------------------------
# Transform / quantization
# ----------------------------------------------------------------------

class TestTransformEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(block=npst.arrays(np.int32, (4, 4),
                             elements=st.integers(-255, 255)),
           qp=st.integers(0, 51))
    def test_forward_and_quantize_match_loops(self, block, qp):
        batched = quantize(forward_transform(block[np.newaxis]), qp)[0]
        scalar = ref.quantize_scalar(ref.forward_transform_scalar(block),
                                     qp)
        np.testing.assert_array_equal(batched, scalar)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), count=st.integers(1, 4))
    def test_many_residuals_match_per_macroblock_path(self, data, count):
        stacks = data.draw(npst.arrays(
            np.int32, (count, 16, 4, 4), elements=st.integers(-64, 64)))
        qps = data.draw(st.lists(st.integers(0, 51), min_size=count,
                                 max_size=count))
        batched = reconstruct_residuals_many(stacks, qps)
        for index in range(count):
            expected = reconstruct_residual(stacks[index], qps[index])
            np.testing.assert_array_equal(batched[index], expected)

    @settings(max_examples=50, deadline=None)
    @given(levels=npst.arrays(np.int32, (4, 4),
                              elements=st.integers(-64, 64)),
           qp=st.integers(0, 51))
    def test_single_block_reconstruction_matches_loops(self, levels, qp):
        stacked = np.zeros((16, 4, 4), dtype=np.int32)
        stacked[0] = levels
        production = reconstruct_residual(stacked, qp)[:4, :4]
        scalar = ref.reconstruct_residual_block_scalar(levels, qp)
        np.testing.assert_array_equal(production, scalar)


# ----------------------------------------------------------------------
# Deblocking
# ----------------------------------------------------------------------

class TestDeblockEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(), qp=st.integers(16, 51))
    def test_vectorized_edges_match_pixel_loops(self, data, qp):
        frame = data.draw(frames(max_mbs=2))
        alpha, beta, clip_limit = filter_thresholds(qp)
        if alpha == 0:
            return
        vectorized = frame.astype(np.int16)
        _filter_vertical_edges(vectorized, alpha, beta, clip_limit)
        scalar = frame.astype(np.int16)
        ref.filter_vertical_edges_scalar(scalar, alpha, beta, clip_limit)
        np.testing.assert_array_equal(vectorized, scalar)

    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), qp=st.integers(0, 51))
    def test_full_filter_matches_transposed_scalar_sweeps(self, data, qp):
        frame = data.draw(frames(max_mbs=2))
        got = deblock_frame(frame, qp)
        alpha, beta, clip_limit = filter_thresholds(qp)
        if alpha == 0:
            np.testing.assert_array_equal(got, frame)
            return
        working = frame.astype(np.int16)
        ref.filter_vertical_edges_scalar(working, alpha, beta, clip_limit)
        working = working.T.copy()
        ref.filter_vertical_edges_scalar(working, alpha, beta, clip_limit)
        np.testing.assert_array_equal(got, working.T.astype(np.uint8))


# ----------------------------------------------------------------------
# Entropy bulk paths
# ----------------------------------------------------------------------

bit_runs = st.lists(
    st.integers(0, 24).flatmap(
        lambda count: st.tuples(
            st.integers(0, (1 << count) - 1 if count else 0),
            st.just(count))),
    min_size=1, max_size=16)


class TestBulkBypassEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(runs=bit_runs)
    def test_cabac_bulk_bypass_roundtrip_matches_bitwise(self, runs):
        bulk = CabacEncoder(num_contexts=4)
        bitwise = CabacEncoder(num_contexts=4)
        for value, count in runs:
            bulk.encode_bypass_bits(value, count)
            ref.encode_bypass_bits_scalar(bitwise, value, count)
        payload = bulk.finish()
        assert payload == bitwise.finish()
        bulk_dec = CabacDecoder(payload, num_contexts=4)
        bit_dec = CabacDecoder(payload, num_contexts=4)
        for value, count in runs:
            assert bulk_dec.decode_bypass_bits(count) == value
            assert ref.decode_bypass_bits_scalar(bit_dec, count) == value

    @settings(max_examples=40, deadline=None)
    @given(runs=bit_runs)
    def test_cavlc_bulk_bypass_roundtrip_matches_bitwise(self, runs):
        bulk = CavlcEncoder()
        bitwise = CavlcEncoder()
        for value, count in runs:
            bulk.encode_bypass_bits(value, count)
            ref.encode_bypass_bits_scalar(bitwise, value, count)
        payload = bulk.finish()
        assert payload == bitwise.finish()
        bulk_dec = CavlcDecoder(payload)
        bit_dec = CavlcDecoder(payload)
        for value, count in runs:
            assert bulk_dec.decode_bypass_bits(count) == value
            assert ref.decode_bypass_bits_scalar(bit_dec, count) == value

    @settings(max_examples=40, deadline=None)
    @given(runs=bit_runs, tail=st.integers(0, 64))
    def test_bitstream_bulk_io_matches_bitwise(self, runs, tail):
        bulk = BitWriter()
        bitwise = BitWriter()
        for value, count in runs:
            bulk.write_bits(value, count)
            ref.write_bits_scalar(bitwise, value, count)
        assert bulk.bit_length == bitwise.bit_length
        payload = bulk.getvalue()
        assert payload == bitwise.getvalue()
        # Reads past the end must keep yielding zeros, bulk or not.
        bulk_reader = BitReader(payload)
        bit_reader = BitReader(payload)
        for value, count in runs:
            assert bulk_reader.read_bits(count) == value
            assert ref.read_bits_scalar(bit_reader, count) == value
        assert (bulk_reader.read_bits(tail)
                == ref.read_bits_scalar(bit_reader, tail))
        assert bulk_reader.bit_position == bit_reader.bit_position


# ----------------------------------------------------------------------
# Encoder-side batched helpers
# ----------------------------------------------------------------------

class TestEncoderHelperEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(coefficients=npst.arrays(np.int32, (16, 4, 4),
                                    elements=st.integers(-3, 3)))
    def test_coded_block_pattern_matches_loops(self, coefficients):
        got = Encoder._coded_block_pattern(coefficients)
        assert got == ref.coded_block_pattern_scalar(coefficients)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_frame_activity_offsets_match_per_macroblock_var(self, data):
        frame = data.draw(frames(max_mbs=3))
        offsets = frame_activity_offsets(frame)
        mb_rows = frame.shape[0] // 16
        mb_cols = frame.shape[1] // 16
        for mb_row in range(mb_rows):
            for mb_col in range(mb_cols):
                mb = frame[16 * mb_row:16 * mb_row + 16,
                           16 * mb_col:16 * mb_col + 16]
                assert offsets[mb_row, mb_col] == activity_qp_offset(mb)


# ----------------------------------------------------------------------
# Whole-pipeline batching: the encode farm's stacked path
# ----------------------------------------------------------------------

def clip_stacks(count: int, min_frames: int = 2, max_frames: int = 5):
    """Strategy: ``count`` same-geometry uint8 clips as one array."""
    return st.tuples(
        st.integers(1, 2), st.integers(1, 2),
        st.integers(min_frames, max_frames),
    ).flatmap(
        lambda dims: npst.arrays(
            np.uint8,
            (count, dims[2], 16 * dims[0], 16 * dims[1]),
            elements=pixels,
        )
    )


class TestBatchEncoderEquivalence:
    """The batch encoder's contract is bit-for-bit equality: same
    streams (traces included — ``serialize`` covers them) and the same
    reconstruction the decoder would produce from those streams."""

    @settings(max_examples=8, deadline=None)
    @given(data=st.data(), crf=st.integers(18, 42), gop=st.integers(2, 4))
    def test_batched_streams_and_recon_match_per_clip(self, data, crf,
                                                      gop):
        count = data.draw(st.integers(2, 3))
        stack = data.draw(clip_stacks(count))
        videos = [VideoSequence.from_array(clip) for clip in stack]
        config = EncoderConfig(crf=crf, gop_size=gop)
        encodeds, recons = encode_batch_with_recon(videos, config)
        for video, encoded, recon in zip(videos, encodeds, recons):
            want = Encoder(config).encode(video)
            assert encoded.serialize() == want.serialize()
            decoded = Decoder().decode(want).to_array()
            np.testing.assert_array_equal(recon, decoded)

    @settings(max_examples=6, deadline=None)
    @given(data=st.data(), crf=st.integers(20, 40), gop=st.integers(2, 4))
    def test_gop_unit_assembly_is_byte_identical(self, data, crf, gop):
        stack = data.draw(clip_stacks(1, min_frames=3, max_frames=9))
        video = VideoSequence.from_array(stack[0])
        config = EncoderConfig(crf=crf, gop_size=gop)
        whole = Encoder(config).encode(video).serialize()
        bounds = gop_unit_bounds(len(video), config)
        assert bounds[0][0] == 0 and bounds[-1][1] == len(video)
        units = [Encoder(config).encode(video.subsequence(start, stop))
                 for start, stop in bounds]
        stitched = assemble_gop_units(units, len(video))
        assert stitched.serialize() == whole
