"""Decoder error concealment for storage-reported unreadable slices.

The contract under test:

* ``conceal_uncorrectable=False`` (the default) ignores damage maps
  entirely — paper-faithful decodes stay bit-identical;
* with the flag on, a damaged *I* slice is salvaged up to the first
  damaged bit and the rest of its band concealed — temporally from the
  nearest previously decoded frame when one exists, spatially
  (interpolating between border rows) on the very first frame — always
  producing a frame of full declared geometry;
* damaged *P/B* slices still decode best-effort: the hardened entropy
  decode measures better than co-located temporal copy there;
* undamaged slices decode bit-identically whether or not a sibling
  slice in the same frame was concealed (slices are self-contained).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import Decoder, Encoder, EncoderConfig, FrameType
from repro.codec.config import EntropyCoder
from repro.codec.encoder import slice_bands
from repro.obs import metrics as obs_metrics
from repro.video import VideoSequence
from repro.video.frame import MACROBLOCK_SIZE


@pytest.fixture(scope="module")
def smooth_video() -> VideoSequence:
    """Smooth, temporally coherent content: the regime concealment
    assumes (and where garbage decoding is visibly catastrophic)."""
    rng = np.random.default_rng(3)
    height, width, frames = 64, 80, 8
    yy, xx = np.mgrid[0:height, 0:width]
    sequence = []
    for t in range(frames):
        base = 128 + 55 * np.sin(0.08 * xx + 0.25 * t) \
            * np.cos(0.07 * yy + 0.1 * t)
        noisy = base + rng.normal(0.0, 3.0, (height, width))
        sequence.append(np.clip(noisy, 0, 255).astype(np.uint8))
    return VideoSequence(frames=sequence)


@pytest.fixture(scope="module")
def encoded_sliced(smooth_video):
    return Encoder(EncoderConfig(crf=24, gop_size=8, slices=4)).encode(
        smooth_video)


@pytest.fixture(scope="module")
def encoded_nodeblock(smooth_video):
    """Deblocking runs *after* concealment and would smear band edges;
    the bit-exact band assertions need it off."""
    return Encoder(EncoderConfig(crf=24, gop_size=8, slices=4,
                                 deblocking=False)).encode(smooth_video)


def _slice_bit_range(frame, slice_index):
    """Payload bit range of one slice within a frame."""
    offset = sum(frame.header.slice_byte_lengths[:slice_index])
    length = frame.header.slice_byte_lengths[slice_index]
    return 8 * offset, 8 * (offset + length)


def _frames_identical(a: VideoSequence, b: VideoSequence) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a.frames, b.frames))


class TestFlagOff:
    def test_default_decoder_ignores_damage(self, encoded_sliced):
        plain = Decoder().decode(encoded_sliced)
        damage = {1: [_slice_bit_range(encoded_sliced.frames[1], 0)]}
        with_damage = Decoder().decode(encoded_sliced, damage)
        assert _frames_identical(plain, with_damage)

    def test_concealing_decoder_without_damage_is_identical(
            self, encoded_sliced):
        plain = Decoder().decode(encoded_sliced)
        concealing = Decoder(conceal_uncorrectable=True).decode(
            encoded_sliced)
        assert _frames_identical(plain, concealing)

    def test_concealing_decoder_empty_damage_is_identical(
            self, encoded_sliced):
        plain = Decoder().decode(encoded_sliced)
        concealing = Decoder(conceal_uncorrectable=True).decode(
            encoded_sliced, {})
        assert _frames_identical(plain, concealing)


class TestConcealedBands:
    def _damage_one_slice(self, encoded, position, slice_index):
        frame = encoded.frames[position]
        return {position: [_slice_bit_range(frame, slice_index)]}

    def test_full_geometry_always(self, encoded_sliced):
        header = encoded_sliced.header
        damage = {pos: [(0, 8 * len(frame.payload))]
                  for pos, frame in enumerate(encoded_sliced.frames)}
        video = Decoder(conceal_uncorrectable=True).decode(
            encoded_sliced, damage)
        assert len(video) == header.num_frames
        for frame in video.frames:
            assert frame.shape == (header.height, header.width)

    def test_damaged_p_slice_decodes_best_effort(self, encoded_sliced):
        # A damaged P slice is NOT concealed: the concealing decoder's
        # output on the corrupted stream is bit-identical to the plain
        # best-effort decode (the hardened entropy layer measures better
        # than co-located temporal copy on P content).
        position = next(
            pos for pos, f in enumerate(encoded_sliced.frames)
            if f.header.frame_type == FrameType.P)
        frame = encoded_sliced.frames[position]
        lo, hi = _slice_bit_range(frame, 1)
        payloads = list(encoded_sliced.frame_payloads())
        buffer = bytearray(payloads[position])
        noise = np.random.default_rng(7).integers(
            0, 256, (hi - lo) // 8, dtype=np.uint8)
        buffer[lo // 8:hi // 8] = noise.tobytes()
        payloads[position] = bytes(buffer)
        corrupted = encoded_sliced.with_payloads(payloads)
        damage = {position: [(lo, hi)]}
        plain = Decoder().decode(corrupted)
        concealing = Decoder(conceal_uncorrectable=True).decode(
            corrupted, damage)
        assert _frames_identical(plain, concealing)

    def test_undamaged_slices_decode_bit_identically(self, encoded_nodeblock):
        position = next(
            pos for pos, f in enumerate(encoded_nodeblock.frames)
            if f.header.frame_type == FrameType.I)
        frame = encoded_nodeblock.frames[position]
        damage = self._damage_one_slice(encoded_nodeblock, position, 1)
        clean = Decoder().decode(encoded_nodeblock)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            encoded_nodeblock, damage)
        mb_rows = encoded_nodeblock.header.height // MACROBLOCK_SIZE
        bands = slice_bands(mb_rows, len(frame.header.slice_byte_lengths))
        display = frame.header.display_index
        for index, (start_row, end_row) in enumerate(bands):
            if index == 1:
                continue
            top = start_row * MACROBLOCK_SIZE
            bottom = end_row * MACROBLOCK_SIZE
            assert np.array_equal(clean.frames[display][top:bottom],
                                  concealed.frames[display][top:bottom])

    def test_i_band_interpolates_between_borders(self, encoded_nodeblock):
        # Conceal an interior slice of the I frame: rows must blend from
        # the reconstructed row above toward the row below, so the band
        # cannot be wildly far from either border (smooth content).
        position = next(
            pos for pos, f in enumerate(encoded_nodeblock.frames)
            if f.header.frame_type == FrameType.I)
        frame = encoded_nodeblock.frames[position]
        damage = self._damage_one_slice(encoded_nodeblock, position, 1)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            encoded_nodeblock, damage)
        mb_rows = encoded_nodeblock.header.height // MACROBLOCK_SIZE
        bands = slice_bands(mb_rows, len(frame.header.slice_byte_lengths))
        start_row, end_row = bands[1]
        top = start_row * MACROBLOCK_SIZE
        bottom = end_row * MACROBLOCK_SIZE
        display = frame.header.display_index
        band = concealed.frames[display][top:bottom].astype(np.float64)
        above = concealed.frames[display][top - 1].astype(np.float64)
        below = concealed.frames[display][bottom].astype(np.float64)
        bound = np.abs(above - below) + 1.0  # interpolation corridor
        assert np.all(np.abs(band - above) <= bound[None, :] + 0.5)

    def test_concealment_beats_garbage_on_smooth_content(
            self, smooth_video, encoded_sliced):
        """The exhibit's core claim, pinned at unit scale: for a damaged
        I slice on smooth content, concealing beats decoding garbage —
        garbage intra anchors the whole GOP's references."""
        from repro.metrics.psnr import video_psnr

        position = next(
            pos for pos, f in enumerate(encoded_sliced.frames)
            if f.header.frame_type == FrameType.I)
        frame = encoded_sliced.frames[position]
        lo, hi = _slice_bit_range(frame, 1)
        # Trash the slice's payload bytes, as surviving flips would.
        payloads = encoded_sliced.frame_payloads()
        buffer = bytearray(payloads[position])
        noise = np.random.default_rng(0).integers(
            0, 256, (hi - lo) // 8, dtype=np.uint8)
        buffer[lo // 8:hi // 8] = noise.tobytes()
        payloads = list(payloads)
        payloads[position] = bytes(buffer)
        corrupted = encoded_sliced.with_payloads(payloads)
        damage = {position: [(lo, hi)]}
        garbage = Decoder().decode(corrupted)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            corrupted, damage)
        assert video_psnr(smooth_video, concealed) > \
            video_psnr(smooth_video, garbage)

    def test_mid_stream_i_band_copies_previous_frame(self, smooth_video):
        # A mid-stream I frame has a temporal source: its concealed band
        # must be the co-located pixels of the previously decoded
        # display frame, not a spatial interpolation.
        encoded = Encoder(EncoderConfig(crf=24, gop_size=4, slices=4,
                                        deblocking=False)).encode(
            smooth_video)
        position = next(
            pos for pos, f in enumerate(encoded.frames)
            if f.header.frame_type == FrameType.I
            and f.header.display_index > 0)
        frame = encoded.frames[position]
        damage = self._damage_one_slice(encoded, position, 1)
        clean = Decoder().decode(encoded)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            encoded, damage)
        mb_rows = encoded.header.height // MACROBLOCK_SIZE
        bands = slice_bands(mb_rows, len(frame.header.slice_byte_lengths))
        start_row, end_row = bands[1]
        top = start_row * MACROBLOCK_SIZE
        bottom = end_row * MACROBLOCK_SIZE
        display = frame.header.display_index
        assert np.array_equal(concealed.frames[display][top:bottom],
                              clean.frames[display - 1][top:bottom])

    def test_counters_published(self, encoded_sliced):
        registry = obs_metrics.get_registry()
        before = registry.snapshot()["counters"]
        damage = self._damage_one_slice(encoded_sliced, 0, 1)
        Decoder(conceal_uncorrectable=True).decode(encoded_sliced, damage)
        after = registry.snapshot()["counters"]
        slices = after.get("decode_concealed_slices_total", 0) \
            - before.get("decode_concealed_slices_total", 0)
        mbs = after.get("decode_concealed_mbs_total", 0) \
            - before.get("decode_concealed_mbs_total", 0)
        assert slices == 1
        assert mbs > 0


class TestSalvage:
    """Prefix salvage: macroblocks decoded entirely from bits before the
    first damaged bit are kept, bit-identical to the clean decode."""

    @pytest.fixture(scope="class")
    def encoded_cavlc(self, smooth_video):
        # CAVLC reports exact per-MB bit positions (no range-coder
        # read-ahead), so salvage boundaries are deterministic.
        return Encoder(EncoderConfig(
            crf=24, gop_size=8, slices=2, deblocking=False,
            entropy_coder=EntropyCoder.CAVLC)).encode(smooth_video)

    def test_tail_damage_keeps_clean_prefix(self, encoded_cavlc):
        # Damage only the last quarter of an I slice: the band's first
        # macroblock row decodes from earlier bits and must be salvaged
        # bit-identically; the counter shows fewer-than-band concealed.
        position = next(
            pos for pos, f in enumerate(encoded_cavlc.frames)
            if f.header.frame_type == FrameType.I)
        frame = encoded_cavlc.frames[position]
        lo, hi = _slice_bit_range(frame, 1)
        damage = {position: [(lo + 3 * (hi - lo) // 4, hi)]}
        registry = obs_metrics.get_registry()
        before = registry.snapshot()["counters"].get(
            "decode_concealed_mbs_total", 0)
        clean = Decoder().decode(encoded_cavlc)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            encoded_cavlc, damage)
        mbs = registry.snapshot()["counters"].get(
            "decode_concealed_mbs_total", 0) - before
        mb_rows = encoded_cavlc.header.height // MACROBLOCK_SIZE
        mb_cols = encoded_cavlc.header.width // MACROBLOCK_SIZE
        bands = slice_bands(mb_rows, len(frame.header.slice_byte_lengths))
        start_row, end_row = bands[1]
        band_mbs = (end_row - start_row) * mb_cols
        assert 0 < mbs < band_mbs
        # Everything up to the first concealed macroblock is salvaged
        # bit-identically (the salvage stop is raster-ordered from the
        # band's end, counted by the concealed-MB counter).
        display = frame.header.display_index
        salvaged = band_mbs - mbs
        top = start_row * MACROBLOCK_SIZE
        rows_clean = salvaged // mb_cols  # whole salvaged MB rows
        assert rows_clean >= 1
        assert np.array_equal(
            concealed.frames[display][
                top:top + rows_clean * MACROBLOCK_SIZE],
            clean.frames[display][top:top + rows_clean * MACROBLOCK_SIZE])

    def test_padding_only_damage_conceals_nothing(self, encoded_cavlc):
        # Damage confined to the slice's final padding bits never
        # intersects any decoded macroblock: salvage keeps the whole
        # band and the decode is bit-identical to clean.
        position = next(
            pos for pos, f in enumerate(encoded_cavlc.frames)
            if f.header.frame_type == FrameType.I)
        frame = encoded_cavlc.frames[position]
        lo, hi = _slice_bit_range(frame, 1)
        damage = {position: [(hi - 1, hi)]}
        registry = obs_metrics.get_registry()
        before = registry.snapshot()["counters"].get(
            "decode_concealed_slices_total", 0)
        clean = Decoder().decode(encoded_cavlc)
        concealed = Decoder(conceal_uncorrectable=True).decode(
            encoded_cavlc, damage)
        after = registry.snapshot()["counters"].get(
            "decode_concealed_slices_total", 0)
        assert _frames_identical(clean, concealed)
        assert after == before
