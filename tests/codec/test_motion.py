"""Tests for motion estimation and compensation."""

import numpy as np
import pytest

from repro.codec.motion import (
    MacroblockSearch,
    compensate,
    pad_reference,
    reference_dependencies,
)
from repro.codec.types import MotionVector
from repro.errors import EncoderError


def _textured(seed=0, size=64):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (size, size)).astype(np.uint8)


class TestPadReference:
    def test_shape(self):
        frame = _textured()
        padded = pad_reference(frame, 8)
        assert padded.shape == (80, 80)

    def test_edge_replication(self):
        frame = _textured()
        padded = pad_reference(frame, 8)
        assert np.all(padded[0, 8:-8] == frame[0])
        assert padded[0, 0] == frame[0, 0]

    def test_rejects_zero_pad(self):
        with pytest.raises(EncoderError):
            pad_reference(_textured(), 0)


class TestMacroblockSearch:
    def test_finds_exact_translation(self):
        reference = _textured(seed=3)
        dy, dx = 3, -5
        current = reference[16 + dy:32 + dy, 16 + dx:32 + dx]
        padded = pad_reference(reference, 8)
        search = MacroblockSearch(current, padded, 8, 16, 16, 8)
        mv, sad = search.best_mv((0, 0, 16, 16), mv_cost_lambda=0.0)
        assert (mv.dy, mv.dx) == (dy, dx)
        assert sad == 0.0

    def test_lambda_biases_to_zero(self):
        """With flat content every displacement ties at SAD 0; the
        penalty must pick the zero vector."""
        reference = np.full((64, 64), 77, dtype=np.uint8)
        current = reference[16:32, 16:32]
        padded = pad_reference(reference, 8)
        search = MacroblockSearch(current, padded, 8, 16, 16, 8)
        mv, _sad = search.best_mv((0, 0, 16, 16), mv_cost_lambda=2.0)
        assert (mv.dy, mv.dx) == (0, 0)

    def test_partition_sads_consistent_with_full(self):
        reference = _textured(seed=4)
        current = _textured(seed=5)[16:32, 16:32]
        padded = pad_reference(reference, 8)
        search = MacroblockSearch(current, padded, 8, 16, 16, 8)
        full = search.sad_grid((0, 0, 16, 16))
        top = search.sad_grid((0, 0, 8, 16))
        bottom = search.sad_grid((8, 0, 8, 16))
        assert np.array_equal(full, top + bottom)

    def test_quadrant_sads_sum(self):
        reference = _textured(seed=6)
        current = _textured(seed=7)[16:32, 16:32]
        padded = pad_reference(reference, 8)
        search = MacroblockSearch(current, padded, 8, 16, 16, 8)
        full = search.sad_grid((0, 0, 16, 16))
        quads = sum(search.sad_grid((oy, ox, 8, 8))
                    for oy in (0, 8) for ox in (0, 8))
        assert np.array_equal(full, quads)

    def test_rejects_insufficient_padding(self):
        reference = _textured()
        padded = pad_reference(reference, 4)
        with pytest.raises(EncoderError):
            MacroblockSearch(reference[:16, :16], padded, 4, 0, 0, 8)


class TestCompensate:
    def test_zero_mv_is_copy(self):
        reference = _textured(seed=8)
        padded = pad_reference(reference, 8)
        block = compensate(padded, 8, 16, 16, (0, 0, 16, 16),
                           MotionVector(0, 0))
        assert np.array_equal(block, reference[16:32, 16:32])

    def test_translation(self):
        reference = _textured(seed=8)
        padded = pad_reference(reference, 8)
        block = compensate(padded, 8, 16, 16, (0, 0, 16, 16),
                           MotionVector(2, -3))
        assert np.array_equal(block, reference[18:34, 13:29])

    def test_garbage_mv_is_clamped(self):
        reference = _textured(seed=8)
        padded = pad_reference(reference, 8)
        block = compensate(padded, 8, 16, 16, (0, 0, 16, 16),
                           MotionVector(10_000, -10_000))
        assert block.shape == (16, 16)  # clamped, no crash

    def test_partition_rect_offsets(self):
        reference = _textured(seed=9)
        padded = pad_reference(reference, 8)
        block = compensate(padded, 8, 16, 16, (8, 0, 8, 16),
                           MotionVector(0, 0))
        assert np.array_equal(block, reference[24:32, 16:32])


class TestReferenceDependencies:
    def test_aligned_block_one_source(self):
        deps = reference_dependencies(2, 16, 16, (0, 0, 16, 16),
                                      MotionVector(0, 0), 64, 64, mb_cols=4)
        assert len(deps) == 1
        assert deps[0].source == (2, 1 * 4 + 1)
        assert deps[0].pixels == 256

    def test_offset_block_four_sources(self):
        deps = reference_dependencies(2, 16, 16, (0, 0, 16, 16),
                                      MotionVector(4, 4), 64, 64, mb_cols=4)
        assert len(deps) == 4
        assert sum(d.pixels for d in deps) == 256
        by_source = {d.source: d.pixels for d in deps}
        assert by_source[(2, 1 * 4 + 1)] == 12 * 12

    def test_out_of_frame_attributed_to_edge(self):
        deps = reference_dependencies(0, 0, 0, (0, 0, 16, 16),
                                      MotionVector(-8, 0), 64, 64, mb_cols=4)
        assert len(deps) == 1
        assert deps[0].source == (0, 0)
        assert deps[0].pixels == 256

    def test_small_partition_pixel_count(self):
        deps = reference_dependencies(1, 0, 0, (0, 0, 4, 4),
                                      MotionVector(0, 0), 64, 64, mb_cols=4)
        assert deps[0].pixels == 16

    def test_total_pixels_invariant(self):
        """Whatever the MV, contributed pixels total the partition area."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            mv = MotionVector(int(rng.integers(-20, 21)),
                              int(rng.integers(-20, 21)))
            rect = (0, 0, 8, 16)
            deps = reference_dependencies(1, 16, 32, rect, mv, 64, 64, 4)
            assert sum(d.pixels for d in deps) == 8 * 16
