"""Tests for the bit-level stream writer/reader."""

import pytest
from hypothesis import given, strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


class TestBitWriter:
    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b10110001])

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_bit_length_tracks(self):
        writer = BitWriter()
        writer.write_bits(0x3FF, 10)
        assert writer.bit_length == 10

    def test_value_too_wide_raises(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(4, 2)

    def test_negative_count_raises(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(0, -1)


class TestBitReader:
    def test_reads_msb_first(self):
        reader = BitReader(bytes([0b10110001]))
        assert [reader.read_bit() for _ in range(8)] == [1, 0, 1, 1, 0, 0, 0, 1]

    def test_exhausted_reads_zero(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        assert reader.exhausted
        assert reader.read_bits(16) == 0

    def test_read_byte(self):
        reader = BitReader(bytes([0xAB, 0xCD]))
        reader.read_bits(4)
        assert reader.read_byte() == 0xBC

    def test_negative_count_raises(self):
        with pytest.raises(BitstreamError):
            BitReader(b"").read_bits(-1)


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(0, 2 ** 20 - 1),
                              st.integers(20, 24)), max_size=40))
    def test_write_read_identity(self, values):
        writer = BitWriter()
        for value, width in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_bits(width) == value

    @given(st.binary(max_size=64))
    def test_bitwise_copy(self, data):
        reader = BitReader(data)
        writer = BitWriter()
        for _ in range(8 * len(data)):
            writer.write_bit(reader.read_bit())
        assert writer.getvalue() == data
