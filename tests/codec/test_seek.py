"""Tests for the container seek index and partial (random-access) decode.

The load-bearing property here is the partial-decode identity:
``decode_frame_at(t)`` must be bitwise pixel-identical to frame ``t``
of a whole-clip decode on clean streams, across GOP sizes, B-frame
reorderings, and both container versions.
"""

import numpy as np
import pytest

from repro.codec import (
    Decoder,
    EncodedVideo,
    Encoder,
    EncoderConfig,
    SEEK_INDEX_VERSION,
    SeekIndex,
    build_seek_index,
    dependency_closure,
    validate_seek_index,
)
from repro.codec.types import FrameType
from repro.errors import BitstreamError
from repro.video import SceneConfig, synthesize_scene

#: The reordering regimes the identity property must survive: closed
#: GOPs with B frames, longer GOPs with double-B chains, and a pure
#: I/P stream (no reordering at all).
CONFIGS = (
    EncoderConfig(crf=28, gop_size=4, bframes=1),
    EncoderConfig(crf=28, gop_size=8, bframes=2),
    EncoderConfig(crf=28, gop_size=6, bframes=0),
)


@pytest.fixture(scope="module")
def seek_video():
    return synthesize_scene(SceneConfig(
        width=64, height=48, num_frames=10, seed=13, num_objects=2))


@pytest.fixture(scope="module", params=CONFIGS,
                ids=lambda c: f"gop{c.gop_size}b{c.bframes}")
def encoded_gops(request, seek_video) -> EncodedVideo:
    return Encoder(request.param).encode(seek_video)


class TestSeekIndexBlock:
    def test_serialize_roundtrip(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        assert SeekIndex.deserialize(index.serialize()) == index

    def test_every_single_byte_corruption_is_detected(self, encoded_gops):
        blob = build_seek_index(encoded_gops).serialize()
        for position in range(len(blob)):
            damaged = bytearray(blob)
            damaged[position] ^= 0xFF
            with pytest.raises(BitstreamError):
                SeekIndex.deserialize(bytes(damaged))

    def test_every_truncation_is_detected(self, encoded_gops):
        blob = build_seek_index(encoded_gops).serialize()
        for length in range(len(blob)):
            with pytest.raises(BitstreamError):
                SeekIndex.deserialize(blob[:length])

    def test_trailing_garbage_is_detected(self, encoded_gops):
        blob = build_seek_index(encoded_gops).serialize()
        with pytest.raises(BitstreamError):
            SeekIndex.deserialize(blob + b"\x00")

    def test_unknown_version_is_rejected(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        future = SeekIndex(version=SEEK_INDEX_VERSION + 1,
                           display_to_coded=index.display_to_coded,
                           gops=index.gops)
        with pytest.raises(BitstreamError):
            SeekIndex.deserialize(future.serialize())


class TestBuildAndValidate:
    def test_mapping_is_a_display_permutation(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        assert sorted(index.display_to_coded) == \
            list(range(len(encoded_gops.frames)))
        for display, position in enumerate(index.display_to_coded):
            header = encoded_gops.frames[position].header
            assert header.display_index == display

    def test_gops_tile_the_container_body(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        body = encoded_gops.serialize()  # v0 == the body
        header_bytes = encoded_gops.header.serialized_bits() // 8
        assert index.gops[0].byte_start == header_bytes
        assert index.gops[-1].byte_end == len(body)
        for left, right in zip(index.gops, index.gops[1:]):
            assert left.byte_end == right.byte_start
            assert left.frame_pos + left.frame_count == right.frame_pos
        for entry in index.gops:
            anchor = encoded_gops.frames[entry.frame_pos].header
            assert anchor.frame_type == FrameType.I
            assert anchor.display_index == entry.anchor_display

    def test_built_index_validates(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        assert validate_seek_index(index, encoded_gops)

    def test_inconsistent_indexes_fail_validation(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        scrambled = SeekIndex(
            version=index.version,
            display_to_coded=tuple(reversed(index.display_to_coded)),
            gops=index.gops)
        # A permutation that disagrees with the headers, or an index
        # with no GOPs at all, must be rebuilt rather than trusted.
        assert not validate_seek_index(scrambled, encoded_gops)
        empty = SeekIndex(version=index.version,
                          display_to_coded=index.display_to_coded,
                          gops=())
        assert not validate_seek_index(empty, encoded_gops)

    def test_gop_for_display_picks_preceding_anchor(self, encoded_gops):
        index = build_seek_index(encoded_gops)
        for display in range(index.num_frames):
            entry = index.gop_for_display(display)
            assert entry.anchor_display <= display
            later = [e.anchor_display for e in index.gops
                     if entry.anchor_display < e.anchor_display <= display]
            assert not later
        with pytest.raises(BitstreamError):
            index.gop_for_display(index.num_frames)
        with pytest.raises(BitstreamError):
            index.gop_for_display(-1)

    def test_build_rejects_non_container(self):
        with pytest.raises(BitstreamError):
            build_seek_index(b"not a container")


class TestContainerVersions:
    def test_v0_serialization_is_unchanged(self, encoded_gops):
        blob = encoded_gops.serialize()
        assert blob[:4] == b"RVAP"
        parsed = EncodedVideo.deserialize(blob)
        assert parsed.seek_index is None
        assert parsed.frame_payloads() == encoded_gops.frame_payloads()

    def test_v1_roundtrips_with_index(self, encoded_gops):
        blob = encoded_gops.serialize(include_index=True)
        assert blob[:4] == b"RVP1"
        parsed = EncodedVideo.deserialize(blob)
        assert parsed.seek_index == build_seek_index(encoded_gops)
        assert parsed.frame_payloads() == encoded_gops.frame_payloads()

    def test_v1_overhead_is_exactly_the_index_block(self, encoded_gops):
        v0 = encoded_gops.serialize()
        v1 = encoded_gops.serialize(include_index=True)
        index = build_seek_index(encoded_gops).serialize()
        assert len(v1) == len(v0) + len(index) + 8  # magic + u32 length
        assert v1.endswith(v0[4:])  # the body rides along unchanged

    def test_damaged_index_degrades_to_none(self, encoded_gops):
        blob = bytearray(encoded_gops.serialize(include_index=True))
        blob[20] ^= 0xFF  # inside the index block, body untouched
        parsed = EncodedVideo.deserialize(bytes(blob))
        assert parsed.seek_index is None
        clean = Decoder().decode(encoded_gops)
        damaged = Decoder().decode(parsed)
        for a, b in zip(clean.frames, damaged.frames):
            assert np.array_equal(a, b)

    def test_truncated_index_framing_is_rejected(self, encoded_gops):
        blob = encoded_gops.serialize(include_index=True)
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(blob[:6])
        oversize = blob[:4] + (0xFFFFFFFF).to_bytes(4, "big") + blob[8:]
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(oversize)

    def test_seek_index_or_build_rebuilds_bogus_index(self, encoded_gops):
        parsed = EncodedVideo.deserialize(
            encoded_gops.serialize(include_index=True))
        good = build_seek_index(encoded_gops)
        parsed.seek_index = SeekIndex(
            version=good.version,
            display_to_coded=tuple(0 for _ in good.display_to_coded),
            gops=good.gops)
        assert parsed.seek_index_or_build() == good


class TestDependencyClosure:
    def test_closure_opens_with_an_i_frame(self, encoded_gops):
        for display in range(len(encoded_gops.frames)):
            positions = dependency_closure(encoded_gops, [display])
            assert positions == sorted(positions)
            assert encoded_gops.frames[positions[0]].header.frame_type \
                == FrameType.I

    def test_closure_of_everything_is_everything(self, encoded_gops):
        n = len(encoded_gops.frames)
        assert dependency_closure(encoded_gops, range(n)) == list(range(n))

    def test_closure_rejects_out_of_range_targets(self, encoded_gops):
        with pytest.raises(BitstreamError):
            dependency_closure(encoded_gops, [len(encoded_gops.frames)])


class TestPartialDecodeIdentity:
    """decode_frame_at == full decode, bitwise, on clean streams."""

    def test_every_frame_matches_full_decode(self, encoded_gops):
        full = Decoder().decode(encoded_gops)
        decoder = Decoder()
        for display in range(len(full)):
            frame = decoder.decode_frame_at(encoded_gops, display)
            assert np.array_equal(frame, full.frames[display]), \
                f"display {display} diverged from full decode"

    def test_decode_range_matches_full_slice(self, encoded_gops):
        full = Decoder().decode(encoded_gops)
        clip = Decoder().decode_range(encoded_gops, 2, 7)
        assert len(clip) == 5
        for offset, frame in enumerate(clip.frames):
            assert np.array_equal(frame, full.frames[2 + offset])

    def test_identity_survives_both_container_versions(self, encoded_gops):
        full = Decoder().decode(encoded_gops)
        for blob in (encoded_gops.serialize(),
                     encoded_gops.serialize(include_index=True)):
            parsed = EncodedVideo.deserialize(blob)
            frame = Decoder().decode_frame_at(parsed, 3)
            assert np.array_equal(frame, full.frames[3])

    def test_decode_range_rejects_bad_ranges(self, encoded_gops):
        decoder = Decoder()
        with pytest.raises(BitstreamError):
            decoder.decode_range(encoded_gops, 3, 3)
        with pytest.raises(BitstreamError):
            decoder.decode_range(encoded_gops, -1, 2)
        with pytest.raises(BitstreamError):
            decoder.decode_range(encoded_gops, 0,
                                 len(encoded_gops.frames) + 1)
