"""Tests for the entropy coding backends (CABAC and CAVLC).

The central contract: any sequence of (flag | uint | sint | bypass)
symbols encoded with either backend decodes to the identical sequence —
including the context variants, which must match between the two sides.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.cabac import CabacDecoder, CabacEncoder
from repro.codec.cavlc import CavlcDecoder, CavlcEncoder
from repro.codec.contexts import DEFAULT_CONTEXT_MODEL, build_context_model
from repro.codec.entropy import ContextGroup
from repro.errors import BitstreamError

MODEL = DEFAULT_CONTEXT_MODEL

BACKENDS = [
    (CabacEncoder, CabacDecoder),
    (CavlcEncoder, CavlcDecoder),
]


def _roundtrip(encoder_cls, decoder_cls, operations):
    encoder = encoder_cls(MODEL.total_contexts)
    for op in operations:
        kind, group_name, variant, value = op
        group = MODEL[group_name]
        if kind == "flag":
            encoder.encode_flag(bool(value), group, variant)
        elif kind == "uint":
            encoder.encode_uint(value, group, variant)
        elif kind == "sint":
            encoder.encode_sint(value, group, variant)
    payload = encoder.finish()
    decoder = decoder_cls(payload, MODEL.total_contexts)
    decoded = []
    for op in operations:
        kind, group_name, variant, _value = op
        group = MODEL[group_name]
        if kind == "flag":
            decoded.append(int(decoder.decode_flag(group, variant)))
        elif kind == "uint":
            decoded.append(decoder.decode_uint(group, variant))
        elif kind == "sint":
            decoded.append(decoder.decode_sint(group, variant))
    return payload, decoded


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 120))):
        kind = draw(st.sampled_from(["flag", "uint", "sint"]))
        if kind == "flag":
            group = draw(st.sampled_from(["skip_flag", "is_intra", "cbp"]))
            variant = draw(st.integers(0, MODEL[group].variants - 1))
            value = draw(st.integers(0, 1))
        elif kind == "uint":
            group = draw(st.sampled_from(["nnz", "level", "intra_mode"]))
            variant = draw(st.integers(0, MODEL[group].variants - 1))
            value = draw(st.integers(0, min(MODEL[group].max_value, 500)))
        else:
            group = draw(st.sampled_from(["mvd_x", "mvd_y", "dqp"]))
            variant = draw(st.integers(0, MODEL[group].variants - 1))
            value = draw(st.integers(-MODEL[group].max_value,
                                     MODEL[group].max_value))
        ops.append((kind, group, variant, value))
    return ops


class TestRoundTrip:
    @pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
    @given(ops=operations())
    @settings(max_examples=60, deadline=None)
    def test_symbol_sequences(self, encoder_cls, decoder_cls, ops):
        _payload, decoded = _roundtrip(encoder_cls, decoder_cls, ops)
        expected = [op[3] if op[0] != "flag" else int(bool(op[3]))
                    for op in ops]
        assert decoded == expected

    @pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
    def test_extreme_values(self, encoder_cls, decoder_cls):
        group = MODEL["level"]
        ops = [("uint", "level", 0, group.max_value),
               ("uint", "level", 2, 0),
               ("sint", "mvd_x", 1, -MODEL["mvd_x"].max_value)]
        _payload, decoded = _roundtrip(encoder_cls, decoder_cls, ops)
        assert decoded == [group.max_value, 0, -MODEL["mvd_x"].max_value]


class TestCompression:
    def test_cabac_adapts_to_skewed_flags(self):
        """A heavily skewed flag sequence must compress far below 1
        bit/flag under CABAC but stay ~1 bit/flag under CAVLC."""
        ops = [("flag", "skip_flag", 0, 1)] * 2000
        cabac_payload, _ = _roundtrip(CabacEncoder, CabacDecoder, ops)
        cavlc_payload, _ = _roundtrip(CavlcEncoder, CavlcDecoder, ops)
        assert len(cabac_payload) < len(cavlc_payload) / 4

    def test_cabac_contexts_separate_statistics(self):
        """Mixing two skewed contexts should compress nearly as well as
        each alone — contexts keep their own statistics."""
        mixed = []
        for i in range(1000):
            mixed.append(("flag", "skip_flag", 0, 1))
            mixed.append(("flag", "is_intra", 0, 0))
        payload, _ = _roundtrip(CabacEncoder, CabacDecoder, mixed)
        assert len(payload) < 2000 / 8 / 2  # far below 1 bit per flag


class TestRobustness:
    @pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
    def test_corrupted_payload_decodes_in_range(self, encoder_cls,
                                                decoder_cls):
        ops = [("uint", "nnz", 0, 5)] * 50
        payload, _ = _roundtrip(encoder_cls, decoder_cls, ops)
        corrupted = bytearray(payload)
        corrupted[0] ^= 0xFF
        decoder = decoder_cls(bytes(corrupted), MODEL.total_contexts)
        group = MODEL["nnz"]
        for _ in range(50):
            value = decoder.decode_uint(group, 0)
            assert 0 <= value <= group.max_value

    @pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
    def test_empty_payload_decodes(self, encoder_cls, decoder_cls):
        decoder = decoder_cls(b"", MODEL.total_contexts)
        group = MODEL["level"]
        for _ in range(20):
            value = decoder.decode_uint(group, 0)
            assert 0 <= value <= group.max_value

    def test_encoder_rejects_out_of_range(self):
        encoder = CabacEncoder(MODEL.total_contexts)
        group = MODEL["nnz"]
        with pytest.raises(BitstreamError):
            encoder.encode_uint(group.max_value + 1, group)
        with pytest.raises(BitstreamError):
            encoder.encode_uint(-1, group)


class TestContextModel:
    def test_groups_do_not_overlap(self):
        model = build_context_model()
        spans = sorted((g.base, g.base + g.size)
                       for g in model.groups.values())
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert spans[-1][1] == model.total_contexts

    def test_duplicate_group_rejected(self):
        model = build_context_model()
        with pytest.raises(BitstreamError):
            model.add("skip_flag")

    def test_variant_out_of_range(self):
        group = ContextGroup(base=0, variants=2)
        with pytest.raises(BitstreamError):
            group.first_bin_context(2)

    def test_bits_emitted_monotone(self):
        encoder = CabacEncoder(MODEL.total_contexts)
        positions = [encoder.bits_emitted]
        for i in range(200):
            encoder.encode_uint(i % 16, MODEL["nnz"])
            positions.append(encoder.bits_emitted)
        assert positions == sorted(positions)
        assert positions[-1] > 0
