"""Tests for the bitstream inspector."""

import pytest

from repro.codec import Encoder, EncoderConfig, FrameType, MacroblockMode
from repro.codec.stats import inspect_video
from repro.codec.types import PredictionDirection
from repro.video import SceneConfig, VideoSequence, synthesize_scene


@pytest.fixture(scope="module")
def stats_medium(encoded_medium):
    return inspect_video(encoded_medium)


class TestInspection:
    def test_one_stats_per_frame(self, encoded_medium, stats_medium):
        assert len(stats_medium.frames) == len(encoded_medium.frames)

    def test_macroblock_counts(self, stats_medium):
        for frame in stats_medium.frames:
            assert frame.macroblocks == 24  # 96x64 -> 6x4 MBs

    def test_i_frames_all_intra(self, stats_medium):
        for frame in stats_medium.frames:
            if frame.frame_type == FrameType.I:
                assert frame.intra_fraction == 1.0
                assert frame.skip_fraction == 0.0

    def test_p_frames_mostly_inter(self, stats_medium):
        p_frames = [f for f in stats_medium.frames
                    if f.frame_type == FrameType.P]
        assert p_frames
        for frame in p_frames:
            assert frame.intra_fraction < 0.5

    def test_payload_bits_match(self, encoded_medium, stats_medium):
        assert stats_medium.total_payload_bits == \
            encoded_medium.payload_bits

    def test_qp_near_crf(self, stats_medium):
        for frame in stats_medium.frames:
            assert abs(frame.mean_qp - 24) < 5

    def test_bits_by_frame_type(self, stats_medium):
        totals = stats_medium.bits_by_frame_type()
        # I-frames are rarer but individually bigger than P-frames here.
        assert totals[FrameType.I] > 0
        assert totals.get(FrameType.P, 0) > 0


class TestContentSensitivity:
    def test_static_scene_heavily_skipped(self):
        """A static scene's P-frames should be nearly all skip MBs."""
        frame = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=1, seed=8,
                                             num_objects=0))[0]
        video = VideoSequence([frame.copy() for _ in range(6)])
        encoded = Encoder(EncoderConfig(crf=24, gop_size=6)).encode(video)
        stats = inspect_video(encoded)
        p_frames = [f for f in stats.frames if f.frame_type == FrameType.P]
        # The first P still refines the I-frame's quantization; once the
        # reconstruction settles, everything is skipped.
        assert all(f.skip_fraction > 0.5 for f in p_frames)
        assert all(f.skip_fraction == 1.0 for f in p_frames[1:])

    def test_moving_scene_has_motion(self):
        video = synthesize_scene(SceneConfig(width=64, height=48,
                                             num_frames=6, seed=8,
                                             num_objects=3))
        encoded = Encoder(EncoderConfig(crf=24, gop_size=6)).encode(video)
        stats = inspect_video(encoded)
        p_frames = [f for f in stats.frames if f.frame_type == FrameType.P]
        assert any(f.mean_mv_magnitude > 0 for f in p_frames)

    def test_bframes_report_directions(self, medium_video):
        encoded = Encoder(EncoderConfig(crf=24, gop_size=12,
                                        bframes=2)).encode(medium_video)
        stats = inspect_video(encoded)
        directions = set()
        for frame in stats.frames:
            directions.update(frame.directions)
        assert PredictionDirection.FORWARD in directions
        # Backward or bidirectional prediction should appear somewhere.
        assert directions & {PredictionDirection.BACKWARD,
                             PredictionDirection.BIDIRECTIONAL}

    def test_cavlc_streams_inspectable(self, medium_video):
        from repro.codec import EntropyCoder
        encoded = Encoder(EncoderConfig(
            crf=24, gop_size=12,
            entropy_coder=EntropyCoder.CAVLC)).encode(medium_video)
        stats = inspect_video(encoded)
        assert stats.mode_distribution()[MacroblockMode.INTRA] > 0
