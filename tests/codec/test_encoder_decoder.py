"""Integration tests for the full encoder/decoder."""

import numpy as np
import pytest

from repro.codec import (
    Decoder,
    EncodedVideo,
    Encoder,
    EncoderConfig,
    EntropyCoder,
    FrameType,
)
from repro.errors import BitstreamError, EncoderError
from repro.metrics import video_psnr
from repro.video import SceneConfig, VideoSequence, frames_equal, synthesize_scene


class TestRoundTrip:
    def test_decode_matches_reconstruction(self, small_video,
                                           default_config):
        """Decode of a clean stream reproduces the encoder's closed-loop
        reconstruction bit for bit (tested via determinism of decode +
        quality sanity)."""
        encoded = Encoder(default_config).encode(small_video)
        decoded_once = Decoder().decode(encoded)
        decoded_twice = Decoder().decode(encoded)
        assert frames_equal(decoded_once, decoded_twice)

    def test_quality_reasonable(self, small_video, decoded_small):
        assert video_psnr(small_video, decoded_small) > 35.0

    def test_compression_achieved(self, small_video, encoded_small):
        raw_bits = small_video.total_pixels * 8
        assert encoded_small.payload_bits < raw_bits / 4

    def test_lower_crf_higher_quality_more_bits(self, small_video):
        coarse = Encoder(EncoderConfig(crf=32, gop_size=8)).encode(small_video)
        fine = Encoder(EncoderConfig(crf=16, gop_size=8)).encode(small_video)
        assert fine.payload_bits > coarse.payload_bits
        q_coarse = video_psnr(small_video, Decoder().decode(coarse))
        q_fine = video_psnr(small_video, Decoder().decode(fine))
        assert q_fine > q_coarse

    def test_geometry_preserved(self, small_video, decoded_small):
        assert decoded_small.width == small_video.width
        assert decoded_small.height == small_video.height
        assert len(decoded_small) == len(small_video)

    def test_encoder_reconstruct_helper(self, small_video, default_config):
        recon = Encoder(default_config).reconstruct(small_video)
        assert video_psnr(small_video, recon) > 35.0


class TestDeterminism:
    def test_encoding_is_deterministic(self, small_video, default_config):
        """Same input + config -> bit-identical stream (no hidden
        randomness anywhere in the encoder)."""
        a = Encoder(default_config).encode(small_video).serialize()
        b = Encoder(default_config).encode(small_video).serialize()
        assert a == b

    def test_suite_presets_all_encode(self):
        """Every synthetic preset round-trips at reasonable quality."""
        from repro.video import make_suite
        for name, video in make_suite(width=64, height=48, num_frames=4):
            encoded = Encoder(EncoderConfig(crf=26, gop_size=4)).encode(
                video)
            decoded = Decoder().decode(encoded)
            assert video_psnr(video, decoded) > 30.0, name


class TestVariants:
    @pytest.mark.parametrize("bframes", [0, 1, 2])
    def test_bframe_roundtrip(self, small_video, bframes):
        config = EncoderConfig(crf=26, gop_size=8, bframes=bframes)
        encoded = Encoder(config).encode(small_video)
        decoded = Decoder().decode(encoded)
        assert video_psnr(small_video, decoded) > 32.0

    @pytest.mark.parametrize("slices", [1, 2, 3])
    def test_slices_roundtrip(self, small_video, slices):
        config = EncoderConfig(crf=26, gop_size=8, slices=slices)
        encoded = Encoder(config).encode(small_video)
        decoded = Decoder().decode(encoded)
        assert video_psnr(small_video, decoded) > 32.0

    def test_cavlc_roundtrip_and_larger(self, small_video):
        cabac = Encoder(EncoderConfig(crf=26, gop_size=8)).encode(small_video)
        cavlc = Encoder(EncoderConfig(
            crf=26, gop_size=8,
            entropy_coder=EntropyCoder.CAVLC)).encode(small_video)
        assert video_psnr(small_video, Decoder().decode(cavlc)) > 32.0
        # CAVLC costs extra storage (the paper cites 10-15%).
        assert cavlc.payload_bits > cabac.payload_bits

    def test_slices_cost_storage(self, small_video):
        one = Encoder(EncoderConfig(crf=26, gop_size=8)).encode(small_video)
        three = Encoder(EncoderConfig(crf=26, gop_size=8,
                                      slices=3)).encode(small_video)
        assert three.payload_bits >= one.payload_bits

    def test_frame_types_follow_gop(self, small_video):
        encoded = Encoder(EncoderConfig(crf=26, gop_size=4,
                                        bframes=1)).encode(small_video)
        types = {f.header.display_index: f.header.frame_type
                 for f in encoded.frames}
        assert types[0] == FrameType.I
        assert types[4] == FrameType.I
        assert FrameType.B in types.values()

    def test_single_frame_video(self):
        video = synthesize_scene(SceneConfig(width=32, height=32,
                                             num_frames=1, seed=1))
        encoded = Encoder(EncoderConfig(crf=24)).encode(video)
        decoded = Decoder().decode(encoded)
        assert len(decoded) == 1
        assert video_psnr(video, decoded) > 30.0


class TestTrace:
    def test_trace_covers_all_macroblocks(self, encoded_small, small_video):
        trace = encoded_small.trace
        assert trace is not None
        assert len(trace.frames) == len(small_video)
        for frame in trace.frames:
            assert len(frame.macroblocks) == trace.macroblocks_per_frame

    def test_bit_ranges_monotone_within_frame(self, encoded_small):
        for frame in encoded_small.trace.frames:
            cursor = 0
            for mb in frame.macroblocks:
                assert mb.bit_start >= cursor
                assert mb.bit_end >= mb.bit_start
                cursor = mb.bit_end
            assert cursor <= frame.payload_bits

    def test_i_frames_have_no_interframe_deps(self, encoded_small):
        for frame in encoded_small.trace.frames:
            if frame.frame_type != FrameType.I:
                continue
            for mb in frame.macroblocks:
                for dep in mb.dependencies:
                    assert dep.source[0] == frame.coded_index

    def test_p_frames_reference_earlier_coded(self, encoded_small):
        for frame in encoded_small.trace.frames:
            for mb in frame.macroblocks:
                for dep in mb.dependencies:
                    assert dep.source[0] <= frame.coded_index


class TestCorruption:
    def test_any_single_byte_corruption_decodes(self, encoded_small):
        """Flipping any payload byte must never crash the decoder."""
        payloads = encoded_small.frame_payloads()
        rng = np.random.default_rng(3)
        for _ in range(20):
            frame_index = int(rng.integers(0, len(payloads)))
            if not payloads[frame_index]:
                continue
            position = int(rng.integers(0, len(payloads[frame_index])))
            damaged = [bytearray(p) for p in payloads]
            damaged[frame_index][position] ^= 0xFF
            corrupted = encoded_small.with_payloads(
                [bytes(p) for p in damaged])
            decoded = Decoder().decode(corrupted)
            assert len(decoded) == len(payloads)

    def test_all_zero_payloads_decode(self, encoded_small):
        zeroed = encoded_small.with_payloads(
            [bytes(len(p)) for p in encoded_small.frame_payloads()])
        decoded = Decoder().decode(zeroed)
        assert len(decoded) == len(encoded_small.frames)

    def test_early_flip_damages_more_than_late(self, medium_video,
                                               encoded_medium,
                                               decoded_medium):
        """The Figure 3 effect: early bits in a frame matter more."""
        payloads = encoded_medium.frame_payloads()
        target = 1  # first P-frame
        early = [bytearray(p) for p in payloads]
        early[target][1] ^= 0x10
        late = [bytearray(p) for p in payloads]
        late[target][-2] ^= 0x10
        psnr_early = video_psnr(
            decoded_medium,
            Decoder().decode(encoded_medium.with_payloads(
                [bytes(p) for p in early])))
        psnr_late = video_psnr(
            decoded_medium,
            Decoder().decode(encoded_medium.with_payloads(
                [bytes(p) for p in late])))
        assert psnr_early < psnr_late

    def test_error_stops_at_next_i_frame(self, medium_video):
        """Damage from a flip in GOP 1 must not reach GOP 2's frames."""
        config = EncoderConfig(crf=24, gop_size=6)
        encoded = Encoder(config).encode(medium_video)
        clean = Decoder().decode(encoded)
        payloads = encoded.frame_payloads()
        damaged = [bytearray(p) for p in payloads]
        damaged[1][0] ^= 0xFF  # P-frame of the first GOP
        decoded = Decoder().decode(
            encoded.with_payloads([bytes(p) for p in damaged]))
        # Frames of the second GOP (display >= 6) must be untouched.
        for display in range(6, len(medium_video)):
            assert np.array_equal(decoded[display], clean[display])

    def test_slices_confine_damage_rows(self, medium_video):
        """With 2 slices, a flip in the second slice must leave the
        first slice's rows of that frame intact. Deblocking is off so
        the in-loop filter's few-pixel smoothing across the slice
        boundary doesn't blur the entropy-layer containment claim."""
        config = EncoderConfig(crf=24, gop_size=len(medium_video), slices=2,
                               deblocking=False)
        encoded = Encoder(config).encode(medium_video)
        clean = Decoder().decode(encoded)
        frame = encoded.frames[1]
        first_slice_bytes = frame.header.slice_byte_lengths[0]
        damaged = [bytearray(p) for p in encoded.frame_payloads()]
        damaged[1][first_slice_bytes + 1] ^= 0xFF  # inside slice 2
        decoded = Decoder().decode(
            encoded.with_payloads([bytes(p) for p in damaged]))
        display = frame.header.display_index
        slice_rows = (medium_video.mb_rows // 2
                      + medium_video.mb_rows % 2) * 16
        assert np.array_equal(decoded[display][:slice_rows],
                              clean[display][:slice_rows])


class TestValidation:
    def test_empty_video_rejected(self, default_config):
        with pytest.raises(EncoderError):
            Encoder(default_config).encode(VideoSequence([]))

    def test_too_many_slices_rejected(self, small_video):
        config = EncoderConfig(crf=24, gop_size=8, slices=10)
        with pytest.raises(EncoderError):
            Encoder(config).encode(small_video)  # only 3 MB rows

    def test_frame_count_mismatch_rejected(self, encoded_small):
        broken = EncodedVideo(header=encoded_small.header,
                              frames=encoded_small.frames[:-1])
        with pytest.raises(BitstreamError):
            Decoder().decode(broken)
