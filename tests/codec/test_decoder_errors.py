"""Decoder/deserializer error paths: damaged *precise* metadata.

The paper stores headers precisely, so a intact store never hits these;
they define the failure mode for damaged or hostile containers: always
:class:`BitstreamError`, never an internal ``KeyError``/``ValueError``/
``ZeroDivisionError`` (the contract the fuzz harness hammers).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.codec import Decoder, EncodedVideo
from repro.codec.encoded import EncodedFrame
from repro.errors import BitstreamError


@pytest.fixture(scope="module")
def blob(encoded_small):
    return encoded_small.serialize()


def _with_header(encoded, **changes):
    return EncodedVideo(
        header=dataclasses.replace(encoded.header, **changes),
        frames=encoded.frames)


class TestDeserializeErrors:
    def test_truncated_magic(self, blob):
        with pytest.raises(BitstreamError, match="not a serialized"):
            EncodedVideo.deserialize(blob[:2])

    def test_wrong_magic(self, blob):
        with pytest.raises(BitstreamError, match="not a serialized"):
            EncodedVideo.deserialize(b"XXXX" + blob[4:])

    def test_truncated_video_header(self, blob):
        with pytest.raises(BitstreamError, match="truncated header"):
            EncodedVideo.deserialize(blob[:10])

    def test_truncated_frame_header(self, blob):
        # Cut inside the first frame header (video header is 21 bytes).
        with pytest.raises(BitstreamError, match="truncated header"):
            EncodedVideo.deserialize(blob[:24])

    def test_truncated_payload(self, blob):
        with pytest.raises(BitstreamError, match="truncated payload"):
            EncodedVideo.deserialize(blob[:-3])

    def test_invalid_frame_type(self, blob):
        # Frame type is the byte right after the first frame's
        # coded/display indices: 21 (video header) + 4.
        damaged = bytearray(blob)
        damaged[25] = 9
        with pytest.raises(BitstreamError, match="invalid frame type"):
            EncodedVideo.deserialize(bytes(damaged))

    def test_clean_roundtrip_still_works(self, encoded_small, blob):
        clone = EncodedVideo.deserialize(blob)
        assert clone.header == dataclasses.replace(encoded_small.header)
        assert clone.frame_payloads() == encoded_small.frame_payloads()


class TestDecodeStructureErrors:
    def test_frame_count_mismatch(self, encoded_small):
        liar = _with_header(encoded_small,
                            num_frames=encoded_small.header.num_frames + 1)
        with pytest.raises(BitstreamError, match="promises"):
            Decoder().decode(liar)

    def test_zero_geometry(self, encoded_small):
        with pytest.raises(BitstreamError, match="geometry"):
            Decoder().decode(_with_header(encoded_small, height=0))

    def test_non_macroblock_geometry(self, encoded_small):
        with pytest.raises(BitstreamError, match="macroblock size"):
            Decoder().decode(_with_header(encoded_small, width=50))

    def test_invalid_fps(self, encoded_small):
        with pytest.raises(BitstreamError, match="frame rate"):
            Decoder().decode(_with_header(encoded_small, fps=0.0))

    def test_zero_slices(self, encoded_small):
        frames = list(encoded_small.frames)
        frames[0] = EncodedFrame(
            header=dataclasses.replace(frames[0].header,
                                       slice_byte_lengths=[]),
            payload=frames[0].payload)
        liar = EncodedVideo(header=encoded_small.header, frames=frames)
        with pytest.raises(BitstreamError, match="slices"):
            Decoder().decode(liar)

    def test_more_slices_than_rows(self, encoded_small):
        frames = list(encoded_small.frames)
        mb_rows = encoded_small.header.height // 16
        frames[0] = EncodedFrame(
            header=dataclasses.replace(
                frames[0].header,
                slice_byte_lengths=[0] * (mb_rows + 1)),
            payload=frames[0].payload)
        liar = EncodedVideo(header=encoded_small.header, frames=frames)
        with pytest.raises(BitstreamError, match="slices"):
            Decoder().decode(liar)

    def test_duplicate_display_indices(self, encoded_small):
        frames = list(encoded_small.frames)
        frames[0] = EncodedFrame(
            header=dataclasses.replace(frames[0].header,
                                       display_index=1),
            payload=frames[0].payload)
        liar = EncodedVideo(header=encoded_small.header, frames=frames)
        with pytest.raises(BitstreamError, match="display indices"):
            Decoder().decode(liar)

    def test_missing_forward_reference(self, encoded_small):
        # Point a P/B frame at a reference that never decodes.
        frames = list(encoded_small.frames)
        for position, frame in enumerate(frames):
            if frame.header.ref_forward is not None:
                frames[position] = EncodedFrame(
                    header=dataclasses.replace(frame.header,
                                               ref_forward=60000),
                    payload=frame.payload)
                break
        else:
            pytest.skip("clip has no predicted frames")
        liar = EncodedVideo(header=encoded_small.header, frames=frames)
        with pytest.raises(BitstreamError, match="reference"):
            Decoder().decode(liar)


class TestDeclaredPixelGuard:
    """The decode-work cap lives in the decoder itself: any caller is
    protected from absurd declared geometry, not just the fuzz harness."""

    def test_absurd_geometry_rejected_before_allocation(self, encoded_small):
        liar = _with_header(encoded_small, width=1 << 20, height=1 << 20)
        with pytest.raises(BitstreamError, match="declared pixel volume"):
            Decoder().decode(liar)

    def test_cap_is_tunable_per_decoder(self, encoded_small):
        header = encoded_small.header
        declared = header.width * header.height * header.num_frames
        strict = Decoder(max_declared_pixels=declared - 1)
        with pytest.raises(BitstreamError, match="declared pixel volume"):
            strict.decode(encoded_small)
        exact = Decoder(max_declared_pixels=declared)
        assert exact.decode(encoded_small).total_pixels == declared

    def test_default_cap_admits_real_content(self, encoded_small):
        from repro.codec.decoder import MAX_DECLARED_PIXELS

        header = encoded_small.header
        assert (header.width * header.height * header.num_frames
                <= MAX_DECLARED_PIXELS)
        assert Decoder().decode(encoded_small) is not None
