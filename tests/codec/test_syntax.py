"""Tests for macroblock syntax serialization.

The key contract — decode(encode(x)) == x with identical neighbor state
on both sides — is exercised over randomized decisions and both entropy
backends.
"""

import numpy as np
import pytest

from repro.codec.cabac import CabacDecoder, CabacEncoder
from repro.codec.cavlc import CavlcDecoder, CavlcEncoder
from repro.codec.contexts import DEFAULT_CONTEXT_MODEL
from repro.codec.neighbors import FrameMbState
from repro.codec.syntax import (
    decode_macroblock,
    encode_macroblock,
    finalize_macroblock,
    partition_rectangles,
)
from repro.codec.types import (
    FrameType,
    InterPartition,
    IntraMode,
    MacroblockDecision,
    MacroblockMode,
    MotionVector,
    PartitionType,
    PredictionDirection,
    SubPartitionType,
)

MODEL = DEFAULT_CONTEXT_MODEL
BACKENDS = [(CabacEncoder, CabacDecoder), (CavlcEncoder, CavlcDecoder)]


def _random_decision(rng, frame_type, pred_mv, prev_qp):
    mode_pick = rng.random()
    qp = int(np.clip(prev_qp + rng.integers(-2, 3), 0, 51))
    coefficients = rng.integers(-4, 5, (16, 4, 4)).astype(np.int32)
    # Sparsify: most coefficients are zero in practice.
    coefficients[rng.random((16, 4, 4)) < 0.8] = 0
    cbp = tuple(
        bool(np.any(coefficients[_quadrant_blocks(q)]))
        for q in range(4)
    )
    if frame_type != FrameType.I and mode_pick < 0.2:
        return MacroblockDecision(
            mode=MacroblockMode.SKIP, qp=prev_qp,
            partition_type=PartitionType.P16x16,
            partitions=[InterPartition(rect=(0, 0, 16, 16), mv=pred_mv)],
        )
    if frame_type == FrameType.I or mode_pick < 0.4:
        return MacroblockDecision(
            mode=MacroblockMode.INTRA, qp=qp,
            intra_mode=IntraMode(int(rng.integers(0, 4))),
            coefficients=coefficients, cbp=cbp,
        )
    ptype = PartitionType(int(rng.integers(0, 4)))
    sub_types = None
    if ptype == PartitionType.P8x8:
        sub_types = [SubPartitionType(int(rng.integers(0, 4)))
                     for _ in range(4)]
    partitions = []
    for rect in partition_rectangles(ptype, sub_types):
        direction = PredictionDirection.FORWARD
        mv_backward = None
        if frame_type == FrameType.B:
            direction = PredictionDirection(int(rng.integers(0, 3)))
            if direction == PredictionDirection.BIDIRECTIONAL:
                mv_backward = pred_mv + MotionVector(
                    int(rng.integers(-8, 9)), int(rng.integers(-8, 9)))
        partitions.append(InterPartition(
            rect=rect,
            mv=pred_mv + MotionVector(int(rng.integers(-8, 9)),
                                      int(rng.integers(-8, 9))),
            direction=direction,
            mv_backward=mv_backward,
        ))
    return MacroblockDecision(
        mode=MacroblockMode.INTER, qp=qp, partition_type=ptype,
        sub_types=sub_types, partitions=partitions,
        coefficients=coefficients, cbp=cbp,
    )


def _quadrant_blocks(quadrant):
    origins = ((0, 0), (0, 2), (2, 0), (2, 2))
    qy, qx = origins[quadrant]
    return [(qy + by) * 4 + (qx + bx) for by in range(2) for bx in range(2)]


def _decisions_equal(a, b):
    if a.mode != b.mode or a.qp != b.qp:
        return False
    if a.mode == MacroblockMode.INTRA:
        if a.intra_mode != b.intra_mode:
            return False
    elif a.mode == MacroblockMode.INTER:
        if a.partition_type != b.partition_type:
            return False
        if (a.sub_types or None) != (b.sub_types or None):
            return False
        for pa, pb in zip(a.partitions, b.partitions):
            if pa.rect != pb.rect or pa.mv != pb.mv \
                    or pa.direction != pb.direction \
                    or pa.mv_backward != pb.mv_backward:
                return False
    if a.mode != MacroblockMode.SKIP:
        if tuple(a.cbp) != tuple(b.cbp):
            return False
        coeff_a = a.coefficients if a.coefficients is not None else np.zeros(1)
        coeff_b = b.coefficients if b.coefficients is not None else np.zeros(1)
        # Compare only coded quadrants; uncoded ones decode as zero.
        for quadrant in range(4):
            if a.cbp[quadrant]:
                for index in _quadrant_blocks(quadrant):
                    if not np.array_equal(coeff_a[index], coeff_b[index]):
                        return False
    return True


class TestPartitionRectangles:
    def test_cover_macroblock_exactly(self):
        for ptype in PartitionType:
            sub_types = ([SubPartitionType.S4x4] * 4
                         if ptype == PartitionType.P8x8 else None)
            covered = np.zeros((16, 16), dtype=int)
            for oy, ox, h, w in partition_rectangles(ptype, sub_types):
                covered[oy:oy + h, ox:ox + w] += 1
            assert np.all(covered == 1)

    def test_p8x8_requires_subtypes(self):
        from repro.errors import EncoderError
        with pytest.raises(EncoderError):
            partition_rectangles(PartitionType.P8x8, None)

    def test_mixed_subtypes(self):
        rects = partition_rectangles(
            PartitionType.P8x8,
            [SubPartitionType.S8x8, SubPartitionType.S8x4,
             SubPartitionType.S4x8, SubPartitionType.S4x4])
        assert len(rects) == 1 + 2 + 2 + 4


@pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
@pytest.mark.parametrize("frame_type",
                         [FrameType.I, FrameType.P, FrameType.B])
class TestMacroblockRoundTrip:
    def test_random_sequences(self, encoder_cls, decoder_cls, frame_type):
        rng = np.random.default_rng(99)
        rows, cols = 3, 4
        enc_state = FrameMbState(rows, cols)
        dec_state = FrameMbState(rows, cols)
        enc_state.start_slice(24)
        dec_state.start_slice(24)
        encoder = encoder_cls(MODEL.total_contexts)
        decisions = []
        for row in range(rows):
            for col in range(cols):
                pred = enc_state.predict_mv(row, col, 0)
                decision = _random_decision(rng, frame_type, pred,
                                            enc_state.prev_qp)
                decisions.append(decision)
                encode_macroblock(encoder, MODEL, enc_state, decision,
                                  frame_type, row, col, 0)
                finalize_macroblock(enc_state, decision, row, col)
        payload = encoder.finish()
        decoder = decoder_cls(payload, MODEL.total_contexts)
        index = 0
        for row in range(rows):
            for col in range(cols):
                decoded = decode_macroblock(decoder, MODEL, dec_state,
                                            frame_type, row, col, 0)
                assert _decisions_equal(decisions[index], decoded), (
                    f"mismatch at MB ({row},{col}): "
                    f"{decisions[index]} vs {decoded}")
                finalize_macroblock(dec_state, decoded, row, col)
                index += 1
        # Neighbor state must agree bit for bit after the frame.
        assert np.array_equal(enc_state.modes, dec_state.modes)
        assert np.array_equal(enc_state.mvs, dec_state.mvs)
        assert np.array_equal(enc_state.nnz, dec_state.nnz)
        assert enc_state.prev_qp == dec_state.prev_qp


class TestCorruptionRobustness:
    @pytest.mark.parametrize("encoder_cls,decoder_cls", BACKENDS)
    def test_corrupted_stream_decodes_every_mb(self, encoder_cls,
                                               decoder_cls):
        rng = np.random.default_rng(7)
        rows, cols = 3, 4
        state = FrameMbState(rows, cols)
        state.start_slice(24)
        encoder = encoder_cls(MODEL.total_contexts)
        for row in range(rows):
            for col in range(cols):
                pred = state.predict_mv(row, col, 0)
                decision = _random_decision(rng, FrameType.P, pred,
                                            state.prev_qp)
                encode_macroblock(encoder, MODEL, state, decision,
                                  FrameType.P, row, col, 0)
                finalize_macroblock(state, decision, row, col)
        payload = bytearray(encoder.finish())
        for position in range(min(len(payload), 8)):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xA5
            dec_state = FrameMbState(rows, cols)
            dec_state.start_slice(24)
            decoder = decoder_cls(bytes(corrupted), MODEL.total_contexts)
            for row in range(rows):
                for col in range(cols):
                    decision = decode_macroblock(decoder, MODEL, dec_state,
                                                 FrameType.P, row, col, 0)
                    assert 0 <= decision.qp <= 51
                    finalize_macroblock(dec_state, decision, row, col)

    def test_i_frame_rejects_non_intra(self):
        from repro.errors import EncoderError
        encoder = CabacEncoder(MODEL.total_contexts)
        state = FrameMbState(2, 2)
        state.start_slice(24)
        decision = MacroblockDecision(
            mode=MacroblockMode.SKIP, qp=24,
            partitions=[InterPartition(rect=(0, 0, 16, 16),
                                       mv=MotionVector(0, 0))])
        with pytest.raises(EncoderError):
            encode_macroblock(encoder, MODEL, state, decision, FrameType.I,
                              0, 0, 0)
