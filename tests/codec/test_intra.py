"""Tests for intra prediction."""

import numpy as np

from repro.codec.intra import (
    choose_intra_mode,
    intra_dependencies,
    predict_intra,
)
from repro.codec.types import IntraMode


def _frame_with_borders():
    frame = np.zeros((48, 48), dtype=np.uint8)
    frame[15, 16:32] = np.arange(16, dtype=np.uint8) + 100  # above row
    frame[16:32, 15] = np.arange(16, dtype=np.uint8) + 200  # left column
    return frame


class TestPredictIntra:
    def test_vertical_copies_row_above(self):
        frame = _frame_with_borders()
        pred = predict_intra(frame, 1, 1, IntraMode.VERTICAL)
        assert np.array_equal(pred[0], frame[15, 16:32])
        assert np.array_equal(pred[15], frame[15, 16:32])

    def test_horizontal_copies_left_column(self):
        frame = _frame_with_borders()
        pred = predict_intra(frame, 1, 1, IntraMode.HORIZONTAL)
        assert np.array_equal(pred[:, 0], frame[16:32, 15])
        assert np.array_equal(pred[:, 15], frame[16:32, 15])

    def test_dc_is_mean_of_borders(self):
        frame = _frame_with_borders()
        pred = predict_intra(frame, 1, 1, IntraMode.DC)
        expected = int(round(np.mean(np.concatenate(
            [frame[15, 16:32], frame[16:32, 15]]).astype(float))))
        assert np.all(pred == expected)

    def test_top_left_corner_falls_back_to_gray(self):
        frame = _frame_with_borders()
        for mode in IntraMode:
            pred = predict_intra(frame, 0, 0, mode)
            assert np.all(pred == 128)

    def test_first_row_vertical_unavailable(self):
        frame = _frame_with_borders()
        pred = predict_intra(frame, 0, 1, IntraMode.VERTICAL)
        assert np.all(pred == 128)

    def test_slice_boundary_blocks_above(self):
        frame = _frame_with_borders()
        pred = predict_intra(frame, 1, 1, IntraMode.VERTICAL, min_mb_row=1)
        assert np.all(pred == 128)  # row above belongs to another slice

    def test_dc_left_only_on_first_row(self):
        frame = _frame_with_borders()
        frame[0:16, 15] = 50
        pred = predict_intra(frame, 0, 1, IntraMode.DC)
        assert np.all(pred == 50)


class TestIntraDependencies:
    def test_vertical_depends_on_above(self):
        deps = intra_dependencies(3, 2, 1, mb_cols=4,
                                  mode=IntraMode.VERTICAL)
        assert len(deps) == 1
        assert deps[0].source == (3, 1 * 4 + 1)
        assert deps[0].pixels == 256

    def test_horizontal_depends_on_left(self):
        deps = intra_dependencies(3, 2, 1, mb_cols=4,
                                  mode=IntraMode.HORIZONTAL)
        assert deps[0].source == (3, 2 * 4 + 0)

    def test_dc_splits_between_neighbors(self):
        deps = intra_dependencies(0, 1, 1, mb_cols=4, mode=IntraMode.DC)
        assert len(deps) == 2
        assert sum(d.pixels for d in deps) == 256

    def test_corner_has_no_dependencies(self):
        for mode in IntraMode:
            assert intra_dependencies(0, 0, 0, mb_cols=4, mode=mode) == []

    def test_slice_boundary_removes_above(self):
        deps = intra_dependencies(0, 2, 1, mb_cols=4,
                                  mode=IntraMode.VERTICAL, min_mb_row=2)
        assert deps == []


class TestChooseIntraMode:
    def test_picks_vertical_for_vertical_structure(self):
        frame = np.zeros((48, 48), dtype=np.uint8)
        columns = np.tile(np.arange(16, dtype=np.uint8) * 10, (17, 1))
        frame[15:32, 16:32] = columns  # above row + target share columns
        source = frame[16:32, 16:32]
        mode, pred, sad = choose_intra_mode(source, frame, 1, 1)
        assert mode == IntraMode.VERTICAL
        assert sad == 0

    def test_picks_horizontal_for_horizontal_structure(self):
        frame = np.zeros((48, 48), dtype=np.uint8)
        rows = np.tile((np.arange(16, dtype=np.uint8) * 9)[:, None], (1, 17))
        frame[16:32, 15:32] = rows
        source = frame[16:32, 16:32]
        mode, _pred, sad = choose_intra_mode(source, frame, 1, 1)
        assert mode == IntraMode.HORIZONTAL
        assert sad == 0

    def test_flat_content_prefers_dc(self):
        frame = np.full((48, 48), 90, dtype=np.uint8)
        source = frame[16:32, 16:32]
        mode, _pred, sad = choose_intra_mode(source, frame, 1, 1)
        assert sad == 0  # all modes perfect; DC tried first wins ties
        assert mode == IntraMode.DC
