"""Tests for the 4x4 integer transform and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.transform import (
    ZIGZAG_4x4,
    blockify,
    deblockify,
    forward_transform,
    inverse_transform,
    quant_step,
    reconstruct_residual,
    transform_and_quantize,
    zigzag_flatten,
    zigzag_unflatten,
)
from repro.errors import EncoderError


class TestQuantStep:
    def test_base_value(self):
        assert quant_step(0) == pytest.approx(0.625)

    def test_doubles_every_six(self):
        assert quant_step(18) == pytest.approx(2 * quant_step(12))

    def test_rejects_out_of_range(self):
        with pytest.raises(EncoderError):
            quant_step(52)
        with pytest.raises(EncoderError):
            quant_step(-1)


class TestBlockify:
    def test_roundtrip(self):
        mb = np.arange(256, dtype=np.int32).reshape(16, 16)
        assert np.array_equal(deblockify(blockify(mb)), mb)

    def test_block_zero_is_top_left(self):
        mb = np.zeros((16, 16), dtype=np.int32)
        mb[:4, :4] = 7
        blocks = blockify(mb)
        assert np.all(blocks[0] == 7)
        assert np.all(blocks[1:] == 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(EncoderError):
            blockify(np.zeros((8, 8)))


class TestTransform:
    def test_inverse_is_exact_on_integers(self):
        rng = np.random.default_rng(0)
        blocks = rng.integers(-255, 256, (16, 4, 4))
        out = inverse_transform(forward_transform(blocks).astype(np.float64))
        assert np.array_equal(out, blocks)

    def test_dc_coefficient_is_scaled_sum(self):
        block = np.full((1, 4, 4), 10, dtype=np.int64)
        coeffs = forward_transform(block)
        assert coeffs[0, 0, 0] == 160  # sum of all entries
        assert np.all(coeffs[0][1:, :] == 0)

    @given(st.integers(0, 44), st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quantization_error_bounded(self, qp, seed):
        """Reconstruction error per pixel is bounded by ~the quant step."""
        rng = np.random.default_rng(seed)
        residual = rng.integers(-255, 256, (16, 16))
        levels = transform_and_quantize(residual, qp)
        recon = reconstruct_residual(levels, qp)
        # Worst-case rounding: half a step per coefficient, spread by the
        # (orthonormal-scaled) inverse transform.
        bound = quant_step(qp) * 2.0 + 1.0
        assert np.abs(recon - residual).max() <= bound

    def test_high_qp_zeroes_small_residuals(self):
        residual = np.ones((16, 16), dtype=np.int32)
        levels = transform_and_quantize(residual, 40)
        assert not np.any(levels)

    def test_low_qp_preserves_detail(self):
        rng = np.random.default_rng(1)
        residual = rng.integers(-30, 31, (16, 16))
        levels = transform_and_quantize(residual, 4)
        recon = reconstruct_residual(levels, 4)
        assert np.abs(recon - residual).max() <= 2


class TestZigzag:
    def test_visits_every_position_once(self):
        assert sorted(ZIGZAG_4x4) == sorted(
            (r, c) for r in range(4) for c in range(4))

    def test_starts_at_dc_ends_at_hf(self):
        assert ZIGZAG_4x4[0] == (0, 0)
        assert ZIGZAG_4x4[-1] == (3, 3)

    def test_roundtrip(self):
        block = np.arange(16).reshape(4, 4)
        assert np.array_equal(zigzag_unflatten(zigzag_flatten(block)), block)

    def test_low_frequency_first(self):
        """Zigzag should front-load low-frequency positions: the sum of
        (row+col) must be non-decreasing-ish; check first four exactly."""
        assert ZIGZAG_4x4[1] in ((0, 1), (1, 0))
        assert ZIGZAG_4x4[2] in ((0, 1), (1, 0))
