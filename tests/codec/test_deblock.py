"""Tests for the in-loop deblocking filter."""

import numpy as np
import pytest

from repro.codec import Decoder, Encoder, EncoderConfig
from repro.codec.deblock import blockiness, deblock_frame, filter_thresholds
from repro.metrics import video_psnr
from repro.video import SceneConfig, frames_equal, synthesize_scene


def _blocky_frame():
    """A frame quantized into flat 4x4 tiles (worst-case blockiness)."""
    rng = np.random.default_rng(0)
    tiles = rng.integers(90, 140, (12, 16))
    return np.kron(tiles, np.ones((4, 4))).astype(np.uint8)


class TestThresholds:
    def test_disabled_at_low_qp(self):
        assert filter_thresholds(0) == (0, 0, 0)
        assert filter_thresholds(15) == (0, 0, 0)

    def test_grow_with_qp(self):
        alpha24, beta24, _c = filter_thresholds(24)
        alpha40, beta40, _c = filter_thresholds(40)
        assert alpha40 > alpha24
        assert beta40 >= beta24

    def test_clip_positive_when_active(self):
        _a, _b, clip_limit = filter_thresholds(30)
        assert clip_limit >= 1


class TestDeblockFrame:
    def test_reduces_blockiness(self):
        frame = _blocky_frame()
        filtered = deblock_frame(frame, qp=32)
        assert blockiness(filtered) < blockiness(frame)

    def test_input_untouched(self):
        frame = _blocky_frame()
        original = frame.copy()
        deblock_frame(frame, qp=32)
        assert np.array_equal(frame, original)

    def test_noop_at_low_qp(self):
        frame = _blocky_frame()
        assert np.array_equal(deblock_frame(frame, qp=4), frame)

    def test_preserves_real_edges(self):
        """A strong genuine edge (step > alpha) must survive."""
        frame = np.zeros((32, 32), dtype=np.uint8)
        frame[:, 16:] = 255
        filtered = deblock_frame(frame, qp=30)
        assert int(filtered[5, 15]) == 0
        assert int(filtered[5, 16]) == 255

    def test_smooths_small_steps(self):
        frame = np.zeros((32, 32), dtype=np.uint8)
        frame[:, 16:] = 8  # small grid-aligned step: coding artifact
        filtered = deblock_frame(frame, qp=30)
        assert int(filtered[5, 15]) > 0
        assert int(filtered[5, 16]) < 8

    def test_values_stay_in_range(self):
        rng = np.random.default_rng(3)
        frame = rng.integers(0, 256, (48, 48)).astype(np.uint8)
        filtered = deblock_frame(frame, qp=40)
        assert filtered.dtype == np.uint8


class TestInLoop:
    @pytest.fixture(scope="class")
    def video(self):
        return synthesize_scene(SceneConfig(width=96, height=64,
                                            num_frames=8, seed=5,
                                            num_objects=3))

    def test_filter_improves_low_bitrate_quality(self, video):
        with_filter = Encoder(EncoderConfig(crf=32, gop_size=8,
                                            deblocking=True)).encode(video)
        without = Encoder(EncoderConfig(crf=32, gop_size=8,
                                        deblocking=False)).encode(video)
        q_with = video_psnr(video, Decoder().decode(with_filter))
        q_without = video_psnr(video, Decoder().decode(without))
        assert q_with > q_without

    def test_decoder_respects_header_flag(self, video):
        encoded = Encoder(EncoderConfig(crf=28, gop_size=8,
                                        deblocking=True)).encode(video)
        decoded = Decoder().decode(encoded)
        assert frames_equal(decoded, Decoder().decode(encoded))
        # The flag survives serialization.
        from repro.codec import EncodedVideo
        restored = EncodedVideo.deserialize(encoded.serialize())
        assert restored.header.deblocking
        assert frames_equal(Decoder().decode(restored), decoded)

    def test_off_flag_roundtrip(self, video):
        encoded = Encoder(EncoderConfig(crf=28, gop_size=8,
                                        deblocking=False)).encode(video)
        from repro.codec import EncodedVideo
        restored = EncodedVideo.deserialize(encoded.serialize())
        assert not restored.header.deblocking
