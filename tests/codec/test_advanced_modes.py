"""Tests for Plane intra prediction and B-frame bi-prediction."""

import numpy as np
import pytest

from repro.codec import (
    Decoder,
    Encoder,
    EncoderConfig,
    IntraMode,
    MotionVector,
    PredictionDirection,
)
from repro.codec.intra import choose_intra_mode, intra_dependencies, predict_intra
from repro.codec.reconstruct import build_prediction
from repro.codec.types import InterPartition, MacroblockDecision, MacroblockMode
from repro.metrics import video_psnr
from repro.video import SceneConfig, synthesize_scene


class TestPlaneMode:
    def _gradient_frame(self):
        """A frame whose content is a perfect diagonal gradient."""
        ys, xs = np.mgrid[0:48, 0:48]
        return np.clip(40 + 2 * xs + 1 * ys, 0, 255).astype(np.uint8)

    def test_plane_fits_gradient(self):
        frame = self._gradient_frame()
        prediction = predict_intra(frame, 1, 1, IntraMode.PLANE)
        actual = frame[16:32, 16:32]
        assert np.abs(prediction.astype(int) - actual.astype(int)).max() <= 2

    def test_plane_beats_other_modes_on_gradient(self):
        frame = self._gradient_frame()
        source = frame[16:32, 16:32]
        mode, _pred, _sad = choose_intra_mode(source, frame, 1, 1)
        assert mode == IntraMode.PLANE

    def test_plane_needs_both_borders(self):
        frame = self._gradient_frame()
        assert np.all(predict_intra(frame, 0, 1, IntraMode.PLANE) == 128)
        assert np.all(predict_intra(frame, 1, 0, IntraMode.PLANE) == 128)

    def test_plane_blocked_by_slice_boundary(self):
        frame = self._gradient_frame()
        prediction = predict_intra(frame, 1, 1, IntraMode.PLANE,
                                   min_mb_row=1)
        assert np.all(prediction == 128)

    def test_plane_dependencies_cover_three_sources(self):
        deps = intra_dependencies(0, 1, 1, mb_cols=3, mode=IntraMode.PLANE)
        assert len(deps) == 3
        assert sum(d.pixels for d in deps) == 256
        sources = {d.source[1] for d in deps}
        assert sources == {0 * 3 + 1, 1 * 3 + 0, 0 * 3 + 0}

    def test_plane_dependencies_unavailable_border(self):
        assert intra_dependencies(0, 0, 1, mb_cols=3,
                                  mode=IntraMode.PLANE) == []

    def test_roundtrip_with_plane_content(self):
        """Gradient-heavy content encodes with Plane MBs and decodes."""
        ys, xs = np.mgrid[0:48, 0:64]
        frames = [np.clip(30 + 2 * xs + ys + 3 * t, 0, 255).astype(np.uint8)
                  for t in range(4)]
        from repro.video import VideoSequence
        video = VideoSequence(frames)
        encoded = Encoder(EncoderConfig(crf=20, gop_size=4)).encode(video)
        decoded = Decoder().decode(encoded)
        assert video_psnr(video, decoded) > 38.0


class TestBiPrediction:
    @pytest.fixture(scope="class")
    def bframe_encoded(self):
        video = synthesize_scene(SceneConfig(width=96, height=64,
                                             num_frames=12, seed=5,
                                             num_objects=3))
        encoded = Encoder(EncoderConfig(crf=24, gop_size=12,
                                        bframes=2)).encode(video)
        return video, encoded

    def test_bi_partitions_used(self, bframe_encoded):
        _video, encoded = bframe_encoded
        fractional = sum(
            1 for frame in encoded.trace.frames
            for mb in frame.macroblocks
            for dep in mb.dependencies if dep.pixels != int(dep.pixels))
        assert fractional > 0  # bi partitions split pixels in half

    def test_bi_weights_still_normalized(self, bframe_encoded):
        from repro.core import build_dependency_graph
        _video, encoded = bframe_encoded
        graph = build_dependency_graph(encoded.trace)
        totals = graph.incoming_compensation_weight()
        predicted = totals[totals > 1e-9]
        assert np.allclose(predicted, 1.0, atol=1e-9)

    def test_roundtrip_quality(self, bframe_encoded):
        video, encoded = bframe_encoded
        decoded = Decoder().decode(encoded)
        assert video_psnr(video, decoded) > 38.0

    def test_bi_prediction_averages_references(self):
        """Direct check of the compensation math."""
        fwd = np.full((32, 32), 100, dtype=np.uint8)
        bwd = np.full((32, 32), 20, dtype=np.uint8)
        references = {
            PredictionDirection.FORWARD: np.pad(fwd, 8, mode="edge"),
            PredictionDirection.BACKWARD: np.pad(bwd, 8, mode="edge"),
        }
        decision = MacroblockDecision(
            mode=MacroblockMode.INTER, qp=24,
            partitions=[InterPartition(
                rect=(0, 0, 16, 16), mv=MotionVector(0, 0),
                direction=PredictionDirection.BIDIRECTIONAL,
                mv_backward=MotionVector(0, 0))])
        recon = np.zeros((32, 32), dtype=np.uint8)
        prediction = build_prediction(decision, recon, references, 8, 0, 0, 0)
        assert np.all(prediction == 60)  # (100 + 20 + 1) >> 1

    def test_corrupted_bi_without_backward_falls_back(self):
        fwd = np.full((32, 32), 100, dtype=np.uint8)
        references = {
            PredictionDirection.FORWARD: np.pad(fwd, 8, mode="edge"),
        }
        decision = MacroblockDecision(
            mode=MacroblockMode.INTER, qp=24,
            partitions=[InterPartition(
                rect=(0, 0, 16, 16), mv=MotionVector(0, 0),
                direction=PredictionDirection.BIDIRECTIONAL,
                mv_backward=MotionVector(0, 0))])
        recon = np.zeros((32, 32), dtype=np.uint8)
        prediction = build_prediction(decision, recon, references, 8, 0, 0, 0)
        assert np.all(prediction == 100)
