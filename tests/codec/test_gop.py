"""Tests for GOP planning."""

import pytest

from repro.codec import FrameType, coded_to_display_order, plan_gop
from repro.errors import EncoderError


class TestPlanStructure:
    def test_ippp(self):
        plans = plan_gop(6, gop_size=6, bframes=0)
        types = [p.frame_type for p in plans]
        assert types == [FrameType.I] + [FrameType.P] * 5
        assert [p.display_index for p in plans] == list(range(6))

    def test_periodic_i_frames(self):
        plans = plan_gop(12, gop_size=4, bframes=0)
        i_positions = [p.display_index for p in plans
                       if p.frame_type == FrameType.I]
        assert i_positions == [0, 4, 8]

    def test_first_frame_always_i(self):
        for bframes in (0, 1, 2):
            plans = plan_gop(10, gop_size=5, bframes=bframes)
            first = min(plans, key=lambda p: p.coded_index)
            assert first.frame_type == FrameType.I
            assert first.display_index == 0

    def test_bframes_between_anchors(self):
        plans = plan_gop(7, gop_size=12, bframes=2)
        by_display = {p.display_index: p for p in plans}
        assert by_display[1].frame_type == FrameType.B
        assert by_display[2].frame_type == FrameType.B
        assert by_display[3].frame_type == FrameType.P

    def test_b_references_surrounding_anchors(self):
        plans = plan_gop(7, gop_size=12, bframes=2)
        by_display = {p.display_index: p for p in plans}
        b_frame = by_display[1]
        assert b_frame.ref_forward == 0
        assert b_frame.ref_backward == 3

    def test_p_references_previous_anchor(self):
        plans = plan_gop(7, gop_size=12, bframes=2)
        by_display = {p.display_index: p for p in plans}
        assert by_display[3].ref_forward == 0
        assert by_display[6].ref_forward == 3

    def test_every_display_index_planned_once(self):
        plans = plan_gop(23, gop_size=7, bframes=2)
        displays = sorted(p.display_index for p in plans)
        assert displays == list(range(23))

    def test_coded_indices_contiguous(self):
        plans = plan_gop(23, gop_size=7, bframes=2)
        assert sorted(p.coded_index for p in plans) == list(range(23))


class TestCodedOrder:
    def test_references_coded_before_dependents(self):
        plans = plan_gop(20, gop_size=8, bframes=2)
        coded_of = {p.display_index: p.coded_index for p in plans}
        for plan in plans:
            for ref in (plan.ref_forward, plan.ref_backward):
                if ref is not None:
                    assert coded_of[ref] < plan.coded_index

    def test_anchor_precedes_its_bframes(self):
        plans = plan_gop(7, gop_size=12, bframes=2)
        by_display = {p.display_index: p for p in plans}
        assert by_display[3].coded_index < by_display[1].coded_index

    def test_mapping_roundtrip(self):
        plans = plan_gop(9, gop_size=4, bframes=1)
        mapping = coded_to_display_order(plans)
        for plan in plans:
            assert mapping[plan.display_index] == plan.coded_index


class TestEdgeCases:
    def test_single_frame(self):
        plans = plan_gop(1, gop_size=12, bframes=2)
        assert len(plans) == 1
        assert plans[0].frame_type == FrameType.I

    def test_two_frames_no_dangling_b(self):
        plans = plan_gop(2, gop_size=12, bframes=2)
        types = {p.display_index: p.frame_type for p in plans}
        assert types[0] == FrameType.I
        assert types[1] in (FrameType.P, FrameType.B)
        # If frame 1 is a B it must still have both references.
        for p in plans:
            if p.frame_type == FrameType.B:
                assert p.ref_forward is not None
                assert p.ref_backward is not None

    def test_invalid_args(self):
        with pytest.raises(EncoderError):
            plan_gop(0, 4, 0)
        with pytest.raises(EncoderError):
            plan_gop(4, 0, 0)
        with pytest.raises(EncoderError):
            plan_gop(4, 4, -1)
