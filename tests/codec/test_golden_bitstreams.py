"""Golden bitstream digests.

Encodes fixed synthetic clips at pinned settings and asserts SHA-256
digests of the serialized bitstreams and of the decoded pixels. The
digests were produced by the scalar (pre-vectorization) codec; the
vectorized kernels must keep every byte identical, so any future codec
change that alters output — intentionally or not — fails here
explicitly instead of silently shifting every experiment in the repo.

To refresh after an *intentional* format change, run this file with
``REPRO_PRINT_DIGESTS=1`` and copy the printed table.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.codec import EncoderConfig, EntropyCoder
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.video import SceneConfig, synthesize_scene

#: name -> (scene, encoder config, expected stream digest, expected
#: decoded-pixel digest). Geometry stays small so the whole table
#: encodes in a few seconds.
GOLDEN = {
    "cabac_ipp": (
        SceneConfig(width=64, height=48, num_frames=6, seed=11,
                    num_objects=2),
        EncoderConfig(crf=24, gop_size=6),
        "83cdf2349d13faee48557157566280896846f5fcb6b492fcb7deefe087793eef",
        "73d1c8ec463728cce77e3d915fb5ecc025ff5a0c29c38a76537dc528c27b28d1",
    ),
    "cabac_bframes_slices": (
        SceneConfig(width=96, height=64, num_frames=9, seed=23,
                    num_objects=3),
        EncoderConfig(crf=20, gop_size=9, bframes=2, slices=2),
        "6ad6dc040e75f4ceca028debe98980562f69ebbcda60e8bebd27c32d034a7b7d",
        "8c5962b90e78aa75c67d70aacb456f8bc258829900c2fe71763c2cec5824294c",
    ),
    "cavlc_adaptive_qp": (
        SceneConfig(width=64, height=64, num_frames=6, seed=7,
                    num_objects=2),
        EncoderConfig(crf=28, gop_size=3,
                      entropy_coder=EntropyCoder.CAVLC),
        "23552d69e65875d6c32020bd611f7587c501481cd0b17432b891d59309efdd16",
        "8fa0569a55f191835ba662343e5a6090e5a14eb9ea4ef76608d6437dfde10876",
    ),
    "cabac_no_deblock_fine": (
        SceneConfig(width=64, height=48, num_frames=5, seed=42,
                    num_objects=1),
        EncoderConfig(crf=16, gop_size=5, deblocking=False,
                      adaptive_qp=False, search_range=4),
        "dd299d20f40e741f8717bd31ac6f5de57ce482765be3df1577a78b0d3b19b864",
        "92a251307799e0c5db9656e0ad6f4390006a7d923ec21f0b4d06ef9e5e403736",
    ),
}


def _digests(scene: SceneConfig, config: EncoderConfig) -> tuple:
    video = synthesize_scene(scene)
    encoded = Encoder(config).encode(video)
    stream = encoded.serialize()
    decoded = Decoder().decode(encoded)
    pixels = np.stack(list(decoded)).tobytes()
    return (hashlib.sha256(stream).hexdigest(),
            hashlib.sha256(pixels).hexdigest())


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_digest(name):
    scene, config, want_stream, want_pixels = GOLDEN[name]
    got_stream, got_pixels = _digests(scene, config)
    if os.environ.get("REPRO_PRINT_DIGESTS"):
        print(f'\n    "{name}": stream "{got_stream}" pixels "{got_pixels}"')
    assert got_stream == want_stream, (
        f"{name}: bitstream changed (got {got_stream})"
    )
    assert got_pixels == want_pixels, (
        f"{name}: decoded pixels changed (got {got_pixels})"
    )
