"""Tests for the encoded-video container and serialization."""

import pytest

from repro.codec import Decoder, EncodedVideo
from repro.errors import BitstreamError
from repro.video import frames_equal


class TestSerialization:
    def test_roundtrip_headers(self, encoded_small):
        data = encoded_small.serialize()
        restored = EncodedVideo.deserialize(data)
        assert restored.header == encoded_small.header
        for original, loaded in zip(encoded_small.frames, restored.frames):
            assert original.header == loaded.header
            assert original.payload == loaded.payload

    def test_roundtrip_decodes_identically(self, encoded_small,
                                           decoded_small):
        restored = EncodedVideo.deserialize(encoded_small.serialize())
        assert frames_equal(Decoder().decode(restored), decoded_small)

    def test_bad_magic_rejected(self):
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(b"XXXX" + b"\x00" * 32)

    def test_truncated_rejected(self, encoded_small):
        data = encoded_small.serialize()
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(data[:len(data) // 2])

    def test_config_recovered(self, encoded_small, default_config):
        restored = EncodedVideo.deserialize(encoded_small.serialize())
        config = restored.config()
        assert config.crf == default_config.crf
        assert config.gop_size == default_config.gop_size
        assert config.entropy_coder == default_config.entropy_coder


class TestAccounting:
    def test_payload_bits_match_frames(self, encoded_small):
        assert encoded_small.payload_bits == sum(
            8 * len(f.payload) for f in encoded_small.frames)

    def test_header_bits_match_serialized_size(self, encoded_small):
        """The density accounting's precise-bit count must equal the
        actual serialized container size minus the payloads — otherwise
        Figure 11's density numbers drift from reality."""
        serialized_bits = 8 * len(encoded_small.serialize())
        assert encoded_small.header_bits == \
            serialized_bits - encoded_small.payload_bits

    def test_header_bits_match_with_slices_and_bframes(self, medium_video):
        from repro.codec import Encoder, EncoderConfig
        config = EncoderConfig(crf=26, gop_size=12, bframes=2, slices=2)
        encoded = Encoder(config).encode(medium_video)
        serialized_bits = 8 * len(encoded.serialize())
        assert encoded.header_bits == \
            serialized_bits - encoded.payload_bits

    def test_header_bits_positive_but_small(self, encoded_small):
        assert 0 < encoded_small.header_bits < encoded_small.payload_bits

    def test_total_bits(self, encoded_small):
        assert encoded_small.total_bits == (encoded_small.payload_bits
                                            + encoded_small.header_bits)


class TestWithPayloads:
    def test_identity_substitution(self, encoded_small, decoded_small):
        clone = encoded_small.with_payloads(encoded_small.frame_payloads())
        assert frames_equal(Decoder().decode(clone), decoded_small)

    def test_rejects_wrong_count(self, encoded_small):
        with pytest.raises(BitstreamError):
            encoded_small.with_payloads(
                encoded_small.frame_payloads()[:-1])

    def test_rejects_resized_payload(self, encoded_small):
        payloads = encoded_small.frame_payloads()
        payloads[0] = payloads[0] + b"\x00"
        with pytest.raises(BitstreamError):
            encoded_small.with_payloads(payloads)

    def test_does_not_mutate_original(self, encoded_small):
        payloads = [bytes(len(p)) for p in encoded_small.frame_payloads()]
        clone = encoded_small.with_payloads(payloads)
        assert clone.frames[0].payload != encoded_small.frames[0].payload \
            or len(encoded_small.frames[0].payload) == 0
