"""Tests for CRF-style rate control."""

import numpy as np
import pytest

from repro.codec.ratecontrol import activity_qp_offset, frame_qp, macroblock_qp
from repro.codec.types import FrameType
from repro.errors import EncoderError


class TestFrameQP:
    def test_i_frames_finer_than_p(self):
        assert frame_qp(24, FrameType.I) < frame_qp(24, FrameType.P)

    def test_b_frames_coarser_than_p(self):
        assert frame_qp(24, FrameType.B) > frame_qp(24, FrameType.P)

    def test_p_equals_crf(self):
        assert frame_qp(24, FrameType.P) == 24

    def test_clamped_at_extremes(self):
        assert frame_qp(0, FrameType.I) == 0
        assert frame_qp(51, FrameType.B) == 51

    def test_rejects_invalid_crf(self):
        with pytest.raises(EncoderError):
            frame_qp(52, FrameType.P)


class TestActivityOffset:
    def test_flat_block_gets_finer_qp(self):
        assert activity_qp_offset(np.full((16, 16), 100)) == -2

    def test_busy_block_gets_coarser_qp(self):
        rng = np.random.default_rng(0)
        busy = rng.integers(0, 256, (16, 16))
        assert activity_qp_offset(busy) > 0

    def test_offsets_bounded(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            block = rng.integers(0, 256, (16, 16))
            assert -2 <= activity_qp_offset(block) <= 2


class TestMacroblockQP:
    def test_adaptive_changes_qp(self):
        flat = np.full((16, 16), 100)
        assert macroblock_qp(24, flat, adaptive=True) == 22

    def test_non_adaptive_keeps_base(self):
        flat = np.full((16, 16), 100)
        assert macroblock_qp(24, flat, adaptive=False) == 24

    def test_clamped_to_range(self):
        flat = np.full((16, 16), 100)
        assert macroblock_qp(0, flat, adaptive=True) == 0
