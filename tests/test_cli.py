"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.video import frames_equal, read_raw_video


@pytest.fixture()
def clip(tmp_path):
    path = tmp_path / "clip.ryuv"
    assert main(["synth", str(path), "--width", "64", "--height", "48",
                 "--frames", "6", "--seed", "3"]) == 0
    return path


class TestSynth:
    def test_writes_requested_geometry(self, clip):
        video = read_raw_video(clip)
        assert len(video) == 6
        assert video.width == 64 and video.height == 48

    def test_seed_determinism(self, tmp_path):
        a = tmp_path / "a.ryuv"
        b = tmp_path / "b.ryuv"
        main(["synth", str(a), "--frames", "3", "--seed", "9",
              "--width", "32", "--height", "32"])
        main(["synth", str(b), "--frames", "3", "--seed", "9",
              "--width", "32", "--height", "32"])
        assert frames_equal(read_raw_video(a), read_raw_video(b))


class TestEncodeDecode:
    def test_roundtrip(self, clip, tmp_path, capsys):
        encoded = tmp_path / "clip.rvap"
        decoded = tmp_path / "out.ryuv"
        assert main(["encode", str(clip), str(encoded), "--crf", "26",
                     "--gop", "6"]) == 0
        assert main(["decode", str(encoded), str(decoded)]) == 0
        out = read_raw_video(decoded)
        original = read_raw_video(clip)
        assert len(out) == len(original)
        text = capsys.readouterr().out
        assert "compression" in text

    def test_cavlc_flag(self, clip, tmp_path):
        encoded = tmp_path / "clip.rvap"
        assert main(["encode", str(clip), str(encoded),
                     "--entropy", "cavlc"]) == 0
        assert encoded.stat().st_size > 0


class TestAnalyze:
    def test_prints_importance_stats(self, clip, capsys):
        assert main(["analyze", str(clip), "--crf", "26",
                     "--gop", "6"]) == 0
        text = capsys.readouterr().out
        assert "max importance" in text
        assert "storage by importance class" in text


class TestStore:
    def test_reports_density_and_quality(self, clip, capsys):
        assert main(["store", str(clip), "--crf", "26", "--gop", "6"]) == 0
        text = capsys.readouterr().out
        assert "cells/pixel" in text
        assert "PSNR after storage" in text

    def test_encrypted_store_with_output(self, clip, tmp_path, capsys):
        out = tmp_path / "readback.ryuv"
        assert main(["store", str(clip), "--crf", "26", "--gop", "6",
                     "--encrypt", "--output", str(out)]) == 0
        assert "True" in capsys.readouterr().out
        assert len(read_raw_video(out)) == 6


class TestSweep:
    def test_journaled_sweep_resumes(self, clip, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        args = ["sweep", str(clip), "--rates", "1e-3", "--runs", "2",
                "--workers", "0", "--gop", "6", "--crf", "26",
                "--journal", str(journal)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 resumed from journal" in second
        # Identical sweep table, trial work skipped entirely.
        assert first.splitlines()[:4] == second.splitlines()[:4]


class TestFuzz:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--trials", "12", "--seed", "5",
                     "--corpus", str(corpus)]) == 0
        text = capsys.readouterr().out
        assert "no-crash contract held" in text
        assert not corpus.exists()  # corpus only appears on failure

    def test_fuzz_accepts_input_clip(self, clip, tmp_path, capsys):
        assert main(["fuzz", "--input", str(clip), "--trials", "6",
                     "--gop", "6", "--crf", "26",
                     "--corpus", str(tmp_path / "corpus")]) == 0
        assert str(clip) in capsys.readouterr().out


class TestModes:
    def test_scorecard(self, capsys):
        assert main(["modes"]) == 0
        text = capsys.readouterr().out
        assert "ECB" in text and "CTR" in text
