"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import metrics, trace
from repro.video import frames_equal, read_raw_video


@pytest.fixture(autouse=True)
def clean_obs_state():
    """CLI runs may enable tracing; never leak it across tests."""
    yield
    trace.disable()
    metrics.reset_registry()


@pytest.fixture()
def clip(tmp_path):
    path = tmp_path / "clip.ryuv"
    assert main(["synth", str(path), "--width", "64", "--height", "48",
                 "--frames", "6", "--seed", "3"]) == 0
    return path


class TestSynth:
    def test_writes_requested_geometry(self, clip):
        video = read_raw_video(clip)
        assert len(video) == 6
        assert video.width == 64 and video.height == 48

    def test_seed_determinism(self, tmp_path):
        a = tmp_path / "a.ryuv"
        b = tmp_path / "b.ryuv"
        main(["synth", str(a), "--frames", "3", "--seed", "9",
              "--width", "32", "--height", "32"])
        main(["synth", str(b), "--frames", "3", "--seed", "9",
              "--width", "32", "--height", "32"])
        assert frames_equal(read_raw_video(a), read_raw_video(b))


class TestEncodeDecode:
    def test_roundtrip(self, clip, tmp_path, capsys):
        encoded = tmp_path / "clip.rvap"
        decoded = tmp_path / "out.ryuv"
        assert main(["encode", str(clip), str(encoded), "--crf", "26",
                     "--gop", "6"]) == 0
        assert main(["decode", str(encoded), str(decoded)]) == 0
        out = read_raw_video(decoded)
        original = read_raw_video(clip)
        assert len(out) == len(original)
        text = capsys.readouterr().out
        assert "compression" in text

    def test_cavlc_flag(self, clip, tmp_path):
        encoded = tmp_path / "clip.rvap"
        assert main(["encode", str(clip), str(encoded),
                     "--entropy", "cavlc"]) == 0
        assert encoded.stat().st_size > 0


class TestAnalyze:
    def test_prints_importance_stats(self, clip, capsys):
        assert main(["analyze", str(clip), "--crf", "26",
                     "--gop", "6"]) == 0
        text = capsys.readouterr().out
        assert "max importance" in text
        assert "storage by importance class" in text


class TestStore:
    def test_reports_density_and_quality(self, clip, capsys):
        assert main(["store", str(clip), "--crf", "26", "--gop", "6"]) == 0
        text = capsys.readouterr().out
        assert "cells/pixel" in text
        assert "PSNR after storage" in text

    def test_encrypted_store_with_output(self, clip, tmp_path, capsys):
        out = tmp_path / "readback.ryuv"
        assert main(["store", str(clip), "--crf", "26", "--gop", "6",
                     "--encrypt", "--output", str(out)]) == 0
        assert "True" in capsys.readouterr().out
        assert len(read_raw_video(out)) == 6


class TestSweep:
    def test_journaled_sweep_resumes(self, clip, tmp_path, capsys):
        journal = tmp_path / "campaign.jsonl"
        args = ["sweep", str(clip), "--rates", "1e-3", "--runs", "2",
                "--workers", "0", "--gop", "6", "--crf", "26",
                "--journal", str(journal)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "2 resumed from journal" in second
        # Identical sweep table, trial work skipped entirely.
        assert first.splitlines()[:4] == second.splitlines()[:4]

    def test_traced_sweep_writes_valid_chrome_trace(self, clip, tmp_path,
                                                    capsys, monkeypatch):
        # A cache hit would skip the clean encode (and its spans), so
        # force the encode to actually run under the tracer.
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "0")
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        assert main(["sweep", str(clip), "--rates", "1e-3", "--runs", "2",
                     "--workers", "0", "--gop", "6", "--crf", "26",
                     "--trace", str(trace_path),
                     "--trace-jsonl", str(jsonl_path)]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
        # The acceptance span tree: encode, injection, ECC, decode, and
        # quality-metric stages all present in one sweep trace.
        for stage in ("repro.sweep", "campaign", "trial", "encode",
                      "inject", "ecc.calibration", "bch.encode",
                      "bch.decode", "decode", "metric.psnr"):
            assert stage in names, f"missing span {stage}"
        assert jsonl_path.read_text().strip()

    def test_trace_env_fallback(self, clip, tmp_path, monkeypatch,
                                capsys):
        trace_path = tmp_path / "env-trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace_path))
        assert main(["sweep", str(clip), "--rates", "1e-3", "--runs", "1",
                     "--workers", "0", "--gop", "6", "--crf", "26"]) == 0
        assert trace_path.exists()

    def test_untraced_sweep_matches_traced(self, clip, tmp_path, capsys):
        base = ["sweep", str(clip), "--rates", "1e-3,1e-2", "--runs", "2",
                "--workers", "0", "--gop", "6", "--crf", "26",
                "--seed", "4"]
        assert main(base) == 0
        untraced = capsys.readouterr().out
        trace.disable()
        assert main(base + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        table = [line for line in untraced.splitlines() if "1.0e-" in line]
        traced_table = [line for line in traced.splitlines()
                        if "1.0e-" in line]
        assert table == traced_table

    def test_progress_flag_renders_to_stderr(self, clip, capsys):
        assert main(["sweep", str(clip), "--rates", "1e-3", "--runs", "2",
                     "--workers", "0", "--gop", "6", "--crf", "26",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "trials" in captured.err
        assert "trials" in captured.out  # the report table is untouched


class TestFuzz:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--trials", "12", "--seed", "5",
                     "--corpus", str(corpus)]) == 0
        text = capsys.readouterr().out
        assert "no-crash contract held" in text
        assert not corpus.exists()  # corpus only appears on failure

    def test_fuzz_accepts_input_clip(self, clip, tmp_path, capsys):
        assert main(["fuzz", "--input", str(clip), "--trials", "6",
                     "--gop", "6", "--crf", "26",
                     "--corpus", str(tmp_path / "corpus")]) == 0
        assert str(clip) in capsys.readouterr().out

    def test_replay_of_clean_corpus_exits_zero(self, clip, tmp_path,
                                               capsys):
        # Build a one-entry corpus by hand: a valid encoded stream with
        # a payload-damage recipe; the real decoder must handle it.
        from repro.codec import Encoder, EncoderConfig

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        video = read_raw_video(clip)
        blob = Encoder(EncoderConfig(crf=26, gop_size=6)).encode(
            video).serialize()
        (corpus / "bitflip-deadbeef.rvap").write_bytes(blob)
        (corpus / "bitflip-deadbeef.json").write_text(
            json.dumps({"strategy": "bitflip"}))
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        text = capsys.readouterr().out
        assert "corpus replay clean" in text
        assert str(corpus) in text

    def test_replay_missing_corpus_raises(self, tmp_path):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="does not exist"):
            main(["fuzz", "--replay", str(tmp_path / "nope")])


class TestRetention:
    ARGS = ["--scheme", "BCH-6", "--slices", "2", "--runs", "2",
            "--workers", "0", "--t-days", "90,3650"]

    def test_default_sweep_with_assertion(self, clip, capsys):
        assert main(["retention", str(clip), *self.ARGS,
                     "--assert-scrub-benefit"]) == 0
        text = capsys.readouterr().out
        assert "unmitigated" in text
        assert "scrub-90d" in text
        assert "scrub benefit holds" in text
        assert "storage_uncorrectable_blocks_total" in text

    def test_explicit_mitigation_grid(self, clip, capsys):
        assert main(["retention", str(clip), *self.ARGS,
                     "--scrub", "none,90", "--retries", "0",
                     "--conceal", "off"]) == 0
        text = capsys.readouterr().out
        assert "unmitigated" in text
        assert "scrub-90d" in text

    def test_journal_prefix_creates_per_config_files(self, clip,
                                                     tmp_path, capsys):
        prefix = tmp_path / "journal"
        assert main(["retention", str(clip), *self.ARGS, "--t-days",
                     "3650", "--runs", "1",
                     "--journal", str(prefix)]) == 0
        journals = sorted(p.name for p in tmp_path.glob("journal.*.jsonl"))
        assert journals  # one journal per mitigation config
        assert any("unmitigated" in name for name in journals)

    def test_scrub_assertion_needs_both_populations(self, clip, capsys):
        assert main(["retention", str(clip), *self.ARGS,
                     "--scrub", "90", "--assert-scrub-benefit"]) == 2
        assert "needs both" in capsys.readouterr().out


class TestModes:
    def test_scorecard(self, capsys):
        assert main(["modes"]) == 0
        text = capsys.readouterr().out
        assert "ECB" in text and "CTR" in text


class TestScenarios:
    def test_matrix_runs_and_writes_report(self, tmp_path, capsys):
        report = tmp_path / "scenarios.json"
        args = ["scenarios", "--contents", "flicker", "--trials", "3",
                "--seed", "4", "--no-model-checks",
                "--journal-dir", str(tmp_path / "journals"),
                "--json", str(report)]
        assert main(args) == 0
        text = capsys.readouterr().out
        assert "scenario matrix" in text
        assert "matrix digest" in text
        data = json.loads(report.read_text())
        assert data["passed"] is True
        assert len(data["cells"]) == 6

    def test_env_chaos_armed_for_any_subcommand(self, clip, monkeypatch,
                                                capsys):
        monkeypatch.setenv("REPRO_CHAOS_FAIL_TRIALS", "0")
        args = ["sweep", str(clip), "--rates", "1e-3", "--runs", "2",
                "--workers", "0", "--crf", "26", "--gop", "6"]
        assert main(args) == 0
        assert "1 failed" in capsys.readouterr().out
        # The CLI disarms on the way out.
        from repro.runtime import chaos

        assert chaos.active() is None


class TestServe:
    def test_demo_script_walks_the_lifecycle(self, capsys):
        assert main(["serve", "--demo"]) == 0
        text = capsys.readouterr().out
        assert "put alice ->" in text
        assert "as bob: clean" in text or "as bob: corrected" in text
        assert "AccessDeniedError" in text  # carol is denied
        assert "aged all shards by 36500 days" in text
        assert '"kind": "ingest"' in text  # audit JSONL tail

    def test_script_file_with_stale_key(self, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text(
            "put alice synth:1\n"
            "retire alice\n"
            "get alice @1\n")
        assert main(["serve", "--script", str(script)]) == 0
        text = capsys.readouterr().out
        assert "retired key of alice" in text
        assert "StaleKeyError" in text

    def test_unknown_verb_sets_exit_code(self, capsys):
        script_out = main(["serve", "--demo"])
        assert script_out == 0
        import io
        import sys as _sys

        stdin = _sys.stdin
        _sys.stdin = io.StringIO("frobnicate\n")
        try:
            assert main(["serve"]) == 2
        finally:
            _sys.stdin = stdin
        assert "unknown command" in capsys.readouterr().out


class TestLoadgen:
    ARGS = ["--clients", "2", "--ops", "5", "--seed", "3",
            "--read-retries", "0"]

    def test_report_and_digest(self, tmp_path, capsys):
        out = tmp_path / "loadgen.json"
        assert main(["loadgen", *self.ARGS, "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "ingest throughput" in text
        assert "read p99 latency" in text
        assert "degradation curve" in text
        assert "run digest:" in text
        data = json.loads(out.read_text())
        assert data["ingest_count"] + data["read_count"] == 5
        assert len(data["run_digest"]) == 64

    def test_digest_replays_across_invocations(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["loadgen", *self.ARGS, "--json", str(a)]) == 0
        assert main(["loadgen", *self.ARGS, "--json", str(b)]) == 0
        ra = json.loads(a.read_text())
        rb = json.loads(b.read_text())
        assert ra["run_digest"] == rb["run_digest"]
        # Latencies may differ run to run; outcomes may not.
        assert ra["outcomes"] == rb["outcomes"]
        assert ra["degradation"] == rb["degradation"]
