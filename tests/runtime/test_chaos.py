"""Deterministic fault injection: the chaos harness.

The contracts pinned here are the ones the scenario matrix leans on:
disarmed chaos is invisible (no hook fires, no event, no state); an
armed policy fires the same fault schedule for the same workload
(schedule_digest is replayable); and every injected fault lands in the
failure path the production machinery already handles — trial failure,
quarantine, torn-tail journal recovery, device damage that is always
*visible* in the storage report.
"""

from __future__ import annotations


import numpy as np
import pytest

from repro.errors import AnalysisError, ChaosError, TransientShardError
from repro.runtime import (
    ChaosPolicy,
    TrialContext,
    TrialFailure,
    TrialJournal,
    TrialResult,
    TrialSpec,
    arm_chaos,
    campaign_digest,
    chaos_events,
    chaos_policy_from_env,
    chaos_schedule_digest,
    fork_available,
    register_trial_kind,
    run_campaign,
    spawn_trial_seeds,
    unregister_trial_kind,
)
from repro.runtime import chaos
from repro.runtime.chaos import disarm
from repro.storage import device as storage_device
from repro.storage.device import ApproximateDevice
from repro.storage.ecc import scheme_by_name

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")


def _echo(state, spec):
    rng = np.random.default_rng(spec.seed)
    return TrialResult(spec.index, float(rng.normal()), 0, False)


@pytest.fixture(autouse=True)
def _clean_chaos():
    register_trial_kind("chaos-echo", _echo)
    yield
    disarm()
    unregister_trial_kind("chaos-echo")


def _specs(count, seed=3):
    seeds = spawn_trial_seeds(np.random.default_rng(seed), count)
    return [TrialSpec(index=i, kind="chaos-echo", seed=seeds[i])
            for i in range(count)]


class TestPolicy:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            ChaosPolicy(device_fault_rate=1.5)
        with pytest.raises(AnalysisError):
            ChaosPolicy(device_flip_bits=0)
        with pytest.raises(AnalysisError):
            ChaosPolicy(journal_tear_bytes=0)
        with pytest.raises(AnalysisError):
            ChaosPolicy(fail_trials=(-1,))

    def test_quiet(self):
        assert ChaosPolicy().quiet
        assert ChaosPolicy(seed=9).quiet
        assert not ChaosPolicy(fail_trials=(0,)).quiet
        assert not ChaosPolicy(device_fault_rate=0.1).quiet

    def test_env_round_trip(self, monkeypatch):
        assert chaos_policy_from_env() is None
        monkeypatch.setenv("REPRO_CHAOS_SEED", "7")
        monkeypatch.setenv("REPRO_CHAOS_DEVICE_RATE", "0.25")
        monkeypatch.setenv("REPRO_CHAOS_FAIL_TRIALS", "1,3")
        monkeypatch.setenv("REPRO_CHAOS_SHM_AT", "2")
        policy = chaos_policy_from_env()
        assert policy == ChaosPolicy(seed=7, device_fault_rate=0.25,
                                     fail_trials=(1, 3), shm_fail_at=2)

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_FAIL_TRIALS", "one,two")
        with pytest.raises(AnalysisError, match="REPRO_CHAOS_FAIL_TRIALS"):
            chaos_policy_from_env()
        monkeypatch.delenv("REPRO_CHAOS_FAIL_TRIALS")
        monkeypatch.setenv("REPRO_CHAOS_DEVICE_RATE", "lots")
        with pytest.raises(AnalysisError, match="REPRO_CHAOS_DEVICE_RATE"):
            chaos_policy_from_env()


class TestArming:
    def test_disarmed_is_invisible(self):
        assert chaos.active() is None
        assert chaos_events() == ()
        assert storage_device._CHAOS_READ_FAULT is None
        # Hooks on the armed-only path are no-ops when disarmed.
        chaos.trial_fault(0)
        assert chaos.device_read_fault(b"payload") is None

    def test_arm_installs_and_disarm_removes_device_hook(self):
        arm_chaos(ChaosPolicy(device_fault_rate=0.5))
        assert storage_device._CHAOS_READ_FAULT is chaos.device_read_fault
        assert chaos.active() == ChaosPolicy(device_fault_rate=0.5)
        disarm()
        assert storage_device._CHAOS_READ_FAULT is None
        assert chaos.active() is None

    def test_rearm_resets_schedule(self):
        arm_chaos(ChaosPolicy(fail_trials=(0,)))
        with pytest.raises(ChaosError):
            chaos.trial_fault(0)
        assert len(chaos_events()) == 1
        arm_chaos(ChaosPolicy(fail_trials=(0,)))
        assert chaos_events() == ()

    def test_schedule_digest_replayable(self):
        disarmed = chaos_schedule_digest()
        assert disarmed == chaos_schedule_digest()
        digests = []
        for _ in range(2):
            arm_chaos(ChaosPolicy(seed=5, fail_trials=(1,)))
            with pytest.raises(ChaosError):
                chaos.trial_fault(1)
            digests.append(chaos_schedule_digest())
            disarm()
        assert digests[0] == digests[1]
        assert digests[0] != disarmed
        # A different schedule is a different fingerprint.
        arm_chaos(ChaosPolicy(seed=6, fail_trials=(1,)))
        with pytest.raises(ChaosError):
            chaos.trial_fault(1)
        assert chaos_schedule_digest() != digests[0]


class TestTrialFaults:
    def test_fail_trial_fails_survivors_bitwise_equal(self):
        specs = _specs(5)
        clean = run_campaign(TrialContext(), specs, workers=0)
        arm_chaos(ChaosPolicy(fail_trials=(2,)))
        outcomes, stats = run_campaign(TrialContext(), specs, workers=0)
        assert stats.failed == 1 and stats.completed == 4
        assert isinstance(outcomes[2], TrialFailure)
        assert "chaos" in outcomes[2].message
        for index in (0, 1, 3, 4):
            assert outcomes[index].value_db == clean[0][index].value_db

    @needs_fork
    def test_crash_trial_quarantined_survivors_bitwise_equal(self):
        specs = _specs(5)
        clean = run_campaign(TrialContext(), specs, workers=0)
        arm_chaos(ChaosPolicy(crash_trials=(1,)))
        outcomes, stats = run_campaign(TrialContext(), specs, workers=2,
                                       chunksize=1, max_retries=2)
        assert stats.quarantined == 1
        assert isinstance(outcomes[1], TrialFailure)
        for index in (0, 2, 3, 4):
            assert outcomes[index].value_db == clean[0][index].value_db

    def test_hang_trial_hits_watchdog(self):
        pytest.importorskip("signal")
        from repro.runtime import alarm_capable

        if not alarm_capable():
            pytest.skip("SIGALRM deadline unavailable")
        specs = _specs(3)
        arm_chaos(ChaosPolicy(hang_trials=(1,), hang_seconds=0.05))
        outcomes, stats = run_campaign(TrialContext(), specs, workers=0,
                                       timeout=0.3)
        assert stats.failed == 1
        assert isinstance(outcomes[1], TrialFailure)
        assert isinstance(outcomes[0], TrialResult)
        assert isinstance(outcomes[2], TrialResult)


class TestDeviceFaults:
    def test_damage_always_visible_never_silent(self):
        payload = bytes(range(256)) * 8
        scheme = scheme_by_name("BCH-6")
        arm_chaos(ChaosPolicy(seed=1, device_fault_rate=1.0))
        device = ApproximateDevice(rng=np.random.default_rng(0))
        _, report = device.store_and_read(payload, scheme)
        events = [e for e in chaos_events() if e["kind"] == "device_read"]
        assert len(events) == 1
        # The injected failure is escalated, not silently absorbed.
        assert report.failed_blocks >= 1
        assert report.miscorrected_blocks == 0

    def test_fault_keyed_by_content_not_order(self):
        payload = b"stable payload" * 64
        scheme = scheme_by_name("BCH-6")
        reads = []
        for _ in range(2):
            arm_chaos(ChaosPolicy(seed=1, device_fault_rate=0.5))
            device = ApproximateDevice(rng=np.random.default_rng(0))
            device.store_and_read(payload, scheme)
            reads.append(chaos_events())
            disarm()
        assert reads[0] == reads[1]

    def test_disarmed_read_is_clean_path(self):
        payload = b"clean" * 100
        scheme = scheme_by_name("BCH-6")
        device = ApproximateDevice(rng=np.random.default_rng(0),
                                   cell_model=None)
        _, report = device.store_and_read(payload, scheme)
        assert chaos_events() == ()


class TestCorrelatedAndShardFaults:
    PAYLOAD = bytes(range(256)) * 8

    def test_burst_damages_a_multi_block_span(self):
        arm_chaos(ChaosPolicy(seed=1, device_burst_rate=1.0,
                              device_burst_blocks=3))
        device = ApproximateDevice(rng=np.random.default_rng(0))
        _, report = device.store_and_read(self.PAYLOAD,
                                          scheme_by_name("BCH-6"))
        events = [e for e in chaos_events()
                  if e["kind"] == "device_burst"]
        assert len(events) == 1
        assert events[0]["blocks"] == 3
        # The whole span surfaces as failed blocks, never silently.
        assert report.failed_blocks >= 3
        assert report.miscorrected_blocks == 0

    def test_burst_is_content_keyed_and_replayable(self):
        runs = []
        for _ in range(2):
            arm_chaos(ChaosPolicy(seed=4, device_burst_rate=0.5,
                                  device_burst_blocks=2))
            device = ApproximateDevice(rng=np.random.default_rng(0))
            device.store_and_read(self.PAYLOAD, scheme_by_name("BCH-6"))
            runs.append((chaos_events(), chaos_schedule_digest()))
            disarm()
        assert runs[0] == runs[1]

    def test_storm_ignores_bare_device_reads(self):
        # The storm models a failing *location*: a device read with no
        # shard context (no Shard served it) is exempt.
        arm_chaos(ChaosPolicy(seed=1, shard_storm="shard-0"))
        device = ApproximateDevice(rng=np.random.default_rng(0),
                                   cell_model=None)
        device.store_and_read(self.PAYLOAD, scheme_by_name("BCH-6"))
        assert chaos_events() == ()

    def test_storm_scoped_to_the_named_shard(self):
        arm_chaos(ChaosPolicy(seed=1, shard_storm="shard-1",
                              device_burst_blocks=3))
        scheme = scheme_by_name("BCH-6")
        chaos.shard_read_begin("shard-0", "key")
        device = ApproximateDevice(rng=np.random.default_rng(0))
        device.store_and_read(self.PAYLOAD, scheme)
        chaos.shard_read_end()
        assert chaos_events() == ()  # bystander shard reads unfaulted
        chaos.shard_read_begin("shard-1", "key")
        _, report = ApproximateDevice(
            rng=np.random.default_rng(1)).store_and_read(
                self.PAYLOAD, scheme)
        chaos.shard_read_end()
        events = [e for e in chaos_events()
                  if e["kind"] == "device_storm"]
        assert len(events) == 1
        assert events[0]["shard"] == "shard-1"
        assert events[0]["ordinal"] == 1
        assert report.failed_blocks >= 3

    def test_storm_is_ordinal_keyed_not_content_keyed(self):
        # The same payload read twice off the dying shard faults both
        # times: the storm keys on the read ordinal, not the bytes.
        arm_chaos(ChaosPolicy(seed=1, shard_storm="shard-0"))
        scheme = scheme_by_name("BCH-6")
        for attempt in range(2):
            chaos.shard_read_begin("shard-0", "key")
            ApproximateDevice(
                rng=np.random.default_rng(attempt)).store_and_read(
                    self.PAYLOAD, scheme)
            chaos.shard_read_end()
        ordinals = [e["ordinal"] for e in chaos_events()
                    if e["kind"] == "device_storm"]
        assert ordinals == [0, 1]

    def test_flake_ordinals_fire_once(self):
        arm_chaos(ChaosPolicy(seed=0, shard_flake_reads=(0,)))
        with pytest.raises(TransientShardError):
            chaos.shard_read_begin("shard-0", "key")
        # The ordinal was consumed: the next read sails through.
        chaos.shard_read_begin("shard-0", "key")
        chaos.shard_read_end()
        kinds = [e["kind"] for e in chaos_events()]
        assert kinds == ["shard_flake"]

    def test_env_round_trip_for_shard_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_BURST_RATE", "0.25")
        monkeypatch.setenv("REPRO_CHAOS_BURST_BLOCKS", "5")
        monkeypatch.setenv("REPRO_CHAOS_SHARD_STORM", "shard-2")
        monkeypatch.setenv("REPRO_CHAOS_SHARD_FLAKES", "1,4")
        policy = chaos_policy_from_env()
        assert policy == ChaosPolicy(
            device_burst_rate=0.25, device_burst_blocks=5,
            shard_storm="shard-2", shard_flake_reads=(1, 4))

    def test_new_field_validation_and_quiet(self):
        with pytest.raises(AnalysisError):
            ChaosPolicy(device_burst_rate=1.5)
        with pytest.raises(AnalysisError):
            ChaosPolicy(device_burst_blocks=0)
        with pytest.raises(AnalysisError):
            ChaosPolicy(shard_storm_rate=-0.1)
        with pytest.raises(AnalysisError):
            ChaosPolicy(shard_flake_reads=(-1,))
        assert not ChaosPolicy(shard_storm="s").quiet
        assert not ChaosPolicy(device_burst_rate=0.1).quiet
        assert not ChaosPolicy(shard_flake_reads=(0,)).quiet


class TestJournalTear:
    def test_tear_truncates_and_kills_writer(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        specs = _specs(4)
        digest = campaign_digest(specs, None)
        arm_chaos(ChaosPolicy(journal_tear_at=1, journal_tear_bytes=5))
        journal = TrialJournal(path, digest)
        journal.record(specs[0], TrialResult(0, 1.0, 0, False))
        with pytest.raises(ChaosError, match="torn"):
            journal.record(specs[1], TrialResult(1, 2.0, 0, False))
        journal.close()
        disarm()
        raw = path.read_bytes()
        assert not raw.endswith(b"\n")  # genuinely torn tail
        # Recovery: reopen truncates the fragment and re-runs the trial.
        resumed = TrialJournal(path, digest)
        assert resumed.torn_lines == 1
        assert resumed.completed(specs[0]) is not None
        assert resumed.completed(specs[1]) is None
        resumed.close()

    def test_tear_is_one_shot(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        specs = _specs(4)
        digest = campaign_digest(specs, None)
        arm_chaos(ChaosPolicy(journal_tear_at=0, journal_tear_bytes=3))
        journal = TrialJournal(path, digest)
        with pytest.raises(ChaosError):
            journal.record(specs[0], TrialResult(0, 1.0, 0, False))
        journal.close()
        resumed = TrialJournal(path, digest)
        for spec in specs:
            if resumed.completed(spec) is None:
                resumed.record(spec, TrialResult(spec.index, 0.5, 0, False))
        resumed.close()
        assert len([e for e in chaos_events()
                    if e["kind"] == "journal_tear"]) == 1


class TestShmFault:
    def test_scheduled_access_lost_once(self):
        pytest.importorskip("multiprocessing.shared_memory")
        from repro.runtime import pack_clips
        from repro.video import SceneConfig, synthesize_scene

        clips = [synthesize_scene(SceneConfig(width=32, height=32,
                                              num_frames=2, seed=s))
                 for s in (0, 1)]
        store = pack_clips(clips, use_shared_memory=True)
        if isinstance(store, tuple):
            pytest.skip("shared memory unavailable")
        try:
            arm_chaos(ChaosPolicy(shm_fail_at=1))
            _ = store[0]
            with pytest.raises(ChaosError, match="lost at access"):
                _ = store[1]
            # One-shot: the same clip reads fine on retry.
            assert store[1].to_array().shape == (2, 32, 32)
            events = [e for e in chaos_events() if e["kind"] == "shm_loss"]
            assert events == [{"kind": "shm_loss", "clip": 1, "ordinal": 1}]
        finally:
            store.close()
