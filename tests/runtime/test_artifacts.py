"""Artifact cache: content keying, hit/miss accounting, LRU, env gate."""

from __future__ import annotations

import numpy as np

from repro.codec import EncoderConfig
from repro.runtime import ArtifactCache, CACHE_ENV, content_key, session_cache
from repro.video import SceneConfig, synthesize_scene


def _tiny_video(seed):
    return synthesize_scene(SceneConfig(
        width=32, height=32, num_frames=2, seed=seed, num_objects=1))


class TestContentKey:
    def test_stable_for_identical_inputs(self):
        config = EncoderConfig(crf=24, gop_size=2)
        assert (content_key(_tiny_video(1), config)
                == content_key(_tiny_video(1), config))

    def test_sensitive_to_frames_and_config(self):
        config = EncoderConfig(crf=24, gop_size=2)
        base = content_key(_tiny_video(1), config)
        assert content_key(_tiny_video(2), config) != base
        assert content_key(_tiny_video(1),
                           EncoderConfig(crf=20, gop_size=2)) != base


class TestArtifactCache:
    def test_encode_hits_second_time(self):
        cache = ArtifactCache()
        video = _tiny_video(3)
        config = EncoderConfig(crf=24, gop_size=2)
        first = cache.encode(video, config)
        second = cache.encode(video, config)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clean_decode_lazy_and_cached(self):
        cache = ArtifactCache()
        video = _tiny_video(3)
        config = EncoderConfig(crf=24, gop_size=2)
        first = cache.clean_decode(video, config)
        second = cache.clean_decode(video, config)
        assert second is first
        assert np.array_equal(first.frames[0], second.frames[0])

    def test_lru_evicts_oldest(self):
        cache = ArtifactCache(max_entries=2)
        config = EncoderConfig(crf=24, gop_size=2)
        videos = [_tiny_video(seed) for seed in (1, 2, 3)]
        for video in videos:
            cache.encode(video, config)
        assert len(cache) == 2
        # Oldest (seed 1) was evicted: encoding it again is a miss.
        misses = cache.misses
        cache.encode(videos[0], config)
        assert cache.misses == misses + 1

    def test_disabled_cache_always_recomputes(self):
        cache = ArtifactCache(enabled=False)
        video = _tiny_video(4)
        config = EncoderConfig(crf=24, gop_size=2)
        first = cache.encode(video, config)
        second = cache.encode(video, config)
        assert second is not first
        assert len(cache) == 0


class TestSessionCache:
    def test_singleton(self):
        assert session_cache() is session_cache()

    def test_env_gate_toggles_enabled(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "0")
        assert session_cache().enabled is False
        monkeypatch.setenv(CACHE_ENV, "1")
        assert session_cache().enabled is True
