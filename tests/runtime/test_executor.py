"""Trial-engine behavior: determinism across worker counts + knobs.

The engine's core contract is that fanning a campaign out over worker
processes never changes a single number. These tests pin that contract
for the two refactored exhibit runners and for the low-level plumbing
(worker resolution, chunking, spec picklability, seed spawning).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis import quality_sweep, run_figure3
from repro.errors import AnalysisError
from repro.runtime import (
    WORKERS_ENV,
    TrialSpec,
    build_sweep_specs,
    default_chunksize,
    fork_available,
    resolve_workers,
    spawn_trial_seeds,
)

WORKER_COUNTS = (0, 1, 4)
RATES = (1e-3, 1e-2)
RUNS = 3


def _sweep(encoded, small_video, decoded_small, workers):
    return quality_sweep(encoded, small_video, decoded_small, None,
                         rates=RATES, runs=RUNS,
                         rng=np.random.default_rng(2024), workers=workers)


class TestSerialParallelEquivalence:
    def test_quality_sweep_bitwise_identical(self, encoded_small,
                                             small_video, decoded_small):
        results = [_sweep(encoded_small, small_video, decoded_small, w)
                   for w in WORKER_COUNTS]
        for workers, result in zip(WORKER_COUNTS[1:], results[1:]):
            assert result == results[0], (
                f"workers={workers} diverges from serial")
        # Bitwise identity of every aggregate, not just dataclass ==.
        for result in results[1:]:
            for a, b in zip(results[0].points, result.points):
                assert a.mean_change_db == b.mean_change_db
                assert a.max_loss_db == b.max_loss_db
                assert a.mean_flips == b.mean_flips

    def test_figure3_bitwise_identical(self, small_video, default_config):
        results = [run_figure3(small_video, default_config, max_frames=1,
                               workers=w)
                   for w in WORKER_COUNTS]
        for workers, result in zip(WORKER_COUNTS[1:], results[1:]):
            assert np.array_equal(result.psnr_grid, results[0].psnr_grid,
                                  equal_nan=True), (
                f"workers={workers} diverges from serial")
            assert np.array_equal(result.samples_grid,
                                  results[0].samples_grid)

    def test_stats_recorded_per_run(self, encoded_small, small_video,
                                    decoded_small):
        result = _sweep(encoded_small, small_video, decoded_small, 0)
        assert result.stats is not None
        assert result.stats.workers == 0
        assert result.stats.trials == len(RATES) * RUNS
        assert result.stats.trials_per_second > 0


class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 0

    def test_empty_env_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert resolve_workers(None) == 0

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_workers(-1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(AnalysisError):
            resolve_workers(None)

    def test_negative_env_has_clear_message(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-3")
        with pytest.raises(AnalysisError, match="REPRO_NUM_WORKERS"):
            resolve_workers(None)

    def test_float_env_has_clear_message(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2.5")
        with pytest.raises(AnalysisError, match="not an integer"):
            resolve_workers(None)


class TestChunking:
    def test_small_batches_get_chunk_one(self):
        assert default_chunksize(3, workers=4) == 1

    def test_large_batches_split_four_per_worker(self):
        assert default_chunksize(160, workers=4) == 10

    def test_uneven_rounds_up(self):
        assert default_chunksize(17, workers=4) == 2


class TestSpecs:
    def test_trial_spec_picklable(self):
        spec = TrialSpec(index=0, kind="sweep", rate=1e-3,
                         seed=np.random.SeedSequence(7),
                         ranges_ref=0, force_at_least_one=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.index == spec.index
        assert clone.rate == spec.rate
        # Spawned generators from the shipped seed match the original's.
        ours = np.random.default_rng(spec.seed).integers(0, 1 << 30, 4)
        theirs = np.random.default_rng(clone.seed).integers(0, 1 << 30, 4)
        assert np.array_equal(ours, theirs)

    def test_build_sweep_specs_grid(self):
        specs = build_sweep_specs((1e-4, 1e-2), runs=3,
                                  rng=np.random.default_rng(0),
                                  ranges_ref=0, force_at_least_one=False)
        assert len(specs) == 6
        assert [s.index for s in specs] == list(range(6))
        assert [s.rate for s in specs] == [1e-4] * 3 + [1e-2] * 3

    def test_spawned_seeds_deterministic_and_distinct(self):
        first = spawn_trial_seeds(np.random.default_rng(9), 5)
        second = spawn_trial_seeds(np.random.default_rng(9), 5)
        states = {np.random.default_rng(s).integers(0, 1 << 62)
                  for s in first}
        assert len(states) == 5
        for a, b in zip(first, second):
            assert (np.random.default_rng(a).integers(0, 1 << 62)
                    == np.random.default_rng(b).integers(0, 1 << 62))


def test_fork_availability_reported():
    assert isinstance(fork_available(), bool)
