"""Encode-farm integration: the batched campaign == the per-clip pipeline.

The farm's whole contract is "same numbers, faster": GOP work units,
batched execution, shared-memory clip transport, and journal resume
must each be invisible in the results. Every test here compares a farm
configuration against either the scalar per-unit pipeline or another
farm configuration and demands equality.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.codec import EncoderConfig
from repro.codec.batch import gop_unit_bounds
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.metrics.psnr import video_psnr
from repro.runtime import RunStats
from repro.runtime.farm import (
    build_encode_unit_specs,
    encode_farm,
)
from repro.runtime.shm import SharedClipStore, pack_clips
from repro.video.frame import VideoSequence

_CONFIG = EncoderConfig(crf=30, gop_size=4)


def _clips(count=3, width=32, height=32, frames=6, seed=7):
    rng = np.random.default_rng(seed)
    clips = []
    for _ in range(count):
        base = rng.integers(0, 220, size=(height, width), dtype=np.int32)
        stack = [np.clip(base + rng.integers(-25, 25, size=base.shape),
                         0, 255).astype(np.uint8)
                 for _ in range(frames)]
        clips.append(VideoSequence.from_array(np.stack(stack)))
    return clips


def _per_clip_reference(clips, config):
    """(bits, psnr) per clip via the scalar per-unit pipeline."""
    expected = []
    for clip in clips:
        bits = 0
        for start, stop in gop_unit_bounds(len(clip), config):
            unit = clip.subsequence(start, stop)
            bits += 8 * len(Encoder(config).encode(unit).serialize())
        encoded = Encoder(config).encode(clip)
        psnr = video_psnr(clip, Decoder().decode(encoded))
        expected.append((bits, psnr))
    return expected


class TestFarmMatchesPerClip:
    def test_bits_and_psnr_match_scalar_pipeline(self):
        clips = _clips()
        result = encode_farm(clips, _CONFIG, workers=0, batch_size=4,
                             use_shared_memory=False)
        expected = _per_clip_reference(clips, _CONFIG)
        assert len(result.clips) == len(clips)
        for clip_result, (bits, psnr) in zip(result.clips, expected):
            assert clip_result.complete
            assert clip_result.bits == bits
            # Units partition the clip's frames, so the reassembled
            # frame-mean equals the whole-clip video_psnr exactly.
            assert clip_result.psnr_db == pytest.approx(psnr, abs=1e-9)

    def test_unit_count_matches_gop_bounds(self):
        clips = _clips(count=2, frames=9)
        result = encode_farm(clips, _CONFIG, workers=0,
                             use_shared_memory=False)
        for clip, clip_result in zip(clips, result.clips):
            assert clip_result.units == len(
                gop_unit_bounds(len(clip), _CONFIG))


class TestFarmInvariances:
    """Execution knobs must never change the numbers."""

    def _run(self, clips, **kwargs):
        result = encode_farm(clips, _CONFIG, workers=0, **kwargs)
        return result.clips

    def test_batch_width_invariant(self):
        clips = _clips()
        narrow = self._run(clips, batch_size=2, use_shared_memory=False)
        wide = self._run(clips, batch_size=8, use_shared_memory=False)
        assert narrow == wide

    def test_shared_memory_invariant(self):
        clips = _clips()
        by_value = self._run(clips, use_shared_memory=False)
        by_segment = self._run(clips, use_shared_memory=True)
        assert by_value == by_segment

    def test_batch_disable_invariant(self, monkeypatch):
        clips = _clips()
        batched = self._run(clips, use_shared_memory=False)
        monkeypatch.setenv("REPRO_BATCH_DISABLE", "1")
        scalar = self._run(clips, use_shared_memory=False)
        assert batched == scalar


class TestFarmJournalResume:
    def test_completed_farm_replays_from_journal(self, tmp_path):
        clips = _clips(count=2)
        journal = tmp_path / "farm.jsonl"
        first = encode_farm(clips, _CONFIG, workers=0, journal=journal,
                            use_shared_memory=False)
        assert first.stats.resumed == 0
        second = encode_farm(clips, _CONFIG, workers=0, journal=journal,
                             use_shared_memory=False)
        assert second.clips == first.clips
        assert second.stats.resumed == len(first.outcomes)

    def test_journal_digest_transport_independent(self, tmp_path):
        """A journal written with by-value clips resumes a shared-memory
        run: digests hash clip content, not the transport wrapper."""
        clips = _clips(count=2)
        journal = tmp_path / "farm.jsonl"
        first = encode_farm(clips, _CONFIG, workers=0, journal=journal,
                            use_shared_memory=False)
        second = encode_farm(clips, _CONFIG, workers=0, journal=journal,
                             use_shared_memory=True)
        assert second.clips == first.clips
        assert second.stats.resumed == len(first.outcomes)


class TestSharedClipStore:
    def test_roundtrip_and_handle_size(self):
        clips = _clips(count=2, frames=4)
        store = pack_clips(clips, use_shared_memory=True)
        if not isinstance(store, SharedClipStore):
            pytest.skip("shared memory unavailable on this host")
        try:
            blob = pickle.dumps(store)
            # The handle ships the segment name and manifest, never the
            # frame bytes.
            assert len(blob) < 2048
            attached = pickle.loads(blob)
            assert attached.content_digest == store.content_digest
            assert len(attached) == len(clips)
            for clip, shared in zip(clips, attached):
                np.testing.assert_array_equal(clip.to_array(),
                                              shared.to_array())
            attached.close()
        finally:
            store.close()

    def test_pack_clips_disabled_returns_tuple(self):
        clips = _clips(count=2, frames=3)
        packed = pack_clips(clips, use_shared_memory=False)
        assert isinstance(packed, tuple)
        assert len(packed) == len(clips)

    def test_closed_store_refuses_attachment(self):
        clips = _clips(count=1, frames=3)
        store = pack_clips(clips, use_shared_memory=True)
        if not isinstance(store, SharedClipStore):
            pytest.skip("shared memory unavailable on this host")
        store.close()
        with pytest.raises(Exception):
            store[0].to_array()


class TestFarmSpecs:
    def test_specs_are_clip_major_and_cover_all_frames(self):
        clips = _clips(count=2, frames=9)
        specs = build_encode_unit_specs(
            clips, _CONFIG, np.random.default_rng(0))
        cursor = 0
        for clip_index, clip in enumerate(clips):
            bounds = gop_unit_bounds(len(clip), _CONFIG)
            for start, stop in bounds:
                spec = specs[cursor]
                assert spec.clip_ref == clip_index
                assert (spec.unit_start, spec.unit_stop) == (start, stop)
                cursor += 1
            assert bounds[0][0] == 0
            assert bounds[-1][1] == len(clip)
        assert cursor == len(specs)

    def test_spec_seeds_are_distinct(self):
        clips = _clips(count=3, frames=8)
        specs = build_encode_unit_specs(
            clips, _CONFIG, np.random.default_rng(1))
        seeds = [spec.seed for spec in specs]
        assert len(set(seeds)) == len(seeds)

    def test_stats_shape(self):
        clips = _clips(count=2, frames=4)
        result = encode_farm(clips, _CONFIG, workers=0,
                             use_shared_memory=False)
        assert isinstance(result.stats, RunStats)
        assert result.stats.trials == len(result.outcomes)


class TestBFrameFallback:
    """B-frame GOPs cannot split into independent units; the farm must
    fall back to whole-clip units instead of refusing the corpus."""

    _BCONFIG = EncoderConfig(crf=30, gop_size=4, bframes=1)

    def test_gop_unit_bounds_refuses_bframes_typed(self):
        from repro.errors import EncoderError, GopStructureError

        with pytest.raises(GopStructureError, match="B-frame"):
            gop_unit_bounds(8, self._BCONFIG)
        # Still catchable as the codec-layer base class.
        assert issubclass(GopStructureError, EncoderError)

    def test_clip_unit_bounds_falls_back_to_whole_clip(self):
        from repro.runtime.farm import clip_unit_bounds

        assert clip_unit_bounds(10, self._BCONFIG) == [(0, 10)]
        assert clip_unit_bounds(8, _CONFIG) == \
            gop_unit_bounds(8, _CONFIG)

    def test_farm_matches_scalar_on_bframe_corpus(self):
        clips = _clips(count=2, frames=6, seed=3)
        result = encode_farm(clips, self._BCONFIG, workers=0,
                             batch_size=4, use_shared_memory=False)
        for clip, clip_result in zip(clips, result.clips):
            encoded = Encoder(self._BCONFIG).encode(clip)
            assert clip_result.complete
            assert clip_result.units == 1
            assert clip_result.bits == 8 * len(encoded.serialize())
            assert clip_result.psnr_db == pytest.approx(
                video_psnr(clip, Decoder().decode(encoded)), abs=1e-9)


class TestSegmentLeaks:
    """Shared segments must never outlive their campaign."""

    @staticmethod
    def _shm_names():
        import pathlib

        root = pathlib.Path("/dev/shm")
        if not root.is_dir():
            pytest.skip("/dev/shm unavailable")
        return {p.name for p in root.iterdir()}

    def test_failed_pack_leaves_no_segment(self):
        pytest.importorskip("multiprocessing.shared_memory")

        class ExplodingStore(SharedClipStore):
            def __init__(self, *args, **kwargs):
                if kwargs.get("owner"):
                    raise RuntimeError("simulated pack failure")
                super().__init__(*args, **kwargs)

        before = self._shm_names()
        with pytest.raises(RuntimeError, match="simulated"):
            ExplodingStore.pack(_clips(count=1, frames=2))
        assert self._shm_names() <= before

    def test_owner_atexit_unlinks_on_plain_exit(self):
        pytest.importorskip("multiprocessing.shared_memory")
        import subprocess
        import sys

        # The child packs a store, prints the segment name, and exits
        # WITHOUT calling close(): the atexit hook must unlink.
        script = (
            "import numpy as np\n"
            "from repro.runtime.shm import SharedClipStore\n"
            "from repro.video.frame import VideoSequence\n"
            "clip = VideoSequence.from_array(\n"
            "    np.zeros((2, 32, 32), dtype=np.uint8))\n"
            "store = SharedClipStore.pack([clip])\n"
            "print(store.name)\n"
        )
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip()
        assert name
        assert name not in self._shm_names()
