"""Campaign checkpoint/resume: the trial journal.

The journal's promises: a resumed campaign re-runs only missing trials
and lands bitwise identical to an uninterrupted one; results can never
leak across campaigns (spec/campaign digests); a torn tail write is
tolerated; real corruption is loud.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.runtime import (
    JOURNAL_VERSION,
    TrialContext,
    TrialFailure,
    TrialJournal,
    TrialResult,
    TrialSpec,
    campaign_digest,
    register_trial_kind,
    run_campaign,
    spawn_trial_seeds,
    spec_digest,
    unregister_trial_kind,
)

_CALLS = {"n": 0, "explode_at": None}


def _counted(state, spec):
    _CALLS["n"] += 1
    if _CALLS["explode_at"] is not None and _CALLS["n"] == \
            _CALLS["explode_at"]:
        raise KeyboardInterrupt  # simulates Ctrl-C mid-campaign
    rng = np.random.default_rng(spec.seed)
    return TrialResult(spec.index, float(rng.normal()),
                       int(rng.integers(0, 5)), bool(rng.integers(0, 2)))


def _flaky(state, spec):
    raise ValueError("always fails")


@pytest.fixture(autouse=True)
def _kinds():
    _CALLS["n"] = 0
    _CALLS["explode_at"] = None
    register_trial_kind("jn_counted", _counted)
    register_trial_kind("jn_flaky", _flaky)
    yield
    unregister_trial_kind("jn_counted")
    unregister_trial_kind("jn_flaky")


def _specs(count, kind="jn_counted", seed=7):
    seeds = spawn_trial_seeds(np.random.default_rng(seed), count)
    return [TrialSpec(index=i, kind=kind, seed=seeds[i])
            for i in range(count)]


class TestDigests:
    def test_spec_digest_stable(self):
        spec = TrialSpec(index=0, kind="sweep", rate=1e-3,
                         seed=np.random.SeedSequence(5))
        assert spec_digest(spec) == spec_digest(spec)

    def test_digest_ignores_position_not_content(self):
        seed = np.random.SeedSequence(5)
        a = TrialSpec(index=0, kind="sweep", rate=1e-3, seed=seed)
        b = TrialSpec(index=9, kind="sweep", rate=1e-3, seed=seed)
        # index is campaign position, not trial content — but it feeds
        # the campaign digest through ordering, not the spec digest...
        assert spec_digest(a) == spec_digest(b)

    def test_digest_sensitive_to_rate_and_seed(self):
        seed = np.random.SeedSequence(5)
        base = TrialSpec(index=0, kind="sweep", rate=1e-3, seed=seed)
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, rate=2e-3))
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, seed=np.random.SeedSequence(6)))
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, kind="single_flip"))

    def test_digest_sensitive_to_lifetime_fields(self):
        seed = np.random.SeedSequence(5)
        base = TrialSpec(index=0, kind="retention_read", seed=seed,
                         t_days=90.0)
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, t_days=365.0))
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, scrub_days=90.0))
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, retries=3))
        assert spec_digest(base) != spec_digest(
            dataclasses.replace(base, conceal=True))

    def test_spawned_siblings_differ(self):
        parent = np.random.SeedSequence(5)
        first, second = parent.spawn(2)
        a = TrialSpec(index=0, kind="sweep", rate=1e-3, seed=first)
        b = TrialSpec(index=0, kind="sweep", rate=1e-3, seed=second)
        assert spec_digest(a) != spec_digest(b)

    def test_campaign_digest_order_sensitive(self):
        specs = _specs(3)
        assert campaign_digest(specs) != campaign_digest(specs[::-1])


class TestRecordReplay:
    def test_roundtrip_including_extreme_floats(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        with TrialJournal.open_for(path, specs) as journal:
            result = TrialResult(0, float("-inf"), 3, True)
            journal.record(specs[0], result)
        reopened = TrialJournal.open_for(path, specs)
        assert reopened.completed(specs[0]) == result
        assert reopened.completed(specs[1]) is None
        assert len(reopened) == 1
        reopened.close()

    def test_campaign_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        TrialJournal.open_for(path, _specs(2, seed=1)).close()
        with pytest.raises(AnalysisError, match="fresh journal path"):
            TrialJournal.open_for(path, _specs(2, seed=2))

    def test_version_mismatch_rejected(self, tmp_path):
        specs = _specs(1)
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "version": JOURNAL_VERSION + 1,
             "campaign": campaign_digest(specs)}) + "\n")
        with pytest.raises(AnalysisError, match="version"):
            TrialJournal.open_for(path, specs)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "something-else"}\n')
        with pytest.raises(AnalysisError, match="header"):
            TrialJournal.open_for(path, _specs(1))

    def test_torn_tail_tolerated(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        with TrialJournal.open_for(path, specs) as journal:
            journal.record(specs[0], TrialResult(0, -1.5, 1, False))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "trial", "digest": "dead',)  # torn
        reopened = TrialJournal.open_for(path, specs)
        assert reopened.torn_lines == 1
        assert reopened.completed(specs[0]) is not None
        reopened.close()

    def test_torn_tail_survives_second_resume(self, tmp_path):
        # The torn fragment is truncated away on resume, so the next
        # append lands on a fresh line — a third open must still parse
        # cleanly instead of choking on a glued-together garbage line.
        specs = _specs(3)
        path = tmp_path / "j.jsonl"
        with TrialJournal.open_for(path, specs) as journal:
            journal.record(specs[0], TrialResult(0, -1.5, 1, False))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "trial", "digest": "dead')  # torn
        with TrialJournal.open_for(path, specs) as journal:
            assert journal.torn_lines == 1
            journal.record(specs[1], TrialResult(1, -2.5, 2, False))
        final = TrialJournal.open_for(path, specs)
        assert final.torn_lines == 0
        assert final.completed(specs[0]) is not None
        assert final.completed(specs[1]) is not None
        assert final.completed(specs[2]) is None
        final.close()

    def test_torn_header_rewritten(self, tmp_path):
        # A process that died while writing the very first line leaves a
        # headerless journal; reopening must start it over, not wedge it.
        specs = _specs(1)
        path = tmp_path / "j.jsonl"
        path.write_text('{"type": "hea')  # torn header, no newline
        with TrialJournal.open_for(path, specs) as journal:
            assert journal.torn_lines == 1
            assert len(journal) == 0
            journal.record(specs[0], TrialResult(0, 0.5, 1, False))
        reopened = TrialJournal.open_for(path, specs)
        assert reopened.completed(specs[0]) is not None
        reopened.close()

    def test_mid_file_corruption_is_loud(self, tmp_path):
        specs = _specs(1)
        path = tmp_path / "j.jsonl"
        header = json.dumps({"type": "header", "version": JOURNAL_VERSION,
                             "campaign": campaign_digest(specs)})
        path.write_text(header + "\nnot json at all\n" + header + "\n")
        with pytest.raises(AnalysisError, match="corrupt"):
            TrialJournal.open_for(path, specs)


class TestContextBinding:
    """The campaign digest covers the TrialContext, not just the specs.

    ``ranges_ref`` is an integer index and seeds are campaign-local, so
    two sweeps of *different videos* can share an identical spec grid —
    reusing one journal path across them must be refused, never silently
    "resumed" with the other video's results.
    """

    def test_different_videos_rejected(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        TrialJournal.open_for(path, specs,
                              TrialContext(encoded_blob=b"video-a")).close()
        with pytest.raises(AnalysisError, match="fresh journal path"):
            TrialJournal.open_for(path, specs,
                                  TrialContext(encoded_blob=b"video-b"))

    def test_different_ranges_tables_rejected(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        TrialJournal.open_for(
            path, specs, TrialContext(ranges_table=(((0, 0, 8),),))).close()
        with pytest.raises(AnalysisError, match="fresh journal path"):
            TrialJournal.open_for(
                path, specs, TrialContext(ranges_table=(((0, 8, 16),),)))

    def test_missing_context_distinct_from_any_context(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        TrialJournal.open_for(path, specs).close()
        with pytest.raises(AnalysisError, match="fresh journal path"):
            TrialJournal.open_for(path, specs,
                                  TrialContext(encoded_blob=b"video-a"))

    def test_equal_context_resumes(self, tmp_path):
        specs = _specs(2)
        path = tmp_path / "j.jsonl"
        result = TrialResult(0, -1.0, 1, False)
        context = TrialContext(encoded_blob=b"video-a",
                               ranges_table=(((0, 0, 8),),))
        with TrialJournal.open_for(path, specs, context) as journal:
            journal.record(specs[0], result)
        # A separately-constructed but equal context binds identically.
        reopened = TrialJournal.open_for(
            path, specs, TrialContext(encoded_blob=b"video-a",
                                      ranges_table=(((0, 0, 8),),)))
        assert reopened.completed(specs[0]) == result
        reopened.close()

    def test_campaign_cannot_leak_across_contexts(self, tmp_path):
        # End to end through the executor: same spec grid, same journal
        # path, different context — the second campaign must refuse to
        # "resume" the first one's results.
        specs = _specs(3)
        path = tmp_path / "campaign.jsonl"
        run_campaign(TrialContext(ranges_table=(((0, 0, 8),),)), specs,
                     workers=0, journal=path)
        with pytest.raises(AnalysisError, match="fresh journal path"):
            run_campaign(TrialContext(ranges_table=(((0, 8, 16),),)), specs,
                         workers=0, journal=path)


class TestResume:
    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        specs = _specs(8)
        path = tmp_path / "campaign.jsonl"
        _CALLS["explode_at"] = 4
        with pytest.raises(KeyboardInterrupt):
            run_campaign(TrialContext(), specs, workers=0, journal=path)
        executed_before = _CALLS["n"]
        assert 0 < executed_before < 8

        _CALLS["explode_at"] = None
        _CALLS["n"] = 0
        resumed, stats = run_campaign(TrialContext(), specs, workers=0,
                                      journal=path)
        # Only the missing trials ran; the merged list is bitwise
        # identical to a never-interrupted serial run.
        assert stats.resumed == executed_before - 1  # interrupt ran none
        assert _CALLS["n"] == 8 - stats.resumed
        clean, _ = run_campaign(TrialContext(), specs, workers=0)
        assert resumed == clean

    def test_completed_campaign_replays_without_execution(self, tmp_path):
        specs = _specs(5)
        path = tmp_path / "campaign.jsonl"
        first, _ = run_campaign(TrialContext(), specs, workers=0,
                                journal=path)
        _CALLS["n"] = 0
        second, stats = run_campaign(TrialContext(), specs, workers=0,
                                     journal=path)
        assert _CALLS["n"] == 0
        assert stats.resumed == 5
        assert second == first

    def test_failures_not_journaled(self, tmp_path):
        specs = _specs(3, kind="jn_flaky")
        path = tmp_path / "campaign.jsonl"
        results, _ = run_campaign(TrialContext(), specs, workers=0,
                                  journal=path)
        assert all(isinstance(r, TrialFailure) for r in results)
        # Journal holds only the header: failed trials re-run on resume.
        lines = [line for line in path.read_text().splitlines() if line]
        assert len(lines) == 1
        _, stats = run_campaign(TrialContext(), specs, workers=0,
                                journal=path)
        assert stats.resumed == 0


class TestTornTailEveryOffset:
    """Chaos-grade tear coverage: a crash can stop the final append
    after any byte. Whatever survives, resume must truncate cleanly and
    re-run exactly the missing trial, landing bitwise identical."""

    def test_resume_from_every_tear_offset(self, tmp_path):
        specs = _specs(3)
        context = TrialContext()
        full = tmp_path / "full.jsonl"
        clean, _ = run_campaign(context, specs, workers=0, journal=full)
        raw = full.read_bytes()
        cut = raw.rstrip(b"\n").rfind(b"\n") + 1
        body, last = raw[:cut], raw[cut:]
        assert last.endswith(b"\n") and json.loads(last)
        for offset in range(len(last)):
            torn = tmp_path / f"torn{offset}.jsonl"
            torn.write_bytes(body + last[:offset])
            journal = TrialJournal.open_for(torn, specs, context)
            # offset 0 is a cleanly missing record, anything else a
            # genuinely torn fragment that must be counted + truncated.
            assert journal.torn_lines == (1 if offset else 0)
            assert journal.completed(specs[-1]) is None
            for spec in specs[:-1]:
                assert journal.completed(spec) is not None
            journal.close()
            resumed, stats = run_campaign(context, specs, workers=0,
                                          journal=torn)
            assert stats.resumed == len(specs) - 1
            assert [r.value_db for r in resumed] == \
                [r.value_db for r in clean]
            healed = torn.read_bytes()
            assert healed.endswith(b"\n")
            assert healed == raw  # byte-identical to the clean journal
