"""Fault tolerance of the trial executor.

The contracts pinned here are the ones the fault-injection campaigns
lean on: a crashing or hanging trial is quarantined — never fatal, never
able to take other trials' results with it — and whatever survives is
bitwise identical to a clean serial run of the same campaign.

Crash/hang trials are injected through the trial-kind registry; forked
pool workers inherit the registrations.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.errors import AnalysisError, TrialTimeout
from repro.runtime import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_TIMEOUT,
    MAX_RETRIES_ENV,
    TIMEOUT_ENV,
    TrialContext,
    TrialExecutor,
    TrialFailure,
    TrialResult,
    TrialSpec,
    alarm_capable,
    fork_available,
    register_trial_kind,
    resolve_max_retries,
    resolve_trial_timeout,
    run_campaign,
    run_with_deadline,
    spawn_trial_seeds,
    trial_deadline,
    unregister_trial_kind,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method unavailable")
needs_alarm = pytest.mark.skipif(not alarm_capable(),
                                 reason="SIGALRM deadline unavailable")


def _noisy(state, spec):
    rng = np.random.default_rng(spec.seed)
    return TrialResult(spec.index, float(rng.normal()), 0, False)


def _crash(state, spec):
    os._exit(13)  # simulates a segfault/OOM kill: no cleanup, no pickle


def _sleeper(state, spec):
    time.sleep(spec.rate)
    return TrialResult(spec.index, 0.0, 0, False)


def _raiser(state, spec):
    raise ValueError("deliberately broken trial")


def _stubborn(state, spec):
    # Swallows the watchdog's TrialTimeout: models a hang in native code
    # that SIGALRM cannot break. Only the parent-side backstop helps.
    end = time.monotonic() + spec.rate
    while time.monotonic() < end:
        try:
            time.sleep(0.05)
        except BaseException:
            pass
    return TrialResult(spec.index, 0.0, 0, False)


@pytest.fixture(autouse=True)
def _trial_kinds():
    register_trial_kind("ft_noisy", _noisy)
    register_trial_kind("ft_crash", _crash)
    register_trial_kind("ft_sleeper", _sleeper)
    register_trial_kind("ft_raiser", _raiser)
    register_trial_kind("ft_stubborn", _stubborn)
    yield
    for kind in ("ft_noisy", "ft_crash", "ft_sleeper", "ft_raiser",
                 "ft_stubborn"):
        unregister_trial_kind(kind)


def _specs(count, overrides=None):
    seeds = spawn_trial_seeds(np.random.default_rng(42), count)
    specs = [TrialSpec(index=i, kind="ft_noisy", seed=seeds[i])
             for i in range(count)]
    for index, (kind, rate) in (overrides or {}).items():
        specs[index] = TrialSpec(index=index, kind=kind, rate=rate,
                                 seed=seeds[index])
    return specs


class TestRegistry:
    def test_builtin_kinds_protected(self):
        with pytest.raises(AnalysisError):
            register_trial_kind("sweep", _noisy)

    def test_unknown_kind_becomes_failure(self):
        # The guard converts the AnalysisError into a quarantined
        # failure: one bad spec cannot abort a campaign.
        results, stats = run_campaign(
            TrialContext(), _specs(2, {0: ("nonsense", 0.0)}), workers=0)
        assert isinstance(results[0], TrialFailure)
        assert "unknown trial kind" in results[0].message
        assert isinstance(results[1], TrialResult)
        assert stats.failed == 1

    def test_custom_kind_runs_serial(self):
        results, stats = run_campaign(TrialContext(), _specs(3), workers=0)
        assert all(isinstance(r, TrialResult) for r in results)
        assert stats.failed == 0 and stats.completed == 3


class TestWatchdog:
    @needs_alarm
    def test_deadline_interrupts(self):
        with pytest.raises(TrialTimeout):
            run_with_deadline(lambda: time.sleep(5), 0.1, what="nap")

    @needs_alarm
    def test_deadline_restores_previous_timer(self):
        import signal
        with trial_deadline(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_zero_means_no_deadline(self):
        with trial_deadline(0.0) as armed:
            assert armed is False

    @needs_alarm
    def test_serial_timeout_becomes_failure(self):
        specs = _specs(3, {1: ("ft_sleeper", 5.0)})
        results, stats = run_campaign(TrialContext(), specs, workers=0,
                                      timeout=0.2)
        assert isinstance(results[1], TrialFailure)
        assert results[1].kind == FAILURE_TIMEOUT
        assert stats.failed == 1 and stats.completed == 2

    def test_trial_exception_becomes_failure(self):
        specs = _specs(3, {2: ("ft_raiser", 0.0)})
        results, stats = run_campaign(TrialContext(), specs, workers=0)
        assert isinstance(results[2], TrialFailure)
        assert results[2].kind == FAILURE_ERROR
        assert "ValueError" in results[2].message
        assert stats.failed == 1


class TestResolution:
    def test_timeout_env_fallback(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert resolve_trial_timeout(None) == 2.5

    def test_timeout_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert resolve_trial_timeout(1.0) == 1.0

    def test_timeout_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.raises(AnalysisError):
            resolve_trial_timeout(None)

    def test_timeout_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "-1")
        with pytest.raises(AnalysisError):
            resolve_trial_timeout(None)
        with pytest.raises(AnalysisError):
            resolve_trial_timeout(-0.5)

    def test_timeout_infinite_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_trial_timeout(float("inf"))

    def test_retries_env_fallback(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        assert resolve_max_retries(None) == 5

    def test_retries_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "2.5")
        with pytest.raises(AnalysisError):
            resolve_max_retries(None)

    def test_retries_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "-3")
        with pytest.raises(AnalysisError):
            resolve_max_retries(None)


@needs_fork
class TestCrashRecovery:
    def test_crash_is_quarantined_survivors_identical(self):
        specs = _specs(12, {5: ("ft_crash", 0.0)})
        executor = TrialExecutor(workers=2, max_retries=2,
                                 backoff_base=0.01)
        results, stats = executor.run_with_stats(TrialContext(), specs,
                                                 chunksize=3)
        failure = results[5]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_CRASH
        assert failure.attempts == 3  # initial run + max_retries
        assert stats.quarantined == 1
        assert stats.pool_restarts >= 3
        # Every other trial survived, bitwise identical to a serial run.
        # (The baseline swaps the crash spec for a well-behaved one with
        # the same seed — per-spec seeding makes the others independent;
        # running os._exit serially would take pytest down with it.)
        serial, _ = run_campaign(TrialContext(), _specs(12), workers=0)
        for pos in range(12):
            if pos == 5:
                continue
            assert results[pos] == serial[pos]

    def test_whole_campaign_of_crashes_terminates(self):
        specs = _specs(3)
        specs = [TrialSpec(index=i, kind="ft_crash", seed=s.seed)
                 for i, s in enumerate(specs)]
        executor = TrialExecutor(workers=2, max_retries=0,
                                 backoff_base=0.01)
        results, stats = executor.run_with_stats(TrialContext(), specs,
                                                 chunksize=1)
        assert all(isinstance(r, TrialFailure) for r in results)
        assert stats.quarantined == 3
        assert stats.completed == 0

    @needs_alarm
    def test_worker_timeout_keeps_pool_alive(self):
        # A slow trial trips the in-worker alarm: the trial fails but
        # the worker survives, so no pool restart is needed for it.
        specs = _specs(6, {2: ("ft_sleeper", 10.0)})
        executor = TrialExecutor(workers=2, timeout=0.2, max_retries=2,
                                 backoff_base=0.01)
        results, stats = executor.run_with_stats(TrialContext(), specs,
                                                 chunksize=2)
        assert isinstance(results[2], TrialFailure)
        assert results[2].kind == FAILURE_TIMEOUT
        assert stats.failed == 1 and stats.completed == 5

    def test_hard_hang_hits_parent_backstop(self):
        # The stubborn trial swallows TrialTimeout, so only the
        # parent-side budget can reclaim the worker: pool killed,
        # trial quarantined as a timeout.
        specs = _specs(4, {2: ("ft_stubborn", 60.0)})
        executor = TrialExecutor(workers=2, timeout=0.3, max_retries=1,
                                 hang_grace=0.3, backoff_base=0.01)
        started = time.monotonic()
        results, stats = executor.run_with_stats(TrialContext(), specs,
                                                 chunksize=1)
        elapsed = time.monotonic() - started
        failure = results[2]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == FAILURE_TIMEOUT
        assert "hard hang" in failure.message
        assert stats.quarantined == 1
        assert stats.pool_restarts >= 2
        assert elapsed < 30.0  # reclaimed, not waited out
        assert stats.completed == 3


@needs_fork
class TestQueuedBudgets:
    def test_slow_queued_chunks_not_mistaken_for_hangs(self):
        # The whole batch is submitted at once, so with one worker the
        # last chunk legitimately waits behind every earlier chunk's
        # runtime. A naive submit-anchored deadline would declare it
        # hard-hung while still queued; the queue-position-scaled budget
        # must let the batch finish with zero pool kills.
        specs = _specs(4, {i: ("ft_sleeper", 0.25) for i in range(4)})
        executor = TrialExecutor(workers=1, timeout=0.5, max_retries=1,
                                 hang_grace=0.2, backoff_base=0.01)
        results, stats = executor.run_with_stats(TrialContext(), specs,
                                                 chunksize=1)
        assert all(isinstance(r, TrialResult) for r in results)
        assert stats.failed == 0
        assert stats.pool_restarts == 0


@needs_fork
class TestPoolHealthcheck:
    def test_broken_initializer_fails_fast(self):
        # A context whose deserialization crashes every worker at
        # startup can never make progress — no amount of chunk retries
        # or bisection helps. The post-respawn healthcheck must abort
        # the campaign with a clear error instead of burning a full
        # retry cycle per trial.
        context = TrialContext(encoded_blob=b"not a serialized stream")
        executor = TrialExecutor(workers=2, max_retries=2,
                                 backoff_base=0.01)
        with pytest.raises(AnalysisError, match="initializer"):
            executor.run_with_stats(context, _specs(4), chunksize=1)


@needs_fork
class TestSkipAndScale:
    def test_sweep_survives_quarantine(self, encoded_small, small_video,
                                       decoded_small, monkeypatch):
        # Make one sweep trial explode inside the worker: the sweep must
        # still aggregate, with the failure counted at its rate point.
        from repro.analysis import quality_sweep
        import repro.runtime.trials as trials_mod

        original = trials_mod.execute_trial

        def sabotaged(state, spec):
            if spec.index == 1:
                raise RuntimeError("sabotaged trial")
            return original(state, spec)

        monkeypatch.setattr("repro.runtime.executor.execute_trial",
                            sabotaged)
        result = quality_sweep(
            encoded_small, small_video, decoded_small, None,
            rates=(1e-3,), runs=3, rng=np.random.default_rng(5),
            workers=0)
        point = result.points[0]
        assert point.failed == 1
        assert point.runs == 2
        assert np.isfinite(point.mean_change_db)
        assert result.stats.failed == 1
