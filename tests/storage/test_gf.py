"""Tests for GF(2^m) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.gf import GF2m


@pytest.fixture(scope="module")
def field():
    return GF2m(10)


class TestFieldAxioms:
    @given(a=st.integers(1, 1023), b=st.integers(1, 1023))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutative(self, a, b):
        field = GF2m(10)
        assert field.multiply(a, b) == field.multiply(b, a)

    @given(a=st.integers(1, 1023), b=st.integers(1, 1023),
           c=st.integers(1, 1023))
    @settings(max_examples=60, deadline=None)
    def test_multiplication_associative(self, a, b, c):
        field = GF2m(10)
        assert field.multiply(field.multiply(a, b), c) == \
            field.multiply(a, field.multiply(b, c))

    @given(a=st.integers(1, 1023))
    @settings(max_examples=60, deadline=None)
    def test_inverse(self, a):
        field = GF2m(10)
        assert field.multiply(a, field.inverse(a)) == 1

    def test_zero_annihilates(self, field):
        assert field.multiply(0, 55) == 0
        assert field.multiply(55, 0) == 0

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(StorageError):
            field.inverse(0)

    def test_one_is_identity(self, field):
        for value in (1, 2, 100, 1023):
            assert field.multiply(value, 1) == value


class TestPowers:
    def test_alpha_powers_cycle(self, field):
        assert field.alpha_power(0) == 1
        assert field.alpha_power(field.order) == 1
        assert field.alpha_power(1) == 2  # alpha = x = 2 for this poly

    def test_power_matches_repeated_multiply(self, field):
        value = 37
        product = 1
        for exponent in range(8):
            assert field.power(value, exponent) == product
            product = field.multiply(product, value)

    def test_negative_power(self, field):
        assert field.power(37, -1) == field.inverse(37)

    def test_zero_powers(self, field):
        assert field.power(0, 0) == 1
        assert field.power(0, 5) == 0
        with pytest.raises(StorageError):
            field.power(0, -1)

    def test_vectorized_alpha_powers(self, field):
        exponents = np.array([0, 1, 5, 1023, 2046])
        values = field.alpha_powers(exponents)
        assert values[0] == 1
        assert values[3] == 1  # wraps at the group order


class TestPolynomials:
    def test_poly_eval_constant(self, field):
        assert field.poly_eval([7], 3) == 7

    def test_poly_eval_linear(self, field):
        # p(x) = 1 + x at x = alpha: 1 ^ alpha.
        alpha = field.alpha_power(1)
        assert field.poly_eval([1, 1], alpha) == 1 ^ alpha

    def test_poly_multiply_degree(self, field):
        a = [1, 1]       # 1 + x
        b = [1, 0, 1]    # 1 + x^2
        product = field.poly_multiply(a, b)
        assert len(product) == 4

    def test_minimal_polynomial_is_binary_and_annihilates(self, field):
        for exponent in (1, 3, 5):
            poly = field.minimal_polynomial(exponent)
            assert all(c in (0, 1) for c in poly)
            root = field.alpha_power(exponent)
            assert field.poly_eval(poly, root) == 0

    def test_minimal_polynomial_degree_divides_m(self, field):
        for exponent in (1, 3, 33):
            degree = len(field.minimal_polynomial(exponent)) - 1
            assert 10 % degree == 0

    def test_unsupported_m(self):
        with pytest.raises(StorageError):
            GF2m(25)
