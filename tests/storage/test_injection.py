"""Tests for Monte Carlo bit-flip injection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import (
    flip_bit,
    inject_correlated_burst,
    inject_into_payloads,
    inject_single_flip,
    occurrence_probability,
    rare_event_scale,
    sample_flip_count,
)


def _count_bit_diffs(a, b):
    arr_a = np.unpackbits(np.frombuffer(a, dtype=np.uint8))
    arr_b = np.unpackbits(np.frombuffer(b, dtype=np.uint8))
    return int(np.sum(arr_a != arr_b))


class TestFlipBit:
    def test_flips_msb_first(self):
        buffer = bytearray(b"\x00")
        flip_bit(buffer, 0)
        assert buffer == bytearray(b"\x80")

    def test_flip_is_involution(self):
        buffer = bytearray(b"\xa5\x5a")
        flip_bit(buffer, 11)
        flip_bit(buffer, 11)
        assert buffer == bytearray(b"\xa5\x5a")

    def test_out_of_range(self):
        with pytest.raises(StorageError):
            flip_bit(bytearray(b"\x00"), 8)

    def test_empty_payload_rejected(self):
        with pytest.raises(StorageError, match="empty payload"):
            flip_bit(bytearray(), 0)

    def test_negative_index_rejected(self):
        with pytest.raises(StorageError, match="negative"):
            flip_bit(bytearray(b"\x00"), -1)


class TestSampleFlipCount:
    def test_zero_rate_zero_flips(self, rng):
        count, forced = sample_flip_count(10_000, 0.0, rng)
        assert count == 0 and not forced

    def test_forced_minimum(self, rng):
        count, forced = sample_flip_count(100, 1e-12, rng,
                                          force_at_least_one=True)
        assert count == 1 and forced

    def test_no_force_flag(self, rng):
        count, forced = sample_flip_count(100, 1e-12, rng)
        assert count == 0 and not forced

    def test_mean_tracks_binomial(self, rng):
        counts = [sample_flip_count(10_000, 0.01, rng)[0]
                  for _ in range(200)]
        assert np.mean(counts) == pytest.approx(100, rel=0.15)

    def test_invalid_rate(self, rng):
        with pytest.raises(StorageError):
            sample_flip_count(10, 1.5, rng)


class TestOccurrence:
    def test_matches_closed_form(self):
        assert occurrence_probability(100, 0.01) == pytest.approx(
            1 - 0.99 ** 100)

    def test_zero_bits(self):
        assert occurrence_probability(0, 0.5) == 0.0

    def test_scale_equals_occurrence(self):
        assert rare_event_scale(1000, 1e-6) == pytest.approx(
            occurrence_probability(1000, 1e-6))

    def test_tiny_rate_stays_accurate(self):
        value = occurrence_probability(10_000, 1e-12)
        assert value == pytest.approx(1e-8, rel=1e-3)

    def test_rate_zero_boundary(self):
        assert occurrence_probability(1000, 0.0) == 0.0
        assert rare_event_scale(1000, 0.0) == 0.0

    def test_rate_one_boundary(self):
        # log1p(-1) would warn/return -inf; the boundary is exact.
        assert occurrence_probability(1000, 1.0) == 1.0
        assert rare_event_scale(1, 1.0) == 1.0

    def test_scale_monotone_in_rate(self):
        rates = (0.0, 1e-9, 1e-6, 1e-3, 0.5, 1.0)
        scales = [rare_event_scale(1000, r) for r in rates]
        assert scales == sorted(scales)
        assert scales[0] == 0.0 and scales[-1] == 1.0


class TestInjectIntoPayloads:
    def test_sizes_preserved(self, rng):
        payloads = [b"\x00" * 100, b"\xff" * 50]
        result = inject_into_payloads(payloads, 0.05, rng)
        assert [len(p) for p in result.payloads] == [100, 50]

    def test_flip_count_matches_report(self, rng):
        payloads = [bytes(200)]
        result = inject_into_payloads(payloads, 0.05, rng)
        assert _count_bit_diffs(payloads[0], result.payloads[0]) == \
            result.num_flips

    def test_inputs_not_mutated(self, rng):
        payloads = [bytes(100)]
        inject_into_payloads(payloads, 0.5, rng)
        assert payloads[0] == bytes(100)

    def test_respects_ranges(self, rng):
        payloads = [bytes(100)]
        ranges = [(0, 0, 64)]  # first 8 bytes only
        for _ in range(10):
            result = inject_into_payloads(payloads, 0.2, rng, ranges=ranges)
            assert result.payloads[0][8:] == bytes(92)

    def test_ranges_across_payloads(self, rng):
        payloads = [bytes(10), bytes(10)]
        ranges = [(0, 0, 8), (1, 72, 80)]
        result = inject_into_payloads(payloads, 1.0, rng, ranges=ranges)
        assert result.num_flips == 16
        assert result.payloads[0][0] == 0xFF
        assert result.payloads[1][9] == 0xFF
        assert result.payloads[0][1:] == bytes(9)

    def test_rate_one_flips_everything(self, rng):
        payloads = [b"\x00" * 10]
        result = inject_into_payloads(payloads, 1.0, rng)
        assert result.payloads[0] == b"\xff" * 10

    def test_forced_flag_surfaces(self, rng):
        result = inject_into_payloads([bytes(10)], 1e-12, rng,
                                      force_at_least_one=True)
        assert result.forced and result.num_flips == 1

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(StorageError):
            inject_into_payloads([bytes(4)], 0.1, rng, ranges=[(0, 0, 64)])
        with pytest.raises(StorageError):
            inject_into_payloads([bytes(4)], 0.1, rng, ranges=[(3, 0, 8)])

    def test_empty_payload_list_rejected(self, rng):
        with pytest.raises(StorageError, match="no payloads"):
            inject_into_payloads([], 0.1, rng)

    def test_inverted_span_rejected(self, rng):
        with pytest.raises(StorageError, match="inverted or empty"):
            inject_into_payloads([bytes(4)], 0.1, rng, ranges=[(0, 8, 8)])
        with pytest.raises(StorageError, match="inverted or empty"):
            inject_into_payloads([bytes(4)], 0.1, rng, ranges=[(0, 16, 8)])

    def test_default_ranges_skip_empty_payloads(self, rng):
        result = inject_into_payloads([b"", bytes(10), b""], 1.0, rng)
        assert result.payloads[0] == b"" and result.payloads[2] == b""
        assert result.payloads[1] == b"\xff" * 10

    def test_all_empty_payloads_rejected(self, rng):
        # Non-empty list, but zero targetable bits: must be loud, not a
        # silent zero-flip "injection".
        with pytest.raises(StorageError, match="no injectable bits"):
            inject_into_payloads([b"", b""], 0.1, rng)

    def test_explicit_empty_ranges_rejected(self, rng):
        with pytest.raises(StorageError, match="no injectable bits"):
            inject_into_payloads([bytes(4)], 0.1, rng, ranges=[])

    @given(seed=st.integers(0, 1000), rate=st.floats(0.001, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_flip_count_property(self, seed, rate):
        rng = np.random.default_rng(seed)
        payloads = [bytes(64)]
        result = inject_into_payloads(payloads, rate, rng)
        assert _count_bit_diffs(payloads[0], result.payloads[0]) == \
            result.num_flips


class TestSingleFlip:
    def test_exactly_one_bit(self):
        payloads = [bytes(10), bytes(10)]
        out = inject_single_flip(payloads, 1, 37)
        assert _count_bit_diffs(payloads[0], out[0]) == 0
        assert _count_bit_diffs(payloads[1], out[1]) == 1

    def test_empty_list_rejected(self):
        with pytest.raises(StorageError, match="no payloads"):
            inject_single_flip([], 0, 0)

    def test_payload_index_out_of_range(self):
        with pytest.raises(StorageError, match="payload index"):
            inject_single_flip([bytes(4)], 2, 0)


class TestCorrelatedBurst:
    def test_flips_exactly_burst_bits_contiguously(self, rng):
        payloads = [bytes(64)]
        for _ in range(10):
            result = inject_correlated_burst(payloads, 12, rng)
            assert result.num_flips == 12
            assert _count_bit_diffs(payloads[0], result.payloads[0]) == 12
            bits = np.unpackbits(
                np.frombuffer(result.payloads[0], dtype=np.uint8))
            flipped = np.flatnonzero(bits)
            # Contiguous span: last - first + 1 == count.
            assert flipped[-1] - flipped[0] + 1 == 12

    def test_burst_clamps_to_total_bits(self, rng):
        payloads = [bytes(4)]  # 32 bits
        result = inject_correlated_burst(payloads, 1000, rng)
        assert result.num_flips == 32
        assert result.payloads[0] == b"\xff" * 4

    def test_burst_straddles_adjacent_ranges(self, rng):
        # Two 8-bit ranges on different payloads form one 16-bit
        # cumulative space; a 16-bit burst must damage both sides of
        # the partition boundary, like physical damage would.
        payloads = [bytes(10), bytes(10)]
        ranges = [(0, 72, 80), (1, 0, 8)]
        result = inject_correlated_burst(payloads, 16, rng,
                                         ranges=ranges)
        assert result.num_flips == 16
        assert result.payloads[0][9] == 0xFF
        assert result.payloads[1][0] == 0xFF
        assert result.payloads[0][:9] == bytes(9)
        assert result.payloads[1][1:] == bytes(9)

    def test_inputs_not_mutated(self, rng):
        payloads = [bytes(32)]
        inject_correlated_burst(payloads, 8, rng)
        assert payloads[0] == bytes(32)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(StorageError, match="no payloads"):
            inject_correlated_burst([], 4, rng)
        with pytest.raises(StorageError, match="burst_bits"):
            inject_correlated_burst([bytes(4)], 0, rng)
        with pytest.raises(StorageError, match="no injectable bits"):
            inject_correlated_burst([b""], 4, rng)
