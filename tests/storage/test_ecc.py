"""Tests for the ECC scheme registry and analytic rates."""

import math

import pytest

from repro.errors import StorageError
from repro.storage import (
    NONE_SCHEME,
    PRECISE_SCHEME,
    SCHEME_MENU,
    binomial_tail,
    figure8_table,
    scheme_by_name,
    scheme_for_target_rate,
)


class TestBinomialTail:
    def test_matches_exact_small_case(self):
        # P[Bin(4, 0.5) > 1] = 1 - (1 + 4)/16 = 11/16
        assert binomial_tail(4, 0.5, 1) == pytest.approx(11 / 16)

    def test_zero_probability(self):
        assert binomial_tail(100, 0.0, 3) == 0.0

    def test_certain_failure(self):
        assert binomial_tail(10, 1.0, 5) == 1.0
        assert binomial_tail(10, 1.0, 10) == 0.0

    def test_poisson_regime(self):
        """For n*p << 1 the tail matches the Poisson approximation."""
        n, p, t = 572, 1e-3, 6
        lam = n * p
        poisson = math.exp(-lam) * lam ** (t + 1) / math.factorial(t + 1)
        assert binomial_tail(n, p, t) == pytest.approx(poisson, rel=0.1)

    def test_invalid_probability(self):
        with pytest.raises(StorageError):
            binomial_tail(10, 1.5, 2)


class TestSchemes:
    def test_figure8_overheads(self):
        """The paper's quoted overheads: 11.7% (BCH-6) .. 31.3% (BCH-16)."""
        assert scheme_by_name("BCH-6").overhead == pytest.approx(0.1172,
                                                                 abs=1e-3)
        assert scheme_by_name("BCH-16").overhead == pytest.approx(0.3125,
                                                                  abs=1e-3)

    def test_figure8_capabilities_ladder(self):
        """Each extra correctable error buys roughly an order of
        magnitude, landing near the paper's 1e-6 .. 1e-16 ladder."""
        rates = [scheme_by_name(f"BCH-{t}").block_failure_rate()
                 for t in (6, 7, 8, 9, 10, 11)]
        for stronger, weaker in zip(rates[1:], rates[:-1]):
            assert stronger < weaker / 5
        assert 1e-7 < rates[0] < 1e-5  # paper: ~1e-6 for BCH-6
        assert PRECISE_SCHEME.block_failure_rate() < 1e-16

    def test_none_scheme_passes_raw_rate(self):
        assert NONE_SCHEME.block_failure_rate(1e-3) == 1e-3
        assert NONE_SCHEME.overhead == 0.0

    def test_residual_ber_below_block_rate(self):
        scheme = scheme_by_name("BCH-6")
        assert scheme.residual_bit_error_rate() < scheme.block_failure_rate()

    def test_menu_sorted_reachable(self):
        names = {s.name for s in SCHEME_MENU}
        assert {"None", "BCH-6", "BCH-16"} <= names

    def test_unknown_scheme(self):
        with pytest.raises(StorageError):
            scheme_by_name("BCH-99")


class TestTargetLookup:
    def test_weakest_sufficient_scheme(self):
        # BCH-6's exact tail is 2.3e-6 (the paper rounds to "~1e-6").
        assert scheme_for_target_rate(3e-6).name == "BCH-6"
        assert scheme_for_target_rate(1e-6).name == "BCH-7"

    def test_raw_when_target_loose(self):
        assert scheme_for_target_rate(1e-2).name == "None"

    def test_unreachable_target(self):
        with pytest.raises(StorageError):
            scheme_for_target_rate(1e-30)

    def test_figure8_table_rows(self):
        rows = figure8_table()
        assert len(rows) == 7
        overheads = [r["overhead_percent"] for r in rows]
        assert overheads == sorted(overheads)
        rates = [r["uncorrectable_rate"] for r in rows]
        assert rates == sorted(rates, reverse=True)
