"""Tests for the BCH codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.bch import BCHCode, get_bch_code


@pytest.fixture(scope="module")
def bch6():
    return get_bch_code(6)


def _random_data(seed, bits=512):
    return np.random.default_rng(seed).integers(0, 2, bits).astype(np.uint8)


class TestConstruction:
    @pytest.mark.parametrize("t,expected_parity", [
        (1, 10), (6, 60), (7, 70), (8, 80), (9, 90), (10, 100),
        (11, 110), (16, 160),
    ])
    def test_parity_bits_are_10t(self, t, expected_parity):
        """The paper's Figure 8 overheads depend on parity == 10 * t."""
        assert get_bch_code(t).parity_bits == expected_parity

    def test_overhead_matches_paper(self):
        assert get_bch_code(6).overhead == pytest.approx(0.117, abs=0.001)
        assert get_bch_code(16).overhead == pytest.approx(0.3125, abs=0.001)

    def test_rejects_zero_t(self):
        with pytest.raises(StorageError):
            BCHCode(0)

    def test_rejects_oversized_data(self):
        with pytest.raises(StorageError):
            BCHCode(16, data_bits=1000)


class TestEncode:
    def test_systematic_prefix(self, bch6):
        data = _random_data(0)
        codeword = bch6.encode(data)
        assert np.array_equal(codeword[:512], data)
        assert codeword.size == bch6.block_bits

    def test_rejects_wrong_size(self, bch6):
        with pytest.raises(StorageError):
            bch6.encode(np.zeros(100, dtype=np.uint8))

    def test_deterministic(self, bch6):
        data = _random_data(1)
        assert np.array_equal(bch6.encode(data), bch6.encode(data))


class TestDecode:
    def test_clean_codeword(self, bch6):
        data = _random_data(2)
        result = bch6.decode(bch6.encode(data))
        assert result.success and result.corrected_errors == 0
        assert np.array_equal(result.data, data)

    @pytest.mark.parametrize("errors", [1, 2, 3, 4, 5, 6])
    def test_corrects_up_to_t(self, bch6, errors):
        rng = np.random.default_rng(errors)
        data = _random_data(errors)
        codeword = bch6.encode(data)
        positions = rng.choice(bch6.block_bits, errors, replace=False)
        codeword[positions] ^= 1
        result = bch6.decode(codeword)
        assert result.success
        assert result.corrected_errors == errors
        assert np.array_equal(result.data, data)

    def test_parity_area_errors_corrected(self, bch6):
        """The codes are self-correcting: flips in the parity bits count
        against t but the data still comes back clean."""
        data = _random_data(3)
        codeword = bch6.encode(data)
        codeword[-3:] ^= 1  # three parity-bit errors
        result = bch6.decode(codeword)
        assert result.success
        assert np.array_equal(result.data, data)

    def test_beyond_t_reported_failed(self, bch6):
        rng = np.random.default_rng(9)
        failures = 0
        for trial in range(5):
            data = _random_data(trial + 100)
            codeword = bch6.encode(data)
            positions = rng.choice(bch6.block_bits, bch6.t + 2,
                                   replace=False)
            codeword[positions] ^= 1
            if not bch6.decode(codeword).success:
                failures += 1
        assert failures >= 4  # t+2 errors are essentially always detected

    def test_failed_decode_returns_received_bits(self, bch6):
        rng = np.random.default_rng(10)
        data = _random_data(11)
        codeword = bch6.encode(data)
        positions = rng.choice(bch6.block_bits, bch6.t + 3, replace=False)
        codeword[positions] ^= 1
        result = bch6.decode(codeword)
        if not result.success:
            assert np.array_equal(result.data, codeword[:512])

    def test_rejects_wrong_size(self, bch6):
        with pytest.raises(StorageError):
            bch6.decode(np.zeros(100, dtype=np.uint8))

    @given(seed=st.integers(0, 10_000), extra=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_beyond_t_never_partially_corrects(self, seed, extra):
        """t+1..t+3 errors: detect-and-return-unchanged or land on a
        *valid* codeword within distance t — never a partial correction.

        This is the contract the retry ladder and damage escalation are
        built on: a detected-uncorrectable block hands back exactly the
        received bits, and any claimed success is a real codeword.
        """
        code = get_bch_code(3, data_bits=64)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 64).astype(np.uint8)
        codeword = code.encode(data)
        positions = rng.choice(code.block_bits, code.t + extra,
                               replace=False)
        received = codeword.copy()
        received[positions] ^= 1
        result = code.decode(received)
        if result.success:
            # Silent miscorrection: decode landed on a different valid
            # codeword, which must sit within t flips of the received
            # word (that is what "correcting <= t errors" means).
            assert not result.detected_uncorrectable
            corrected = code.encode(result.data)
            assert np.count_nonzero(corrected != received) <= code.t
        else:
            assert result.detected_uncorrectable
            assert np.array_equal(result.data, received[:64])

    def test_detected_uncorrectable_flag_on_clean_decode(self, bch6):
        data = _random_data(21)
        result = bch6.decode(bch6.encode(data))
        assert result.success
        assert not result.detected_uncorrectable

    @given(seed=st.integers(0, 10_000), errors=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed, errors):
        code = get_bch_code(3, data_bits=64)
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, 64).astype(np.uint8)
        codeword = code.encode(data)
        if errors:
            positions = rng.choice(code.block_bits, errors, replace=False)
            codeword[positions] ^= 1
        result = code.decode(codeword)
        assert result.success
        assert np.array_equal(result.data, data)

    def test_small_code_strong_t(self):
        code = get_bch_code(16, data_bits=128)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, 128).astype(np.uint8)
        codeword = code.encode(data)
        positions = rng.choice(code.block_bits, 16, replace=False)
        codeword[positions] ^= 1
        result = code.decode(codeword)
        assert result.success
        assert np.array_equal(result.data, data)
