"""Tests for the approximate storage device."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import (
    ApproximateDevice,
    MLCCellModel,
    NONE_SCHEME,
    PRECISE_SCHEME,
    bits_to_bytes,
    bytes_to_bits,
    scheme_by_name,
)


class TestBitPacking:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_misaligned_rejected(self):
        with pytest.raises(StorageError):
            bits_to_bytes(np.zeros(7, dtype=np.uint8))


class TestAccounting:
    def test_raw_stores_data_bits_only(self):
        device = ApproximateDevice(rng=np.random.default_rng(0))
        assert device.stored_bits(1024, NONE_SCHEME) == 1024

    def test_coded_adds_parity_per_block(self):
        device = ApproximateDevice(rng=np.random.default_rng(0))
        scheme = scheme_by_name("BCH-6")
        assert device.stored_bits(512, scheme) == 512 + 60
        assert device.stored_bits(513, scheme) == 513 + 120  # 2 blocks

    def test_cells_used(self):
        device = ApproximateDevice(rng=np.random.default_rng(0))
        assert device.cells_used(512 * 3, NONE_SCHEME) == 512


class TestAnalyticMode:
    def test_strong_scheme_returns_clean(self, rng):
        device = ApproximateDevice(rng=rng)
        data = bytes(rng.integers(0, 256, 2048, dtype=np.uint8))
        out, report = device.store_and_read(data, PRECISE_SCHEME)
        assert out == data
        assert report.failed_blocks == 0 and report.flipped_bits == 0

    def test_raw_scheme_flips_at_rber(self, rng):
        device = ApproximateDevice(rng=rng)
        data = bytes(200_000)
        out, report = device.store_and_read(data, NONE_SCHEME)
        expected = device.raw_ber * 8 * len(data)
        assert report.flipped_bits == pytest.approx(expected, rel=0.6)
        assert len(out) == len(data)

    def test_block_failures_track_rate(self, rng):
        """Raise the substrate error rate so BCH-6 fails measurably and
        compare to the binomial prediction."""
        noisy = MLCCellModel(write_sigma=0.055)  # much worse cells
        device = ApproximateDevice(cell_model=noisy, rng=rng)
        scheme = scheme_by_name("BCH-6")
        data = bytes(512 * 200 // 8)
        _out, report = device.store_and_read(data, scheme)
        expected = scheme.block_failure_rate(device.raw_ber) * report.blocks
        assert report.blocks == 200
        assert abs(report.failed_blocks - expected) <= max(
            5 * np.sqrt(expected), 5)

    def test_report_sizes(self, rng):
        device = ApproximateDevice(rng=rng)
        scheme = scheme_by_name("BCH-8")
        data = bytes(512 // 8 * 3)
        _out, report = device.store_and_read(data, scheme)
        assert report.data_bits == 512 * 3
        assert report.stored_bits == 3 * (512 + 80)


class TestExactMode:
    def test_exact_bch_corrects_substrate_errors(self, rng):
        """End-to-end: encode -> MLC write/read with real noise ->
        BCH decode. At the nominal 1e-3 substrate, BCH-16 over a few
        blocks must come back clean."""
        device = ApproximateDevice(rng=rng, exact=True)
        data = bytes(rng.integers(0, 256, 512 // 8 * 4, dtype=np.uint8))
        out, report = device.store_and_read(data, PRECISE_SCHEME)
        assert out == data
        assert report.failed_blocks == 0

    def test_exact_raw_matches_substrate_ber(self, rng):
        device = ApproximateDevice(rng=rng, exact=True)
        data = bytes(30_000)
        _out, report = device.store_and_read(data, NONE_SCHEME)
        expected = device.raw_ber * 8 * len(data)
        assert report.flipped_bits == pytest.approx(expected, rel=0.8)

    def test_exact_weak_code_on_noisy_cells_fails_sometimes(self, rng):
        noisy = MLCCellModel(write_sigma=0.06)
        device = ApproximateDevice(cell_model=noisy, rng=rng, exact=True)
        scheme = scheme_by_name("BCH-6")
        data = bytes(rng.integers(0, 256, 512 * 30 // 8, dtype=np.uint8))
        out, report = device.store_and_read(data, scheme)
        assert report.blocks == 30
        # With ~6% sigma the raw BER is far above 1e-3; some blocks
        # exceed t=6 errors and surface flips.
        assert report.failed_blocks > 0
        assert out != data


class TestAccountingProperties:
    """Property tests of the device's storage arithmetic."""

    def test_stored_bits_monotone_in_data(self, rng):
        device = ApproximateDevice(rng=rng)
        scheme = scheme_by_name("BCH-8")
        previous = 0
        for bits in range(0, 4096, 128):
            stored = device.stored_bits(bits, scheme)
            assert stored >= previous
            assert stored >= bits
            previous = stored

    def test_overhead_bounded_by_scheme(self, rng):
        """Per-block padding can only push the realized overhead above
        the nominal ratio for tiny payloads, never below it."""
        device = ApproximateDevice(rng=rng)
        scheme = scheme_by_name("BCH-6")
        for blocks in (1, 3, 17):
            data_bits = scheme.data_bits * blocks
            stored = device.stored_bits(data_bits, scheme)
            assert stored - data_bits == blocks * scheme.parity_bits

    def test_analytic_and_exact_agree_on_accounting(self, rng):
        analytic = ApproximateDevice(rng=np.random.default_rng(0))
        exact = ApproximateDevice(rng=np.random.default_rng(0), exact=True)
        scheme = scheme_by_name("BCH-6")
        data = bytes(512 // 8 * 2)
        _out_a, report_a = analytic.store_and_read(data, scheme)
        _out_e, report_e = exact.store_and_read(data, scheme)
        assert report_a.stored_bits == report_e.stored_bits
        assert report_a.cells_used == report_e.cells_used
        assert report_a.blocks == report_e.blocks
