"""Tests for the MLC PCM cell model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage import MLCCellModel, calibrated_model, gray_code, gray_decode


class TestGrayCode:
    @given(st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, value):
        assert gray_decode(gray_code(value)) == value

    def test_adjacent_levels_differ_by_one_bit(self):
        for level in range(7):
            diff = gray_code(level) ^ gray_code(level + 1)
            assert bin(diff).count("1") == 1


class TestModelConstruction:
    def test_default_is_8_levels_3_bits(self):
        model = MLCCellModel()
        assert model.levels == 8
        assert model.bits_per_cell == 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(StorageError):
            MLCCellModel(levels=6)

    def test_rejects_bad_sigma(self):
        with pytest.raises(StorageError):
            MLCCellModel(write_sigma=0.0)

    def test_level_positions_monotone(self):
        model = MLCCellModel()
        assert np.all(np.diff(model.level_positions) > 0)
        assert np.all(np.diff(model.read_thresholds) > 0)

    def test_drift_compensation(self):
        """Written positions sit below their read-time targets so that
        mean drift carries them onto the targets at scrub time."""
        model = MLCCellModel()
        assert model.level_positions[-1] < 1.0
        drifted = model.level_positions + (
            model.drift_coefficient * model.level_positions
            * np.log10(1 + model.scrub_interval_days))
        assert np.allclose(drifted, model.read_targets, atol=1e-12)
        assert model.read_targets[0] == 0.0
        assert model.read_targets[-1] == pytest.approx(1.0)

    def test_scrub_interval_matters(self):
        """Stochastic drift accumulates: a lazier scrub schedule reads
        cells with more drift noise and a higher error rate."""
        weekly = MLCCellModel(scrub_interval_days=7.0)
        yearly = MLCCellModel(scrub_interval_days=365.0)
        assert weekly.raw_bit_error_rate() < yearly.raw_bit_error_rate()

    def test_error_equalization_across_levels(self):
        """Noise-proportional spacing equalizes inner-level error rates
        almost exactly (outer levels have one-sided tails)."""
        rates = MLCCellModel().level_error_rates()
        inner = rates[1:-1]
        assert inner.max() < inner.min() * 1.2


class TestErrorRates:
    def test_default_hits_paper_rber(self):
        """The paper's substrate: 8 levels, ~1e-3 raw BER at 3 months."""
        ber = MLCCellModel().raw_bit_error_rate()
        assert 5e-4 < ber < 2e-3

    def test_error_grows_with_time(self):
        model = MLCCellModel()
        assert model.raw_bit_error_rate(365.0) > model.raw_bit_error_rate(90.0)

    def test_drift_aware_reads_order_fresh_before_aged(self):
        """Reads use drift-aware thresholds (re-centered on the drifted
        means at the read time), so fresh cells always read better than
        scrub-aged cells, which read better than decade-aged ones."""
        model = MLCCellModel()
        at_scrub = model.raw_bit_error_rate()
        assert model.raw_bit_error_rate(0.0) < at_scrub
        assert at_scrub < model.raw_bit_error_rate(3650.0)

    def test_thresholds_at_scrub_point_are_the_placement_thresholds(self):
        """At the scrub read point the drift-aware thresholds are the
        placement's own thresholds, bit for bit — default reads are
        identical to the fixed-threshold model."""
        model = MLCCellModel()
        assert model.thresholds_at() is model.read_thresholds
        assert model.thresholds_at(model.scrub_interval_days) \
            is model.read_thresholds
        assert not np.array_equal(model.thresholds_at(0.0),
                                  model.read_thresholds)

    def test_fewer_levels_fewer_errors(self):
        dense = MLCCellModel(levels=8)
        sparse = MLCCellModel(levels=4)
        assert sparse.raw_bit_error_rate() < dense.raw_bit_error_rate()

    def test_level_rates_roughly_equalized(self):
        """Non-uniform placement equalizes per-level error rates; inner
        levels (two-sided) sit within ~2x of each other."""
        rates = MLCCellModel().level_error_rates()
        inner = rates[1:-1]
        assert inner.max() < inner.min() * 3

    def test_calibration(self):
        model = calibrated_model(target_raw_ber=1e-4)
        assert model.raw_bit_error_rate() == pytest.approx(1e-4, rel=0.05)


class TestMonteCarlo:
    def test_empirical_matches_analytic(self, rng):
        model = MLCCellModel()
        bits = rng.integers(0, 2, 3 * 100_000).astype(np.uint8)
        out = model.write_and_read(bits, rng)
        empirical = np.mean(bits != out)
        analytic = model.raw_bit_error_rate()
        assert empirical == pytest.approx(analytic, rel=0.5)

    def test_noiseless_read_is_exact(self, rng):
        model = MLCCellModel(write_sigma=1e-4, drift_coefficient=0.0)
        bits = rng.integers(0, 2, 3 * 1000).astype(np.uint8)
        assert np.array_equal(model.write_and_read(bits, rng), bits)

    def test_rejects_misaligned_bits(self, rng):
        model = MLCCellModel()
        with pytest.raises(StorageError):
            model.write_and_read(np.zeros(10, dtype=np.uint8), rng)

    def test_cells_for_bits(self):
        model = MLCCellModel()
        assert model.cells_for_bits(3) == 1
        assert model.cells_for_bits(4) == 2
        assert model.cells_for_bits(0) == 0


class TestRetentionDrift:
    """Drift behaviour over the retention timeline (the lifetime
    subsystem's substrate contract)."""

    #: A retention grid spanning fresh cells to a decade, straddling
    #: the default 90-day scrub point.
    T_GRID = (0.0, 0.25, 1.0, 3.0, 10.0, 30.0, 60.0, 90.0, 91.0,
              180.0, 365.0, 1000.0, 3650.0)

    @pytest.mark.parametrize("levels", [4, 8, 16])
    def test_raw_ber_monotone_in_retention_time(self, levels):
        """raw_bit_error_rate(t) never decreases as cells age."""
        model = MLCCellModel(levels=levels)
        rates = [model.raw_bit_error_rate(t) for t in self.T_GRID]
        for earlier, later in zip(rates, rates[1:]):
            assert later >= earlier

    @pytest.mark.parametrize("levels", [4, 8, 16])
    def test_raw_ber_matches_level_rate_aggregation(self, levels):
        """The scalar BER is exactly the uniform-usage mean of the
        per-level misread rates divided by the bits per cell."""
        model = MLCCellModel(levels=levels)
        for t in (0.0, 30.0, 90.0, 365.0, 3650.0):
            aggregated = (float(np.mean(model.level_error_rates(t)))
                          / model.bits_per_cell)
            assert model.raw_bit_error_rate(t) == aggregated

    @pytest.mark.parametrize("levels", [4, 8, 16])
    def test_default_rate_is_the_scrub_point_rate(self, levels):
        model = MLCCellModel(levels=levels)
        assert model.raw_bit_error_rate() == model.raw_bit_error_rate(
            model.scrub_interval_days)

    def test_monte_carlo_tracks_analytic_at_other_times(self, rng):
        """write_and_read honours t_days: aged reads show the aged
        analytic error rate, not the scrub-point one."""
        model = MLCCellModel()
        bits = rng.integers(0, 2, 3 * 120_000).astype(np.uint8)
        aged = model.write_and_read(bits, rng, t_days=3650.0)
        empirical = float(np.mean(bits != aged))
        assert empirical == pytest.approx(
            model.raw_bit_error_rate(3650.0), rel=0.5)
        assert empirical > 1.5 * model.raw_bit_error_rate()
