"""Tests for density accounting."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    NONE_SCHEME,
    density_report,
    ideal_density,
    scheme_by_name,
    slc_density,
    uniform_density,
)


class TestDensityReport:
    def test_single_raw_stream(self):
        report = density_report({NONE_SCHEME: 3000}, 0, 1000)
        assert report.stored_bits == 3000
        assert report.cells == 1000.0
        assert report.cells_per_pixel == 1.0
        assert report.pixels_per_cell == 1.0

    def test_parity_counted(self):
        scheme = scheme_by_name("BCH-6")
        report = density_report({scheme: 512}, 0, 1000)
        assert report.stored_bits == 512 + 60

    def test_headers_protected_precisely(self):
        report = density_report({NONE_SCHEME: 0}, 512, 1000)
        assert report.stored_bits == 512 + 160  # BCH-16 parity

    def test_overhead_fraction(self):
        scheme = scheme_by_name("BCH-16")
        report = density_report({scheme: 512}, 0, 1000)
        assert report.ecc_overhead == pytest.approx(160 / 512)

    def test_rejects_zero_pixels(self):
        with pytest.raises(StorageError):
            density_report({NONE_SCHEME: 10}, 0, 0)

    def test_rejects_negative_bits(self):
        with pytest.raises(StorageError):
            density_report({NONE_SCHEME: -1}, 0, 10)


class TestBaselines:
    def test_uniform_uses_precise_everywhere(self):
        report = uniform_density(512 * 10, 1000)
        assert report.ecc_overhead == pytest.approx(0.3125)

    def test_ideal_has_no_overhead(self):
        report = ideal_density(3000, 1000)
        assert report.ecc_overhead == 0.0
        assert report.cells == 1000.0

    def test_slc_one_bit_per_cell(self):
        report = slc_density(3000, 1000)
        assert report.cells == 3000.0

    def test_paper_headline_ratios(self):
        """With ~16.6% average overhead, the paper's Figure 11 ratios
        emerge: ~2.57x vs SLC and ~12.5% over uniform MLC."""
        bits = 512 * 1000
        pixels = 100_000
        # Mimic the paper's measured mix: mostly BCH-6/7 with some raw.
        mix = {
            NONE_SCHEME: int(bits * 0.06),
            scheme_by_name("BCH-6"): int(bits * 0.55),
            scheme_by_name("BCH-7"): int(bits * 0.2),
            scheme_by_name("BCH-9"): int(bits * 0.12),
            scheme_by_name("BCH-10"): int(bits * 0.07),
        }
        variable = density_report(mix, 0, pixels)
        uniform = uniform_density(sum(mix.values()), pixels)
        slc = slc_density(sum(mix.values()), pixels)
        assert slc.cells / variable.cells == pytest.approx(2.57, abs=0.2)
        assert uniform.cells / variable.cells - 1 == pytest.approx(
            0.125, abs=0.05)
