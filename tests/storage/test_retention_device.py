"""Lifetime behaviour of the device: retention reads, scrubbing, the
re-read retry ladder, and uncorrectable-block escalation.

The paper-faithful path (``t_days=None``, no scrub, no retries) is
pinned bitwise against the legacy behaviour; everything else layers on
top of it.
"""

import numpy as np
import pytest

from repro.errors import AnalysisError, StorageError
from repro.obs import metrics as obs_metrics
from repro.storage import (
    ApproximateDevice,
    MLCCellModel,
    RETRIES_ENV,
    ScrubPolicy,
    UncorrectableBlock,
    resolve_read_retries,
    scheme_by_name,
)

#: Drift-dominated substrate: block failures become common within the
#: default decade grid, so every lifetime mechanism is observable.
DRIFTY = dict(write_sigma=0.012, drift_sigma=0.02)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _payload(blocks, rng, scheme=None):
    scheme = scheme or scheme_by_name("BCH-6")
    size = scheme.data_bits * blocks // 8
    return bytes(rng.integers(0, 256, size, dtype=np.uint8))


class TestResolveReadRetries:
    def test_default_is_zero(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert resolve_read_retries() == 0

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "7")
        assert resolve_read_retries(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "3")
        assert resolve_read_retries() == 3

    @pytest.mark.parametrize("bad", ["three", "1.5", "-2"])
    def test_bad_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv(RETRIES_ENV, bad)
        with pytest.raises(AnalysisError):
            resolve_read_retries()

    def test_negative_explicit_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_read_retries(-1)


class TestScrubPolicy:
    def test_drift_age_and_count(self):
        policy = ScrubPolicy(interval_days=90.0)
        assert policy.drift_age(400.0) == pytest.approx(40.0)
        assert policy.scrub_count(400.0) == 4
        assert policy.drift_age(89.9) == pytest.approx(89.9)
        assert policy.scrub_count(89.9) == 0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_interval_rejected(self, bad):
        with pytest.raises(StorageError):
            ScrubPolicy(interval_days=bad)


class TestLegacyEquivalence:
    """``t_days=None`` must be bitwise the pre-lifetime device."""

    def test_none_matches_nominal_scrub_point_read(self):
        scheme = scheme_by_name("BCH-6")
        data = _payload(40, np.random.default_rng(0))
        legacy = ApproximateDevice(rng=np.random.default_rng(5))
        out_legacy, rep_legacy = legacy.store_and_read(data, scheme)
        aged = ApproximateDevice(rng=np.random.default_rng(5))
        out_aged, rep_aged = aged.store_and_read(
            data, scheme, t_days=aged.cell_model.scrub_interval_days)
        assert out_legacy == out_aged
        assert rep_legacy.failed_blocks == rep_aged.failed_blocks
        assert rep_legacy.retention_days is None
        assert rep_aged.retention_days == pytest.approx(
            aged.cell_model.scrub_interval_days)

    def test_legacy_report_has_no_lifetime_accounting(self, rng):
        device = ApproximateDevice(rng=rng)
        _out, report = device.store_and_read(
            _payload(4, rng), scheme_by_name("BCH-6"))
        assert report.scrub_count == 0
        assert report.scrub_cell_writes == 0
        assert report.retried_blocks == 0
        assert report.uncorrectable == ()

    def test_negative_retention_rejected(self, rng):
        device = ApproximateDevice(rng=rng)
        with pytest.raises(StorageError):
            device.store_and_read(_payload(1, rng),
                                  scheme_by_name("BCH-6"), t_days=-1.0)


class TestScrubbing:
    def test_scrub_accounting(self, rng):
        device = ApproximateDevice(
            cell_model=MLCCellModel(**DRIFTY), rng=rng,
            scrub=ScrubPolicy(interval_days=90.0))
        data = _payload(8, rng)
        _out, report = device.store_and_read(
            data, scheme_by_name("BCH-6"), t_days=400.0)
        assert report.retention_days == pytest.approx(400.0)
        assert report.drift_days == pytest.approx(40.0)
        assert report.scrub_count == 4
        assert report.scrub_cell_writes == 4 * report.cells_used

    def test_scrubbing_bounds_degradation(self):
        """At a decade, a 90-day scrub cadence reads like a 10-day-old
        write while the unscrubbed device reads a decade of drift."""
        scheme = scheme_by_name("BCH-6")
        data = _payload(120, np.random.default_rng(1))
        plain = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                  rng=np.random.default_rng(9))
        _o, rep_plain = plain.store_and_read(data, scheme, t_days=3650.0)
        scrubbed = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                     rng=np.random.default_rng(9),
                                     scrub=ScrubPolicy(interval_days=90.0))
        _o, rep_scrub = scrubbed.store_and_read(data, scheme, t_days=3650.0)
        assert rep_plain.failed_blocks > 0
        assert rep_scrub.failed_blocks < rep_plain.failed_blocks
        assert rep_scrub.drift_days == pytest.approx(3650.0 % 90.0)

    def test_unscrubbed_failures_monotone_in_retention(self):
        """Same seed => same uniforms, and the failure rate only climbs
        with drift, so the failed-block set is nested across the grid."""
        scheme = scheme_by_name("BCH-6")
        data = _payload(120, np.random.default_rng(2))
        failed = []
        for t in (90.0, 365.0, 1000.0, 3650.0):
            device = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                       rng=np.random.default_rng(3))
            _out, report = device.store_and_read(data, scheme, t_days=t)
            failed.append(report.failed_blocks)
        assert failed == sorted(failed)
        assert failed[-1] > failed[0]

    def test_raw_streams_account_scrubs_too(self, rng):
        device = ApproximateDevice(
            cell_model=MLCCellModel(**DRIFTY), rng=rng,
            scrub=ScrubPolicy(interval_days=90.0))
        _out, report = device.store_and_read(
            bytes(1000), scheme_by_name("None"), t_days=270.0)
        assert report.scrub_count == 3
        assert report.scrub_cell_writes == 3 * report.cells_used


class TestRetryLadder:
    def _aged_read(self, retries, seed=7, blocks=150):
        device = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                   rng=np.random.default_rng(seed),
                                   read_retries=retries)
        data = _payload(blocks, np.random.default_rng(4))
        return device.store_and_read(data, scheme_by_name("BCH-6"),
                                     t_days=3650.0)

    def test_retries_recover_blocks(self):
        _out, plain = self._aged_read(retries=0)
        _out, retried = self._aged_read(retries=3)
        assert plain.failed_blocks > 0
        assert plain.retried_blocks == 0
        # Block failure is ~a few percent here, so a single re-read
        # recovers the overwhelming majority of detected failures.
        assert retried.retried_blocks > 0
        assert retried.retry_successes > 0
        assert retried.failed_blocks < plain.failed_blocks

    def test_retry_accounting_is_consistent(self):
        _out, report = self._aged_read(retries=3)
        assert report.failed_blocks == (report.retried_blocks
                                        - report.retry_successes)
        assert report.retried_blocks <= report.retry_attempts \
            <= 3 * report.retried_blocks

    def test_exact_mode_retry_ladder(self):
        """Exact mode re-senses detected-uncorrectable blocks too.

        ~0.68 block-failure rate: marginal enough that a fresh sense
        often lands back under t errors, so the ladder visibly recovers.
        """
        noisy = MLCCellModel(write_sigma=0.035)
        scheme = scheme_by_name("BCH-6")
        data = _payload(25, np.random.default_rng(6))
        plain = ApproximateDevice(cell_model=noisy, exact=True,
                                  rng=np.random.default_rng(8))
        _o, rep_plain = plain.store_and_read(data, scheme)
        retried = ApproximateDevice(cell_model=noisy, exact=True,
                                    rng=np.random.default_rng(8),
                                    read_retries=4)
        _o, rep_retry = retried.store_and_read(data, scheme)
        assert rep_plain.failed_blocks > 0
        assert rep_retry.retried_blocks > 0
        assert rep_retry.retry_successes > 0
        assert rep_retry.failed_blocks < rep_plain.failed_blocks


class TestEscalation:
    def test_uncorrectable_ranges_cover_failed_blocks(self):
        scheme = scheme_by_name("BCH-6")
        data = _payload(120, np.random.default_rng(4))
        device = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                   rng=np.random.default_rng(7))
        _out, report = device.store_and_read(data, scheme, t_days=3650.0)
        assert report.failed_blocks > 0
        assert len(report.uncorrectable) == report.failed_blocks
        for entry in report.uncorrectable:
            assert isinstance(entry, UncorrectableBlock)
            assert entry.bit_start == entry.block * scheme.data_bits
            assert entry.bit_end == min(entry.bit_start + scheme.data_bits,
                                        8 * len(data))
            assert entry.bit_start < entry.bit_end <= 8 * len(data)

    def test_exact_mode_never_masks_uncorrectable(self):
        """A detected-uncorrectable block is escalated and its returned
        bits are the raw received data — not a cleaned-up guess."""
        noisy = MLCCellModel(write_sigma=0.06)
        scheme = scheme_by_name("BCH-6")
        data = _payload(30, np.random.default_rng(5))
        device = ApproximateDevice(cell_model=noisy, exact=True,
                                   rng=np.random.default_rng(11))
        out, report = device.store_and_read(data, scheme)
        assert report.failed_blocks > 0
        assert len(report.uncorrectable) == report.failed_blocks
        assert out != data

    def test_counters_published(self, rng):
        registry = obs_metrics.get_registry()
        before = registry.snapshot()["counters"]
        data = _payload(120, np.random.default_rng(4))
        scheme = scheme_by_name("BCH-6")
        # Scrubbed read: scrub counters move (and suppress failures).
        scrubbed = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                     rng=np.random.default_rng(7),
                                     scrub=ScrubPolicy(interval_days=90.0))
        scrubbed.store_and_read(data, scheme, t_days=3650.0)
        # Unscrubbed aged read with retries: retry + escalation counters.
        retried = ApproximateDevice(cell_model=MLCCellModel(**DRIFTY),
                                    rng=np.random.default_rng(7),
                                    read_retries=2)
        retried.store_and_read(data, scheme, t_days=3650.0)
        after = registry.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("storage_scrubs_total") == 40
        assert delta("storage_scrub_cell_writes_total") > 0
        assert delta("storage_read_retries_total") > 0


class TestCrossModeFlips:
    """Satellite: analytic failed blocks must carry the same surviving
    flip statistics exact mode produces, not a hardwired t+1."""

    def test_analytic_flips_match_exact_distribution(self):
        """At high raw BER the surviving-error count conditioned on
        failure sits well above t+1; the analytic mode must reproduce
        that, matching exact mode's per-failed-block flip mass."""
        noisy = MLCCellModel(write_sigma=0.055)
        scheme = scheme_by_name("BCH-6")

        def flip_stats(exact, seeds, blocks):
            flips = failed = 0
            for seed in seeds:
                device = ApproximateDevice(
                    cell_model=noisy, exact=exact,
                    rng=np.random.default_rng(seed))
                data = _payload(blocks, np.random.default_rng(seed + 100))
                _out, report = device.store_and_read(data, scheme)
                if exact:
                    # Strip miscorrection flips: they belong to a
                    # different (success-claiming) population.
                    if report.miscorrected_blocks:
                        continue
                flips += report.flipped_bits
                failed += report.failed_blocks
            return flips, failed

        exact_flips, exact_failed = flip_stats(True, range(6), blocks=25)
        analytic_flips, analytic_failed = flip_stats(
            False, range(40), blocks=120)
        assert exact_failed >= 10
        assert analytic_failed >= 50
        exact_mean = exact_flips / exact_failed
        analytic_mean = analytic_flips / analytic_failed
        # Both means estimate E[data-visible flips | block failed] on
        # the same substrate; they must agree within sampling noise and
        # both must exceed the naive floor of t+1 scaled to the data
        # portion (the old analytic model pinned exactly there).
        floor = (scheme.t + 1) * scheme.data_bits / scheme.block_bits
        assert analytic_mean > floor * 1.15
        assert analytic_mean == pytest.approx(exact_mean, rel=0.30)
