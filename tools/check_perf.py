#!/usr/bin/env python3
"""Bench perf gate: current bench run vs committed baseline.

Compares a bench output file (``BENCH_codec_throughput.json``,
``BENCH_batch_throughput.json``, ``BENCH_service_loadgen.json``, or
``BENCH_seek_latency.json``) against its committed snapshot under
``benchmarks/baselines/`` and fails when any throughput metric
regressed by more than the tolerance band (default 25%).

Raw fps is meaningless across machines, so every throughput metric is
first divided by its run's *yardstick* — a fixed numpy workload timed
by the same bench on the same host. The gate therefore checks::

    (current_fps / current_yardstick)
    ----------------------------------  >=  1 - tolerance
    (baseline_fps / baseline_yardstick)

for every (clip, metric) pair present in both files, and prints the
whole delta table either way. Which metrics are watched depends on the
file's ``exhibit`` field (see ``EXHIBIT_METRICS``); metrics present in
only one file are reported but never fail the gate (clips may be added
or renamed).

The batch-throughput exhibit additionally carries *absolute* floors:
``batch_speedup`` is a within-run ratio (both paths timed interleaved
on the same host), so it needs no yardstick and is gated against fixed
floors (``ABSOLUTE_FLOORS``) — the batched encode farm must stay >=
2.0x the per-clip path at width 32 and >= 1.5x at width 8, on any
host.

Usage::

    python tools/check_perf.py [--current BENCH_codec_throughput.json]
                               [--baseline benchmarks/baselines/codec_throughput.json]
                               [--tolerance 0.25]

To refresh the baseline after an intentional perf change, rerun the
bench at quick scale and copy its output over the baseline file.

Exits 0 when every shared metric is inside the band and every absolute
floor holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Per-clip throughput metrics the gate watches (higher is better),
#: keyed by the bench file's ``exhibit`` field.
EXHIBIT_METRICS = {
    "codec_throughput": ("encode_fps", "decode_fps"),
    "batch_throughput": ("clips_per_second",),
    "service_loadgen": ("ingest_clips_per_second", "reads_per_second"),
    "seek_latency": ("seeks_per_second",),
}

#: Absolute floors, keyed by exhibit then clip label: (metric, floor).
#: These metrics are within-run ratios — self-normalized, so they are
#: compared against a constant, not against the baseline file.
ABSOLUTE_FLOORS = {
    "batch_throughput": {
        "batch8": ("batch_speedup", 1.5),
        "batch32": ("batch_speedup", 2.0),
    },
    # Sustained ingest through the queue + batch path: ~20 clips/s on a
    # laptop; the floor only exists to catch an accidentally serialized
    # or quadratic ingest path, so it sits far below any healthy host.
    "service_loadgen": {
        "mixed": ("ingest_clips_per_second", 2.0),
    },
    # A random-access seek must be measurably cheaper than a whole-clip
    # read: speedup is timed interleaved within one run, so it is gated
    # against a constant. 2.0x at GOP 8 is deliberately conservative
    # for a 4-GOP clip (a seek touches ~1 of 4 GOPs).
    "seek_latency": {
        "gop8": ("seek_speedup", 2.0),
    },
}


def load_clips(path: Path) -> tuple[str, float, dict]:
    """(exhibit, yardstick ops/s, {label -> record}) from a bench file."""
    payload = json.loads(path.read_text())
    exhibit = payload.get("exhibit", "codec_throughput")
    if exhibit not in EXHIBIT_METRICS:
        raise ValueError(f"{path}: unknown exhibit {exhibit!r}")
    yardstick = float(payload["yardstick_ops_per_second"])
    if yardstick <= 0:
        raise ValueError(f"{path}: non-positive yardstick {yardstick}")
    return exhibit, yardstick, {clip["label"]: clip for clip in payload["clips"]}


def compare(current_path: Path, baseline_path: Path, tolerance: float) -> int:
    """Print the delta table; return the number of failing metrics."""
    exhibit, current_yard, current = load_clips(current_path)
    base_exhibit, baseline_yard, baseline = load_clips(baseline_path)
    if exhibit != base_exhibit:
        raise ValueError(
            f"exhibit mismatch: current {exhibit!r} vs baseline "
            f"{base_exhibit!r} — wrong --baseline for this bench file?"
        )
    metrics = EXHIBIT_METRICS[exhibit]
    floors = ABSOLUTE_FLOORS.get(exhibit, {})

    host_ratio = current_yard / baseline_yard
    floor_pct = 100 * (1 - tolerance)
    print(f"perf gate: {current_path} vs {baseline_path}")
    print(f"yardstick: current {current_yard:.1f} ops/s, baseline", end=" ")
    print(f"{baseline_yard:.1f} ops/s (host speed ratio {host_ratio:.3f})")
    print(f"tolerance: fail below {floor_pct:.0f}% of baseline (normalized)")
    print()

    header = ("clip", "metric", "baseline", "current", "normalized", "status")
    rows = []
    failures = 0
    for label in sorted(set(current) | set(baseline)):
        if label not in current or label not in baseline:
            if label not in current:
                where = "baseline"
            else:
                where = "current run"
            rows.append((label, "-", "-", "-", "-", f"only in {where} (ignored)"))
            continue
        for metric in metrics:
            base = float(baseline[label][metric])
            cur = float(current[label][metric])
            ratio = (cur / current_yard) / (base / baseline_yard)
            if ratio < 1 - tolerance:
                status = "FAIL"
                failures += 1
            else:
                status = "ok"
            delta = f"{100 * (ratio - 1):+.1f}%"
            rows.append((label, metric, f"{base:.1f}", f"{cur:.1f}", delta, status))

    # Absolute floors are checked on the current run only: the metric
    # is already a within-run ratio, so the baseline adds nothing.
    for label in sorted(floors):
        metric, floor = floors[label]
        if label not in current:
            rows.append((label, metric, "-", "-", "-", "FAIL (missing label)"))
            failures += 1
            continue
        cur = float(current[label][metric])
        if cur < floor:
            status = "FAIL"
            failures += 1
        else:
            status = "ok"
        rows.append(
            (label, metric, f">= {floor:.2f}", f"{cur:.2f}", "absolute", status)
        )

    widths = []
    for i in range(len(header)):
        widths.append(max(len(str(row[i])) for row in rows + [header]))
    rule = tuple("-" * w for w in widths)
    for row in [header, rule] + rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))

    print()
    if failures:
        print(f"perf gate FAILED: {failures} metric(s) regressed more than", end=" ")
        print(f"{100 * tolerance:.0f}% vs the committed baseline.")
        print("If the regression is intentional, refresh the baseline file", end=" ")
        print(f"({baseline_path}) from a fresh quick-scale bench run.")
    else:
        print("perf gate passed: all metrics within the tolerance band.")
    return failures


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("BENCH_codec_throughput.json"),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baselines/codec_throughput.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        parser.error(f"tolerance must be in (0, 1), got {args.tolerance}")
    return 1 if compare(args.current, args.baseline, args.tolerance) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
