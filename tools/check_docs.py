#!/usr/bin/env python3
"""Documentation lint: intra-repo Markdown links and public docstrings.

Two checks, both designed to fail CI loudly rather than let docs rot:

1. **Markdown links** — every relative link in every ``*.md`` file must
   point at a file (or directory) that exists in the repository.
   External links (``http(s)://``, ``mailto:``) and pure in-page
   anchors (``#...``) are not checked; a ``path#fragment`` link is
   checked for the path part only.
2. **Docstrings** — every public module, class, function, and method in
   the packages listed in :data:`DOCSTRING_PACKAGES` must carry a
   docstring. "Public" means the name (and, for methods, the owning
   class) does not start with ``_``.

Usage::

    python tools/check_docs.py [repo-root]

Exits 0 when clean, 1 with one ``file:line: problem`` per finding.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Packages whose public API must be fully docstringed.
DOCSTRING_PACKAGES = (
    "src/repro/obs",
    "src/repro/runtime",
    "src/repro/service",
    "src/repro/video/adversarial.py",
    "src/repro/analysis/scenarios.py",
)

#: Directories never scanned for Markdown files.
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             ".hypothesis"}

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no reference-style links, no angle brackets in targets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Inline/fenced code spans, removed before link extraction so example
#: snippets like ``[0](x)`` in code blocks are not treated as links.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_CODE = re.compile(r"`[^`]*`")


def iter_markdown(root: Path) -> Iterator[Path]:
    """Every tracked-looking Markdown file under ``root``."""
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_markdown_links(root: Path) -> List[str]:
    """``file:line: broken link`` findings for the whole repo."""
    problems: List[str] = []
    for md_path in iter_markdown(root):
        text = md_path.read_text(encoding="utf-8")
        stripped = _CODE.sub("", _FENCE.sub("", text))
        # Recompute line numbers against the original text: find each
        # surviving link's first occurrence instead of tracking offsets.
        for target in _LINK.findall(stripped):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:        # pure in-page anchor
                continue
            resolved = (md_path.parent / path_part).resolve()
            if resolved.exists():
                continue
            line = 1 + text[:text.find(f"({target})")].count("\n")
            problems.append(
                f"{md_path.relative_to(root)}:{line}: broken link "
                f"-> {target}")
    return problems


def _missing_docstrings(py_path: Path) -> Iterator[Tuple[int, str]]:
    """(line, description) for each public def/class without a docstring."""
    tree = ast.parse(py_path.read_text(encoding="utf-8"))
    if ast.get_docstring(tree) is None:
        yield 1, "module has no docstring"

    def walk(node: ast.AST, owner_public: bool,
             prefix: str) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                public = owner_public and not child.name.startswith("_")
                qualname = f"{prefix}{child.name}"
                if public and ast.get_docstring(child) is None:
                    kind = ("class" if isinstance(child, ast.ClassDef)
                            else "function")
                    yield child.lineno, f"{kind} {qualname} has no docstring"
                yield from walk(child, public, f"{qualname}.")

    yield from walk(tree, True, "")


def check_docstrings(root: Path) -> List[str]:
    """``file:line: missing docstring`` findings for DOCSTRING_PACKAGES."""
    problems: List[str] = []
    for package in DOCSTRING_PACKAGES:
        package_path = root / package
        if package_path.is_file():
            paths = [package_path]
        elif package_path.is_dir():
            paths = sorted(package_path.rglob("*.py"))
        else:
            problems.append(f"{package}: package path missing")
            continue
        for py_path in paths:
            for line, description in _missing_docstrings(py_path):
                problems.append(
                    f"{py_path.relative_to(root)}:{line}: {description}")
    return problems


def main(argv: List[str]) -> int:
    """Run both checks; print findings; exit non-zero on any."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    problems = check_markdown_links(root) + check_docstrings(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print("docs clean: links resolve, public API is docstringed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
