#!/usr/bin/env python
"""Fit the default rate/quality predictor weights.

Generates a synthetic suite spanning the codec's regimes (static,
panning, shaking, noisy, high-detail, fading), encodes every clip at a
CRF grid, and least-squares fits
:class:`repro.analysis.predictor.RateQualityPredictor` on probe
features from the CRF-24 encode. Prints the weights (paste into
``DEFAULT_PREDICTOR``) and the in-sample R^2 per head.

Run from the repo root::

    PYTHONPATH=src python tools/fit_predictor.py
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.predictor import (
    PROBE_CRF,
    RateQualityPredictor,
    probe_features,
)
from repro.codec.config import EncoderConfig
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.codec.stats import inspect_video
from repro.metrics.psnr import video_psnr
from repro.video.frame import VideoSequence

CRF_GRID = (16, 20, 24, 28, 32, 36)
FRAMES, HEIGHT, WIDTH = 10, 48, 64


def _suite():
    clips = []
    for seed in range(12):
        rng = np.random.default_rng(seed)
        base = rng.integers(0, 220, size=(HEIGHT, WIDTH), dtype=np.int32)
        detail = rng.integers(0, 35 + 15 * (seed % 3),
                              size=(HEIGHT, WIDTH))
        pan = seed % 4            # 0 = static .. 3 = fast pan
        noise = 3 * (seed % 3)    # temporal noise amplitude
        fade = 4 if seed % 5 == 0 else 0
        frames = []
        for t in range(FRAMES):
            frame = np.roll(base + detail, shift=pan * t, axis=1)
            if noise:
                frame = frame + rng.integers(-noise, noise + 1,
                                             size=frame.shape)
            frames.append(np.clip(frame + fade * t, 0, 255))
        clips.append(VideoSequence.from_array(
            np.stack(frames).astype(np.uint8)))
    return clips


def main() -> None:
    rows, log_bpp, psnr = [], [], []
    for clip in _suite():
        probe = Encoder(
            EncoderConfig(crf=PROBE_CRF)).encode(clip)
        stats = inspect_video(probe)
        pixels = clip.total_pixels
        for crf in CRF_GRID:
            encoded = Encoder(
                dataclasses.replace(EncoderConfig(), crf=crf)).encode(clip)
            decoded = Decoder().decode(encoded)
            target_stats = inspect_video(encoded)
            rows.append(probe_features(stats, pixels, crf))
            log_bpp.append(float(np.log2(
                target_stats.total_payload_bits / pixels)))
            psnr.append(float(video_psnr(clip, decoded)))
    predictor = RateQualityPredictor.fit(rows, log_bpp, psnr)

    matrix = np.asarray(rows)
    for name, weights, observed in (
            ("bits", predictor.bits_weights, np.asarray(log_bpp)),
            ("psnr", predictor.psnr_weights, np.asarray(psnr))):
        predicted = matrix @ np.asarray(weights)
        residual = observed - predicted
        r2 = 1.0 - residual.var() / observed.var()
        print(f"{name}_weights=(")
        for weight in weights:
            print(f"    {weight!r},")
        print(f")  # R^2 = {r2:.3f}, RMSE = {residual.std():.3f}")


if __name__ == "__main__":
    main()
