"""Substrate ablation: why 8 levels and a 3-month scrub (Section 6.2).

Beyond the paper's exhibits: sweeps the MLC design space — levels/cell
and scrub interval — and for each point reports the raw BER, the weakest
Figure 8 BCH scheme that still reaches precise storage (1e-16), and the
*net* density after paying that scheme's overhead. The paper's 8-level /
3-month substrate is the point where the ECC menu is cheapest per stored
bit; 16 levels at this noise exceed every menu scheme.
"""

from repro.analysis import format_table
from repro.analysis.experiments import run_substrate_ablation


def test_substrate_ablation(benchmark):
    points = benchmark.pedantic(run_substrate_ablation, rounds=1,
                                iterations=1)
    print()
    print(format_table(
        ("levels", "scrub", "raw BER", "scheme for 1e-16",
         "net bits/cell", "vs SLC"),
        [(p.levels, f"{p.scrub_days:.0f}d", f"{p.raw_ber:.2e}",
          p.required_scheme, f"{p.net_bits_per_cell:.2f}",
          f"{p.density_vs_slc:.2f}x") for p in points],
        title="MLC design space — density after mandatory ECC"))
    by_key = {(p.levels, p.scrub_days): p for p in points}
    # Lazier scrubbing raises the raw BER at fixed geometry.
    assert by_key[(8, 7.0)].raw_ber < by_key[(8, 365.0)].raw_ber
    # 8 levels @ 3 months beats 4 levels (density) at this noise.
    assert by_key[(8, 90.0)].net_bits_per_cell > \
        by_key[(4, 90.0)].net_bits_per_cell
    # 16 levels at the same programming noise are beyond the ECC menu.
    assert by_key[(16, 90.0)].net_bits_per_cell == 0.0
