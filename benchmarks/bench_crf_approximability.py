"""Section 7.3: higher video quality is (slightly) less approximable.

The paper's counter-intuitive finding: although higher-quality videos
carry less information per bit, their larger frames collect more flips
per frame at a fixed error rate, and under CABAC each flip still poisons
its whole frame — so lower CRF tolerates errors slightly worse.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.experiments import run_crf_approximability


def test_crf_approximability(benchmark, bench_video, scale):
    points = benchmark.pedantic(
        run_crf_approximability, args=(bench_video,),
        kwargs={"crfs": (18, 24, 30),
                "gop_size": min(12, scale.num_frames),
                "probe_rate": 1e-5, "runs": scale.runs,
                "rng": np.random.default_rng(48)},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ("crf", "payload bits", "clean PSNR (dB)", "loss @1e-5 (dB)"),
        [(p.crf, p.payload_bits, f"{p.clean_psnr_db:.2f}",
          f"{p.loss_at_probe_db:.3f}") for p in points],
        title="Section 7.3 — quality target vs approximability"))
    by_crf = {p.crf: p for p in points}
    # Lower CRF -> better quality and more bits...
    assert by_crf[18].clean_psnr_db > by_crf[30].clean_psnr_db
    assert by_crf[18].payload_bits > by_crf[30].payload_bits
    # ...and at a fixed per-bit error rate, at least as much damage
    # exposure (more expected flips per frame).
    expected_flips_18 = by_crf[18].payload_bits * 1e-5
    expected_flips_30 = by_crf[30].payload_bits * 1e-5
    assert expected_flips_18 > expected_flips_30
