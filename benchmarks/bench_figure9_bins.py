"""Figure 9: quality loss vs error rate across equal-storage bins.

Regenerates both panels: (a) the per-bin quality-degradation curves over
the error-probability axis, and (b) the maximum importance per bin
(log2). The paper's claim under validation: the order of the curves
follows the bin importance order.
"""

import numpy as np

from repro.analysis import format_table, run_figure9

RATES = (1e-8, 1e-6, 1e-4, 1e-2)


def test_figure9_bins(benchmark, bench_video, bench_config, scale,
                      bench_workers):
    num_bins = 8
    result = benchmark.pedantic(
        run_figure9, args=(bench_video, bench_config),
        kwargs={"num_bins": num_bins, "rates": RATES, "runs": scale.runs,
                "rng": np.random.default_rng(42),
                "workers": bench_workers},
        rounds=1, iterations=1)
    matrix = result.losses_matrix()
    print()
    print("Figure 9(a) — max quality loss (dB) per bin at each error rate")
    header = ["bin"] + [f"{rate:.0e}" for rate in RATES]
    rows = [[str(b)] + [f"{-matrix[b, r]:.2f}" for r in range(len(RATES))]
            for b in range(num_bins)]
    print(format_table(header, rows))
    print()
    print("Figure 9(b) — max importance per bin (log2)")
    print(format_table(("bin", "log2(max importance)"),
                       [(b, f"{v:.1f}")
                        for b, v in enumerate(result.max_importance_log2)]))
    # Shape checks: bin importance ascends; at the highest rate the top
    # bin hurts at least as much as the bottom bin.
    assert result.max_importance_log2 == sorted(result.max_importance_log2)
    assert matrix[-1, -1] >= matrix[0, -1] - 0.5
