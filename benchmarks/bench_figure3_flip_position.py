"""Figure 3: frame PSNR after a single bit flip vs affected MB position.

Regenerates the paper's surface plot as a numeric grid: one bit flip is
injected per macroblock position in inter-only P-frames and the damaged
frame's PSNR (against the clean decode) is averaged per position. The
paper's shape: damage shrinks toward the bottom-right corner because
coding errors only propagate forward in scan order.
"""

import numpy as np

from repro.analysis import format_table, run_figure3


def test_figure3_flip_position(benchmark, bench_video, bench_config, scale,
                               bench_workers):
    result = benchmark.pedantic(
        run_figure3, args=(bench_video, bench_config),
        kwargs={"max_frames": max(2, scale.runs),
                "workers": bench_workers},
        rounds=1, iterations=1)
    grid = result.psnr_grid
    print()
    print("Figure 3 — frame PSNR (dB) after one bit flip, by MB position")
    print("(rows = MB y from top, cols = MB x from left)")
    header = ["y\\x"] + [str(c) for c in range(grid.shape[1])]
    rows = [[str(r)] + [f"{grid[r, c]:.1f}" if np.isfinite(grid[r, c])
                        else "-" for c in range(grid.shape[1])]
            for r in range(grid.shape[0])]
    print(format_table(header, rows))
    top_left, bottom_right = result.corners()
    print(f"top-left {top_left:.1f} dB vs bottom-right {bottom_right:.1f} dB")
    assert bottom_right > top_left
    row_means = np.nanmean(grid, axis=1)
    assert row_means[-1] > row_means[0]
