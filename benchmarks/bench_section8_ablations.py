"""Section 8: encoder-knob ablations.

Regenerates the paper's discussion experiments: slices (limit coding
error reach at a storage cost), extra B-frames (more unreferenced bits,
more approximable but bigger), and CAVLC (more error-tolerant, ~10-15%
bigger than CABAC).
"""

import numpy as np

from repro.analysis import format_table, run_section8


def test_section8_ablations(benchmark, bench_video, scale):
    ablations = benchmark.pedantic(
        run_section8, args=(bench_video,),
        kwargs={"base_crf": 24, "gop_size": min(12, scale.num_frames),
                "probe_rate": 1e-4, "runs": scale.runs,
                "rng": np.random.default_rng(46)},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ("variant", "payload bits", "unreferenced %", "no-ECC classes %",
         "loss @1e-4 (dB)"),
        [(a.name, a.payload_bits,
          f"{100 * a.unreferenced_fraction:.1f}",
          f"{100 * a.low_class_fraction:.1f}",
          f"{a.loss_at_probe_db:.2f}") for a in ablations],
        title="Section 8 — encoder options vs approximability"))
    by_name = {a.name: a for a in ablations}
    baseline = by_name["baseline (CABAC, 1 slice)"]
    # The paper's directions:
    assert by_name["CAVLC"].payload_bits > baseline.payload_bits
    assert by_name["B-frames x2"].unreferenced_fraction \
        > baseline.unreferenced_fraction
    assert by_name["2 slices"].payload_bits >= baseline.payload_bits
