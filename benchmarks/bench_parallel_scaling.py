"""Parallel trial-engine scaling: trials/sec vs worker count.

Runs one fixed Monte Carlo campaign (a `quality_sweep` over every
payload bit of the bench video) serially and at 1/2/4/8 workers,
asserts that every configuration reproduces the serial results bitwise,
and writes the measured throughput trajectory to
``BENCH_parallel_scaling.json`` so regressions are trackable run over
run.

Every configuration is timed best-of-3: pool startup, page-cache state,
and scheduler noise all perturb a single run, and the minimum elapsed
time is the stable estimator of what the configuration can deliver.
The one-time dispatch cost of shipping the campaign context to a pool
(pickle bytes and seconds) is measured and recorded separately so
throughput regressions can be told apart from serialization bloat.

Speedup is only asserted when the host can actually deliver it: set
``REPRO_REQUIRE_SCALING=1`` on a machine with >= 4 physical cores to
enforce the >= 2.5x target at 4 workers. On starved CI runners or a
single-core box (flagged ``single_core_host`` in the payload) the
numbers are still measured and recorded.
"""

from __future__ import annotations

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table, quality_sweep
from repro.runtime import fork_available, session_cache

#: Worker counts probed after the serial baseline.
WORKER_COUNTS = (1, 2, 4, 8)
RATES = (1e-4, 1e-3, 1e-2)
#: Timing repeats per configuration; the fastest run is recorded.
REPEATS = 3
OUTPUT = Path("BENCH_parallel_scaling.json")


def _campaign(encoded, video, clean, runs, workers):
    return quality_sweep(encoded, video, clean, None, rates=RATES,
                         runs=runs, rng=np.random.default_rng(97),
                         workers=workers)


def _best_of(repeats, fn):
    """Fastest campaign of ``repeats`` runs, by wall-clock elapsed."""
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or (result.stats.elapsed_seconds
                            < best.stats.elapsed_seconds):
            best = result
    return best


def _dispatch_overhead(encoded, video, clean):
    """Pickle cost of the context a pool ships to every worker once.

    Mirrors the `quality_sweep` campaign context: the serialized
    stream, the reference frames, and the clean decode. Returned as
    (bytes, best-of-REPEATS seconds).
    """
    context = (encoded.serialize(), video, clean)
    blob = pickle.dumps(context)
    seconds = min(
        _timed(lambda: pickle.dumps(context)) for _ in range(REPEATS))
    return len(blob), seconds


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_parallel_scaling(benchmark, bench_video, bench_config, scale,
                          bench_workers):
    del bench_workers  # this exhibit sweeps the worker axis itself
    cache = session_cache()
    encoded = cache.encode(bench_video, bench_config)
    clean = cache.clean_decode(bench_video, bench_config)
    # Enough trials that per-trial decode work dominates one-time pool
    # startup: 48 trials at quick scale (~50 ms/trial).
    runs = max(16, 2 * scale.runs)

    serial = benchmark.pedantic(
        _campaign, args=(encoded, bench_video, clean, runs, 0),
        rounds=1, iterations=1)
    for _ in range(REPEATS - 1):
        repeat = _campaign(encoded, bench_video, clean, runs, 0)
        assert repeat == serial, "serial repeat results diverge"
        if repeat.stats.elapsed_seconds < serial.stats.elapsed_seconds:
            serial = repeat
    configurations = [(0, serial)]
    for workers in WORKER_COUNTS:
        if not fork_available():
            break

        def run(workers=workers):
            result = _campaign(encoded, bench_video, clean, runs, workers)
            # The engine's core guarantee: fan-out never changes the
            # numbers (RunStats is excluded from equality).
            assert result == serial, f"{workers}-worker results diverge"
            return result

        configurations.append((workers, _best_of(REPEATS, run)))

    pickle_bytes, pickle_seconds = _dispatch_overhead(
        encoded, bench_video, clean)

    serial_rate = serial.stats.trials_per_second
    rows = []
    records = []
    for workers, result in configurations:
        stats = result.stats
        speedup = stats.trials_per_second / serial_rate
        rows.append((("serial" if workers == 0 else str(workers)),
                     f"{stats.elapsed_seconds:.2f}",
                     f"{stats.trials_per_second:.2f}",
                     f"{speedup:.2f}x"))
        records.append({
            "workers": workers,
            "trials": stats.trials,
            "elapsed_seconds": stats.elapsed_seconds,
            "trials_per_second": stats.trials_per_second,
            "speedup_vs_serial": speedup,
            "started_unix": stats.started_unix,
        })
    print()
    print(format_table(("workers", "elapsed s", "trials/s", "speedup"),
                       rows, title="trial-engine parallel scaling "
                                   f"(best of {REPEATS})"))
    print(f"dispatch context: {pickle_bytes} pickle bytes, "
          f"{1e3 * pickle_seconds:.2f} ms to serialize")

    payload = {
        "exhibit": "parallel_scaling",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "quick"),
        "video": {"width": bench_video.width,
                  "height": bench_video.height,
                  "frames": len(bench_video)},
        "rates": list(RATES),
        "runs_per_rate": runs,
        "timing_repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "single_core_host": os.cpu_count() == 1,
        "platform": platform.platform(),
        "fork_available": fork_available(),
        "dispatch_pickle_bytes": pickle_bytes,
        "dispatch_pickle_seconds": pickle_seconds,
        "results": records,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.resolve()}")

    if os.environ.get("REPRO_REQUIRE_SCALING") == "1":
        by_workers = {r["workers"]: r for r in records}
        assert 4 in by_workers, "4-worker configuration did not run"
        assert by_workers[4]["speedup_vs_serial"] >= 2.5, (
            f"4-worker speedup {by_workers[4]['speedup_vs_serial']:.2f}x "
            f"is below the 2.5x target")
