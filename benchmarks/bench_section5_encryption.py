"""Section 5: encryption-mode compatibility with approximate storage.

Regenerates the requirements scorecard for ECB/CBC/OFB/CTR (Figure 7's
modes) from measurements on the real AES implementation, and runs the
end-to-end check of requirement #3: storing ciphertext approximately
must cost exactly as much quality as storing plaintext approximately.
"""

import numpy as np

from repro.analysis import format_table, run_section5
from repro.codec import EncoderConfig
from repro.core import ApproximateVideoStore
from repro.crypto import StreamEncryptor
from repro.metrics import video_psnr
from repro.storage import MLCCellModel
from repro.video import frames_equal


def test_section5_mode_scorecard(benchmark):
    verdicts = benchmark.pedantic(run_section5, rounds=1, iterations=1)
    print()
    print(format_table(
        ("mode", "privacy", "bounded prop.", "transparent", "compatible",
         "bit amplification"),
        [(name, v.privacy, v.bounded_propagation,
          v.approximation_transparent, v.compatible,
          f"{v.propagation.amplification:.1f}x")
         for name, v in verdicts.items()],
        title="Section 5 — AES mode requirements scorecard"))
    assert not verdicts["ECB"].compatible   # fails privacy
    assert not verdicts["CBC"].compatible   # fails transparency
    assert verdicts["OFB"].compatible
    assert verdicts["CTR"].compatible


def test_section5_end_to_end_transparency(benchmark, bench_suite, scale):
    """Same device noise, with and without CTR encryption -> identical
    decoded output (requirement #3, measured through the full stack)."""
    name, video = bench_suite[0]
    noisy_cells = MLCCellModel(write_sigma=0.05)

    def run():
        config = EncoderConfig(crf=24, gop_size=min(12, scale.num_frames))
        plain_store = ApproximateVideoStore(
            config=config, cell_model=noisy_cells)
        cipher_store = ApproximateVideoStore(
            config=config, cell_model=noisy_cells,
            encryptor=StreamEncryptor(key=bytes(range(16)),
                                      master_iv=bytes(16)))
        plain = plain_store.put(video)
        cipher = cipher_store.put(video)
        out_plain = plain_store.read(plain, rng=np.random.default_rng(9))
        out_cipher = cipher_store.read(cipher, rng=np.random.default_rng(9))
        return video, out_plain, out_cipher

    raw, out_plain, out_cipher = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    psnr_plain = video_psnr(raw, out_plain)
    psnr_cipher = video_psnr(raw, out_cipher)
    print()
    print(format_table(("variant", "PSNR (dB)"), [
        (f"plaintext storage ({name})", f"{psnr_plain:.3f}"),
        (f"CTR-encrypted storage ({name})", f"{psnr_cipher:.3f}"),
    ], title="Requirement #3 — approximation transparency of encryption"))
    assert frames_equal(out_plain, out_cipher)
