"""Table 1: error-correction assignment to importance classes.

Runs the paper's budget-driven optimizer on measured Figure 10 curves
(0.3 dB budget, storage-proportional shares) and prints the resulting
class->scheme table next to the paper's published Table 1.
"""

import numpy as np

from repro.analysis import format_table, run_figure10_suite, run_table1
from repro.core import PAPER_TABLE1, assign_schemes_conservative

RATES = (1e-8, 1e-6, 1e-4, 1e-3, 1e-2)


def test_table1_assignment(benchmark, bench_suite, bench_config, scale):
    def derive():
        fig10 = run_figure10_suite(bench_suite, bench_config, rates=RATES,
                                   runs=scale.runs,
                                   rng=np.random.default_rng(44))
        return fig10, run_table1(fig10, budget_db=0.3)

    fig10, assignment = benchmark.pedantic(derive, rounds=1, iterations=1)
    print()
    print(format_table(
        ("importance classes", "scheme", "error rate", "overhead %"),
        [(r["classes"], r["scheme"], r["error_rate"],
          f"{r['overhead_percent']:.2f}") for r in assignment.rows()],
        title="Table 1 (derived from measured curves, 0.3 dB budget)"))
    print()
    conservative = assign_schemes_conservative(fig10.curves,
                                               fig10.storage_fractions)
    print(format_table(
        ("importance classes", "scheme"),
        [(r["classes"], r["scheme"]) for r in conservative.rows()],
        title="Section 7.2.1 alternative (approximate only where it "
              "beats compression)"))
    print()
    print(format_table(
        ("importance classes", "scheme"),
        [(r["classes"], r["scheme"]) for r in PAPER_TABLE1.rows()],
        title="Table 1 (paper, for reference)"))
    # The conservative strategy never weakens below the budget one by
    # more than the menu allows, and both ladders strengthen.
    conservative_strengths = [conservative.scheme_for_class(i).t
                              for i in fig10.class_indices]
    assert conservative_strengths == sorted(conservative_strengths)
    # Shape: schemes strengthen with importance; the weakest class gets
    # one of the cheap options.
    strengths = [assignment.scheme_for_class(i).t
                 for i in fig10.class_indices]
    assert strengths == sorted(strengths)
    assert assignment.scheme_for_class(fig10.class_indices[0]).t <= 7
