"""Batched encode-farm throughput: stacked clips vs one-at-a-time.

Times the same 32-clip corpus two ways — per-clip
(``Encoder.encode`` + ``Decoder.decode`` per clip, the pre-farm
pipeline) and batched (``encode_batch_with_recon`` at widths 8, 16,
and 32, which stacks all clips through each vectorized stage and
reuses the encoder's closed-loop reconstruction instead of
re-decoding) — and writes ``BENCH_batch_throughput.json``.  The
committed snapshot ``benchmarks/baselines/batch_throughput.json`` plus
``tools/check_perf.py`` gate two things in CI:

* yardstick-normalized ``clips_per_second`` per label (regression band,
  like the codec-throughput gate);
* the absolute ``batch_speedup`` floor — the ratio is self-normalized
  (both paths timed on the same host in the same run), so it is gated
  host-independently: >= 2.0x at width 32, >= 1.5x at width 8.

The two paths are interleaved within each timing repeat (per-clip
pass, then each batch width, repeated) so cache and scheduler noise
lands on both alternatives equally; each label keeps its best repeat.
Before any timing, the batched streams are asserted byte-identical to
the per-clip streams — the farm's speed is only interesting because it
changes nothing.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.codec import EncoderConfig
from repro.codec.batch import encode_batch_with_recon
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.video.frame import VideoSequence

from bench_codec_throughput import yardstick_rate

OUTPUT = Path("BENCH_batch_throughput.json")

#: Corpus geometry per scale: (clips, width, height, frames). Many
#: small clips — the Monte Carlo campaign workload the farm exists
#: for — not a few large ones.
_CORPUS = {
    "quick": (32, 48, 32, 8),
    "full": (32, 48, 32, 24),
}

#: Timing repeats (best-of) per scale.
_REPEATS = {"quick": 5, "full": 5}

#: Batch widths measured; the corpus splits evenly into each.
BATCH_WIDTHS = (8, 16, 32)

_CONFIG = EncoderConfig(crf=24, gop_size=8)


def _noise_clip(seed, width, height, frames):
    """Panning sensor-noise content: dense residuals, real motion."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 200, size=(height, width), dtype=np.int32)
    stack = []
    for t in range(frames):
        frame = np.clip(
            base + rng.integers(-20, 20, size=base.shape) + 10 * t % 50,
            0, 255)
        stack.append(np.roll(frame, shift=t, axis=1))
    return VideoSequence.from_array(np.stack(stack).astype(np.uint8))


def _corpus(scale_name):
    """A noisy-sensor capture campaign: many small panning-noise clips.

    This is the paper's approximate-storage workload shape — dense
    residual content from one sensor, arriving as a stream of short
    uniform clips — and the shape the farm batches best: every clip in
    a batch reaches the same coding decisions at the same time, so the
    stacked kernels stay fully occupied.
    """
    clips, width, height, frames = _CORPUS[scale_name]
    return [_noise_clip(200 + index, width, height, frames)
            for index in range(clips)]


def _per_clip_pass(videos):
    """The pre-farm pipeline: encode then decode every clip."""
    streams = []
    for video in videos:
        encoded = Encoder(_CONFIG).encode(video)
        list(Decoder().decode(encoded))
        streams.append(encoded)
    return streams


def _batched_pass(videos, width):
    """The farm pipeline: stacked encode with closed-loop recon."""
    streams = []
    for start in range(0, len(videos), width):
        encoded, _recon = encode_batch_with_recon(
            videos[start:start + width], _CONFIG)
        streams.extend(encoded)
    return streams


def test_batch_throughput(scale):
    del scale  # corpus geometry is fixed per REPRO_BENCH_SCALE below
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    repeats = _REPEATS[scale_name]
    videos = _corpus(scale_name)
    yardstick = yardstick_rate()

    # Correctness first: the batched path must produce the exact bytes
    # the per-clip path produces, at every width.
    reference = [s.serialize() for s in _per_clip_pass(videos)]
    for width in BATCH_WIDTHS:
        batched = [s.serialize() for s in _batched_pass(videos, width)]
        assert batched == reference, (
            f"width-{width} batched streams diverge from per-clip")

    # Interleaved best-of timing: each repeat runs every alternative.
    labels = ["per-clip"] + [f"batch{w}" for w in BATCH_WIDTHS]
    best = {label: float("inf") for label in labels}
    for _ in range(repeats):
        start = time.perf_counter()
        _per_clip_pass(videos)
        best["per-clip"] = min(best["per-clip"],
                               time.perf_counter() - start)
        for width in BATCH_WIDTHS:
            start = time.perf_counter()
            _batched_pass(videos, width)
            best[f"batch{width}"] = min(best[f"batch{width}"],
                                        time.perf_counter() - start)

    num_clips = len(videos)
    frames = len(videos[0])
    rows = []
    records = []
    for label in labels:
        seconds = best[label]
        speedup = best["per-clip"] / seconds
        rows.append((label, f"{seconds:.2f}",
                     f"{num_clips / seconds:.2f}",
                     f"{num_clips * frames / seconds:.1f}",
                     f"{speedup:.2f}x"))
        record = {
            "label": label,
            "clips": num_clips,
            "frames_per_clip": frames,
            "seconds": seconds,
            "clips_per_second": num_clips / seconds,
            "frames_per_second": num_clips * frames / seconds,
            "batch_speedup": speedup,
        }
        if label.startswith("batch"):
            record["batch_size"] = int(label[len("batch"):])
        records.append(record)

    print()
    print(
        format_table(
            ("path", "seconds", "clips/s", "frames/s", "speedup"),
            rows,
            title=f"batched encode-farm throughput (best of {repeats})",
        )
    )
    print(f"yardstick: {yardstick:.1f} ops/s")

    payload = {
        "exhibit": "batch_throughput",
        "scale": scale_name,
        "config": {"crf": _CONFIG.crf, "gop_size": _CONFIG.gop_size},
        "corpus": {"clips": num_clips,
                   "width": videos[0].width,
                   "height": videos[0].height,
                   "frames": frames},
        "yardstick_ops_per_second": yardstick,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "clips": records,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.resolve()}")
