"""Figure 10: cumulative quality loss per importance class + storage.

Regenerates (a) cumulative quality-loss curves — class i's curve exposes
every MB of importance <= 2^i to the swept error rate — and (b) the
cumulative storage occupied per class. These curves are the direct input
to the Table 1 assignment.
"""

import numpy as np

from repro.analysis import format_table, run_figure10

RATES = (1e-8, 1e-6, 1e-4, 1e-2)


def test_figure10_classes(benchmark, bench_video, bench_config, scale,
                          bench_workers):
    result = benchmark.pedantic(
        run_figure10, args=(bench_video, bench_config),
        kwargs={"rates": RATES, "runs": scale.runs,
                "rng": np.random.default_rng(43),
                "workers": bench_workers},
        rounds=1, iterations=1)
    print()
    print("Figure 10(a) — cumulative quality loss (dB), classes <= i exposed")
    header = ["class i"] + [f"{rate:.0e}" for rate in RATES]
    rows = []
    for curve in result.curves:
        rows.append([str(curve.class_index)]
                    + [f"{curve.loss_at(rate):.3f}" for rate in RATES])
    print(format_table(header, rows))
    print()
    print("Figure 10(b) — cumulative storage per importance class")
    print(format_table(
        ("class i", "cumulative storage %"),
        [(c, f"{100 * s:.1f}") for c, s in
         zip(result.class_indices, result.cumulative_storage)]))
    # Shapes: storage cumulative and complete; loss grows with class at
    # the top rate (more exposed bits can only hurt more).
    assert result.cumulative_storage == sorted(result.cumulative_storage)
    assert abs(result.cumulative_storage[-1] - 1.0) < 1e-9
    top_rate_losses = [curve.loss_at(RATES[-1]) for curve in result.curves]
    assert top_rate_losses[-1] >= top_rate_losses[0] - 0.5
