"""GOP-size ablation: I-frame checkpoints vs storage (Section 2.3.1).

The paper's background states the trade this bench measures: encoders
insert periodic I-frames "as checkpoints to refresh the stream and limit
the propagation of eventual errors, at the expense of extra storage".
Shorter GOPs pay in bits (I-frames compress worst) and are repaid in
bounded importance — no bit flip can damage past the next checkpoint.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.experiments import run_gop_ablation


def test_gop_ablation(benchmark, bench_video, scale):
    points = benchmark.pedantic(
        run_gop_ablation, args=(bench_video,),
        kwargs={"gop_sizes": (4, 6, 12), "crf": 24,
                "probe_rate": 1e-4, "runs": scale.runs,
                "rng": np.random.default_rng(52)},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ("gop size", "payload bits", "max importance (MBs)",
         "loss @1e-4 (dB)"),
        [(p.gop_size, p.payload_bits, f"{p.max_importance:.0f}",
          f"{p.loss_at_probe_db:.2f}") for p in points],
        title="I-frame period: containment vs storage"))
    by_gop = {p.gop_size: p for p in points}
    # Short GOPs: more bits, bounded importance.
    assert by_gop[4].payload_bits > by_gop[12].payload_bits
    assert by_gop[4].max_importance < by_gop[12].max_importance
