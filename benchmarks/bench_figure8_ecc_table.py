"""Figure 8: error-correction overhead and capability per BCH scheme.

Regenerates both axes of the paper's Figure 8 — storage overhead (%) and
uncorrectable error rate at a raw BER of 1e-3 over 512-bit blocks — and
additionally cross-checks the overheads against the *real* BCH codec's
generator polynomials (not just the 10*t/512 formula).
"""

from repro.analysis import format_table, run_figure8
from repro.storage import get_bch_code


def _generate():
    rows = run_figure8()
    for row in rows:
        code = get_bch_code(row["t"])
        row["real_parity_bits"] = code.parity_bits
    return rows


def test_figure8_table(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)
    print()
    print(format_table(
        ("scheme", "overhead %", "uncorrectable rate", "parity bits (BCH)"),
        [(r["scheme"], r["overhead_percent"], r["uncorrectable_rate"],
          r["real_parity_bits"]) for r in rows],
        title="Figure 8 — ECC overhead (left axis) and capability (right axis)",
    ))
    by_scheme = {r["scheme"]: r for r in rows}
    assert abs(by_scheme["BCH-6"]["overhead_percent"] - 11.7) < 0.1
    assert abs(by_scheme["BCH-16"]["overhead_percent"] - 31.3) < 0.1
    assert by_scheme["BCH-16"]["uncorrectable_rate"] < 1e-16
    for row in rows:
        assert row["real_parity_bits"] == row["t"] * 10
