"""Single-thread codec throughput: encode/decode fps per resolution.

Times the vectorized codec on fixed synthetic clips at several
resolutions, records the per-stage breakdown from the encoder's and
decoder's StageClock aggregates, and writes the whole trajectory to
``BENCH_codec_throughput.json``.  The committed snapshot
``benchmarks/baselines/codec_throughput.json`` plus
``tools/check_perf.py`` turn that file into a CI perf gate: a >25%
yardstick-normalized drop in any throughput metric fails the build.

Because absolute fps varies wildly across machines, the payload also
carries a *yardstick*: a fixed numpy workload (int16 absolute-diff
reductions plus a float64 matmul, the codec's own op mix) measured on
the same host.  Comparisons divide fps by the yardstick rate so the
gate tracks codec efficiency, not runner hardware.

Scale comes from ``REPRO_BENCH_SCALE`` (quick/full, see conftest.py).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.codec import EncoderConfig
from repro.codec.decoder import Decoder
from repro.codec.encoder import Encoder
from repro.obs import trace
from repro.video import SceneConfig, synthesize_scene

OUTPUT = Path("BENCH_codec_throughput.json")

#: (label, width, height, frames) per scale.  Clips are synthesized with
#: a pinned seed so every run times identical work.
_RESOLUTIONS = {
    "quick": (
        ("qcif-ish", 96, 64, 8),
        ("cif-ish", 160, 96, 6),
    ),
    "full": (
        ("qcif-ish", 96, 64, 24),
        ("cif-ish", 160, 96, 16),
        ("hd-ish", 256, 144, 10),
    ),
}

#: Timing repeats (best-of) per scale.
_REPEATS = {"quick": 3, "full": 5}

_CONFIG = EncoderConfig(crf=24, gop_size=8)

#: Pre-vectorization (scalar codec) throughput on the quick-scale
#: clips, measured on the dev host with this same harness in paired,
#: alternating runs (medians of 3 rounds; host yardstick ~2455 ops/s at
#: measurement time). Used to report speedup-vs-seed; the CI gate
#: instead compares against benchmarks/baselines/codec_throughput.json.
SEED_REFERENCE = {
    "qcif-ish": {"encode_fps": 15.3, "decode_fps": 176.3},
    "cif-ish": {"encode_fps": 6.45, "decode_fps": 122.0},
}


def _best_of(repeats, fn):
    """Best (minimum) wall-clock seconds of ``repeats`` calls to fn."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def yardstick_rate(repeats: int = 3) -> float:
    """Relative host speed on the codec's op mix, in arbitrary ops/s.

    Runs a fixed workload — int16 absolute-difference reductions (the
    SAD kernels) and a float64 matmul (the batched rect-SAD product) —
    and returns iterations/second.  Dividing codec fps by this rate
    cancels most host-speed variation, so a committed baseline from one
    machine remains comparable on another.
    """
    rng = np.random.default_rng(2017)
    a = rng.integers(0, 256, size=(64, 4096), dtype=np.int16)
    b = rng.integers(0, 256, size=(64, 4096), dtype=np.int16)
    m = rng.random((4096, 16))
    mask = rng.random((16, 41))

    def _workload():
        for _ in range(40):
            np.abs(a - b).sum(axis=1, dtype=np.int32)
            m @ mask
        return None

    _workload()  # warm caches before timing
    seconds, _ = _best_of(repeats, _workload)
    return 40 / seconds


def _stage_breakdown(video, encoded):
    """Per-stage seconds from one traced encode + decode."""
    tracer = trace.enable()
    try:
        Encoder(_CONFIG).encode(video)
        list(Decoder().decode(encoded))
        totals = {}
        for record in tracer.drain():
            if record.attrs.get("aggregate"):
                name = record.name
                totals[name] = totals.get(name, 0.0) + record.duration
    finally:
        trace.disable()
    return {name: round(s, 6) for name, s in sorted(totals.items())}


def test_codec_throughput(scale):
    del scale  # geometry is fixed per REPRO_BENCH_SCALE below
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    repeats = _REPEATS[scale_name]
    yardstick = yardstick_rate()

    rows = []
    clips = []
    for label, width, height, frames in _RESOLUTIONS[scale_name]:
        scene = SceneConfig(
            width=width,
            height=height,
            num_frames=frames,
            seed=5,
            num_objects=3,
        )
        video = synthesize_scene(scene)
        encoder = Encoder(_CONFIG)
        encode_s, encoded = _best_of(repeats, lambda: encoder.encode(video))
        decode_s, _ = _best_of(repeats, lambda: list(Decoder().decode(encoded)))
        encode_fps = frames / encode_s
        decode_fps = frames / decode_s
        mbs = (width // 16) * (height // 16) * frames
        if scale_name == "quick":
            seed = SEED_REFERENCE.get(label)
        else:
            seed = None
        if seed:
            speedup = f"{encode_fps / seed['encode_fps']:.2f}x"
        else:
            speedup = "-"
        rows.append(
            (
                label,
                f"{width}x{height}",
                str(frames),
                f"{encode_fps:.1f}",
                f"{decode_fps:.1f}",
                f"{mbs / encode_s:.0f}",
                speedup,
            )
        )
        clip = {
            "label": label,
            "width": width,
            "height": height,
            "frames": frames,
            "encode_seconds": encode_s,
            "decode_seconds": decode_s,
            "encode_fps": encode_fps,
            "decode_fps": decode_fps,
            "encode_mb_per_second": mbs / encode_s,
            "stream_bytes": len(encoded.serialize()),
            "stages": _stage_breakdown(video, encoded),
        }
        if seed:
            clip["seed_encode_fps"] = seed["encode_fps"]
            clip["encode_speedup_vs_seed"] = encode_fps / seed["encode_fps"]
            clip["decode_speedup_vs_seed"] = decode_fps / seed["decode_fps"]
        clips.append(clip)

    header = ("clip", "size", "frames", "enc fps", "dec fps", "enc MB/s", "vs seed")
    print()
    print(format_table(header, rows, title="single-thread codec throughput"))
    print(f"yardstick: {yardstick:.1f} ops/s")

    payload = {
        "exhibit": "codec_throughput",
        "scale": scale_name,
        "config": {"crf": _CONFIG.crf, "gop_size": _CONFIG.gop_size},
        "yardstick_ops_per_second": yardstick,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "clips": clips,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.resolve()}")
