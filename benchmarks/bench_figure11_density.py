"""Figure 11: overall storage gains — the paper's headline exhibit.

Regenerates the density/quality points for the three designs (uniform
correction, VideoApp's variable correction, ideal overhead-free
correction) across CRF settings, plus the headline metrics: ECC-overhead
reduction (paper: 47%), density gain over uniform MLC (paper: 12.5%),
density vs SLC (paper: 2.57x), and worst quality loss (paper: < 0.3 dB).
"""

import numpy as np

from repro.analysis import format_table, run_figure11


def test_figure11_density(benchmark, bench_suite, scale):
    result = benchmark.pedantic(
        run_figure11, args=(bench_suite,),
        kwargs={"crfs": scale.crfs, "runs": scale.runs,
                "gop_size": min(12, scale.num_frames),
                "rng": np.random.default_rng(45)},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ("design", "crf", "cells/pixel", "PSNR (dB)"),
        [(p.design, p.crf, f"{p.cells_per_pixel:.4f}", f"{p.psnr_db:.2f}")
         for p in sorted(result.points, key=lambda p: (p.crf, p.design))],
        title="Figure 11 — storage density vs quality"))
    print()
    print(format_table(("headline metric", "measured", "paper"), [
        ("ECC overhead reduction",
         f"{100 * result.ecc_overhead_reduction:.1f}%", "47%"),
        ("density gain vs uniform MLC",
         f"{100 * result.density_gain_vs_uniform:.1f}%", "12.5%"),
        ("density vs SLC", f"{result.density_gain_vs_slc:.2f}x", "2.57x"),
        ("worst quality loss",
         f"{result.worst_quality_loss_db:.3f} dB", "< 0.3 dB"),
    ]))
    # Shape: the win directions of the paper.
    for crf in scale.crfs:
        cells = {p.design: p.cells_per_pixel for p in result.points
                 if p.crf == crf}
        assert cells["ideal"] < cells["variable"] < cells["uniform"]
    assert result.ecc_overhead_reduction > 0.2
    assert result.density_gain_vs_uniform > 0.05
    assert result.density_gain_vs_slc > 2.2
    assert result.worst_quality_loss_db < 0.5
