"""Serving under decay: loadgen throughput, latency, and degradation.

Runs the frozen ``repro loadgen`` recipe against the service front-end
(the same plan CI's ``service-smoke`` job replays for digest equality)
and writes ``BENCH_service_loadgen.json``. The committed snapshot
``benchmarks/baselines/service_loadgen.json`` plus
``tools/check_perf.py`` gate:

* yardstick-normalized ``ingest_clips_per_second`` and
  ``reads_per_second`` for the mixed phase (regression band);
* an **absolute floor** on ingest throughput — the queue + batch
  ingest path must sustain at least 2 clips/s on any host, a
  deliberately conservative bound (~10x below a typical laptop) that
  still catches an accidentally serialized or quadratic ingest path.

The run is repeated (best-of) for stable timing; every repeat must
report the *same* run digest — asserted before any number is recorded,
so a nondeterministic service can never publish a throughput exhibit.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.service import run_loadgen

from bench_codec_throughput import yardstick_rate

OUTPUT = Path("BENCH_service_loadgen.json")

#: The frozen loadgen recipe per scale:
#: (clients, ops, seed, read_fraction, read_retries).
_RECIPES = {
    "quick": (4, 12, 0, 0.5, 0),
    "full": (8, 48, 0, 0.5, 0),
}

#: Timing repeats (best-of) per scale.
_REPEATS = {"quick": 3, "full": 3}


def test_service_loadgen(scale):
    del scale  # recipe geometry is fixed per REPRO_BENCH_SCALE below
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    clients, ops, seed, read_fraction, read_retries = _RECIPES[scale_name]
    repeats = _REPEATS[scale_name]
    yardstick = yardstick_rate()

    best = None
    digests = set()
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_loadgen(clients=clients, ops=ops, seed=seed,
                             read_fraction=read_fraction,
                             read_retries=read_retries)
        wall = time.perf_counter() - start
        digests.add(report.run_digest)
        if best is None or wall < best[1]:
            best = (report, wall)
    assert len(digests) == 1, (
        f"loadgen is nondeterministic: {len(digests)} distinct run "
        f"digests across {repeats} identical runs")
    report, _ = best

    reads_per_second = (report.read_count / report.elapsed_s
                        if report.elapsed_s > 0 else 0.0)
    record = {
        "label": "mixed",
        "clients": clients,
        "ops": ops,
        "ingest_clips_per_second": report.ingest_clips_per_second,
        "reads_per_second": reads_per_second,
        "read_p50_ms": report.read_p50_ms,
        "read_p99_ms": report.read_p99_ms,
        "outcomes": dict(sorted(report.outcomes.items())),
    }

    print()
    print(format_table(
        ("metric", "value"),
        [("ingest clips/s", f"{report.ingest_clips_per_second:.2f}"),
         ("reads/s", f"{reads_per_second:.2f}"),
         ("read p50", f"{report.read_p50_ms:.1f} ms"),
         ("read p99", f"{report.read_p99_ms:.1f} ms"),
         ("run digest", report.run_digest[:16])],
        title=f"service loadgen, {clients} clients x {ops} ops "
              f"(best of {repeats})"))
    print(format_table(
        ("t (days)", "outcomes", "mean PSNR dB", "raw read"),
        [("nominal" if p["t_days"] is None else f"{p['t_days']:g}",
          ", ".join(f"{k}={v}" for k, v in sorted(p["outcomes"].items())),
          "-" if p["psnr_db"] is None else f"{p['psnr_db']:.2f}",
          "ok" if p["raw_ok"] else f"corrupt ({p['raw_flipped_bits']})")
         for p in report.degradation],
        title="degradation curve"))
    print(f"yardstick: {yardstick:.1f} ops/s")

    payload = {
        "exhibit": "service_loadgen",
        "scale": scale_name,
        "recipe": {"clients": clients, "ops": ops, "seed": seed,
                   "read_fraction": read_fraction,
                   "read_retries": read_retries},
        "run_digest": report.run_digest,
        "degradation": report.degradation,
        "yardstick_ops_per_second": yardstick,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "clips": [record],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.resolve()}")
