"""Section 4.3.1: VideoApp analysis cost relative to encoding.

The paper reports a 2-3% time overhead for the dependency analysis as an
encoder post-processing step. This bench times both phases on the probe
video; our trace-driven implementation lands well under that bound.
"""

from repro.analysis import format_table, run_overhead


def test_overhead_analysis(benchmark, bench_video, bench_config):
    result = benchmark.pedantic(run_overhead,
                                args=(bench_video, bench_config),
                                rounds=1, iterations=1)
    print()
    print(format_table(("phase", "seconds"), [
        ("encoding", f"{result.encode_seconds:.3f}"),
        ("VideoApp analysis", f"{result.analysis_seconds:.4f}"),
        ("ratio", f"{100 * result.ratio:.2f}% (paper: 2-3%)"),
    ], title="Section 4.3.1 — analysis time overhead"))
    assert result.ratio < 0.10
