"""Random-access seek latency: partial decode must beat whole-clip.

Runs a frozen seek schedule against a nominal-age
:class:`~repro.service.store.VideoObjectStore` (GOP cache disabled, so
every seek pays the real partial-read + partial-decode cost) and writes
``BENCH_seek_latency.json``. The committed snapshot
``benchmarks/baselines/seek_latency.json`` plus ``tools/check_perf.py``
gate:

* yardstick-normalized ``seeks_per_second`` (regression band) — the
  end-to-end rate of `get_frame` including shard range reads, CTR
  counter-jump decryption, merge, and GOP decode;
* an **absolute floor** on ``seek_speedup`` at GOP 8 — one seek must
  run >= 2x faster than one whole-clip read of the same object. Both
  paths are timed interleaved on the same host, so the ratio needs no
  yardstick; it is the PR's acceptance criterion ("partial decode is
  provably cheaper than whole-clip decode at GOP >= 8") as a number.

Each repeat's deterministic outputs (outcomes, per-seek PSNR, byte
accounting) are hashed and must agree across repeats — a
nondeterministic seek path can never publish a latency exhibit.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.codec import EncoderConfig
from repro.service import VideoObjectStore
from repro.video import SceneConfig, synthesize_scene

from bench_codec_throughput import yardstick_rate

OUTPUT = Path("BENCH_seek_latency.json")

#: Frozen recipe per scale:
#: (width, height, frames, gop_sizes, seeks, seed).
_RECIPES = {
    "quick": (64, 48, 32, (8, 4), 12, 5),
    "full": (96, 64, 48, (8, 4), 24, 5),
}

#: Timing repeats (best-of) per scale.
_REPEATS = {"quick": 3, "full": 3}


def _run_once(video, gop_size, seeks, seed):
    """One timed pass; returns (record dict, deterministic digest)."""
    store = VideoObjectStore(
        config=EncoderConfig(crf=28, gop_size=gop_size, bframes=1),
        seek_cache=0)
    object_id = store.put("bench", video)
    record = store.record("bench", object_id)
    rng = np.random.default_rng(seed)
    displays = rng.integers(0, record.frames, size=seeks)
    draw_seeds = rng.integers(0, 2**63 - 1, size=seeks + 1)

    determinism = []
    seek_ms = []
    for which in range(seeks):
        begin = time.perf_counter()
        result = store.get_frame(
            "bench", object_id, int(displays[which]),
            rng=np.random.default_rng(int(draw_seeds[which])))
        seek_ms.append((time.perf_counter() - begin) * 1000.0)
        determinism.append({
            "display": int(displays[which]),
            "outcome": result.outcome,
            "psnr_db": (None if result.psnr_db is None
                        else round(float(result.psnr_db), 3)),
            "frames_decoded": result.frames_decoded,
            "bytes_read": result.bytes_read,
        })
    begin = time.perf_counter()
    full = store.get("bench", object_id,
                     rng=np.random.default_rng(int(draw_seeds[seeks])))
    full_ms = (time.perf_counter() - begin) * 1000.0
    determinism.append({"full_outcome": full.outcome})

    mean_seek = float(np.mean(seek_ms))
    rec = {
        "label": f"gop{gop_size}",
        "gop_size": gop_size,
        "seeks": seeks,
        "seeks_per_second": 1000.0 / mean_seek,
        "seek_p50_ms": float(np.percentile(seek_ms, 50)),
        "seek_p99_ms": float(np.percentile(seek_ms, 99)),
        "full_read_ms": full_ms,
        "seek_speedup": full_ms / mean_seek,
    }
    digest = hashlib.sha256(
        json.dumps(determinism, sort_keys=True).encode()).hexdigest()
    return rec, digest


def test_seek_latency(scale):
    del scale  # recipe geometry is fixed per REPRO_BENCH_SCALE below
    scale_name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    width, height, frames, gop_sizes, seeks, seed = _RECIPES[scale_name]
    repeats = _REPEATS[scale_name]
    yardstick = yardstick_rate()
    video = synthesize_scene(SceneConfig(
        width=width, height=height, num_frames=frames, seed=seed))

    clips = []
    for gop_size in gop_sizes:
        best = None
        digests = set()
        for _ in range(repeats):
            rec, digest = _run_once(video, gop_size, seeks, seed)
            digests.add(digest)
            if best is None or rec["seeks_per_second"] > \
                    best["seeks_per_second"]:
                best = rec
        assert len(digests) == 1, (
            f"seek path is nondeterministic at gop={gop_size}: "
            f"{len(digests)} distinct digests across {repeats} runs")
        clips.append(best)

    print()
    print(format_table(
        ("gop", "seeks/s", "p50 ms", "p99 ms", "full ms", "speedup"),
        [(c["label"], f"{c['seeks_per_second']:.2f}",
          f"{c['seek_p50_ms']:.1f}", f"{c['seek_p99_ms']:.1f}",
          f"{c['full_read_ms']:.1f}", f"{c['seek_speedup']:.2f}x")
         for c in clips],
        title=f"seek latency, {frames}f {width}x{height}, "
              f"{seeks} seeks (best of {repeats})"))
    print(f"yardstick: {yardstick:.1f} ops/s")

    payload = {
        "exhibit": "seek_latency",
        "scale": scale_name,
        "recipe": {"width": width, "height": height, "frames": frames,
                   "gop_sizes": list(gop_sizes), "seeks": seeks,
                   "seed": seed},
        "yardstick_ops_per_second": yardstick,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "clips": clips,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.resolve()}")
