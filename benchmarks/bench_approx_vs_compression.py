"""The paper's central thesis: approximation beats compression.

Section 8 poses the paper's definitive question — "Can approximation
bring higher objectively measured benefits compared to deterministic
video compression?" — and answers yes. This bench measures it directly:
for each suite clip, VideoApp's variable-ECC store (assignment derived
from the clip's own measured curves, worst Monte Carlo read) is compared
against re-compressing with uniform precise protection, at *exactly
equal* cell footprint (interpolated along the compression
rate-distortion curve).
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.experiments import run_approximation_vs_compression


def test_approx_vs_compression(benchmark, bench_suite, scale):
    def run_all():
        rng = np.random.default_rng(53)
        return [
            (name, run_approximation_vs_compression(
                video, base_crf=22, gop_size=min(12, scale.num_frames),
                runs=scale.runs, rng=rng))
            for name, video in bench_suite
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ("clip", "cells/pixel", "approx PSNR", "compress PSNR",
         "compress CRF", "approximation wins"),
        [(name, f"{r.approx_cells_per_pixel:.4f}",
          f"{r.approx_psnr_db:.2f} dB", f"{r.compress_psnr_db:.2f} dB",
          f"{r.base_crf} -> {r.compress_crf}", r.approximation_wins)
         for name, r in results],
        title='Section 8 — "can approximation beat compression?" '
              "(equal storage)"))
    wins = sum(1 for _name, r in results if r.approximation_wins)
    print(f"\napproximation wins on {wins}/{len(results)} clips "
          f"(paper's answer: yes)")
    assert wins >= len(results) - 1  # allow one noisy clip at quick scale
