"""Section 6.1: the importance methodology relates to every metric.

The paper measures PSNR but states its results "relate well" to SSIM,
MS-SSIM, and VIFP for bit-flip distortions. This bench damages the probe
video repeatedly at several error rates, scores every decode with all
four metrics, and reports the Spearman rank correlation of each metric
against PSNR: a correlation near 1 means any of them would order the
importance curves the same way.
"""

import numpy as np

from repro.analysis import format_table
from repro.analysis.experiments import run_metric_agreement


def test_metric_agreement(benchmark, bench_video, bench_config, scale):
    result = benchmark.pedantic(
        run_metric_agreement, args=(bench_video, bench_config),
        kwargs={"rates": (1e-5, 1e-4, 1e-3),
                "trials_per_rate": max(3, scale.runs),
                "rng": np.random.default_rng(51)},
        rounds=1, iterations=1)
    print()
    print(format_table(
        ("metric", "Spearman rank corr. vs PSNR"),
        [(name, f"{value:.3f}")
         for name, value in sorted(result.spearman.items())],
        title=f"Section 6.1 — metric agreement over {result.trials} "
              f"damaged decodes"))
    for name, value in result.spearman.items():
        assert value > 0.7, (name, value)
