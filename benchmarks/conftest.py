"""Shared benchmark fixtures.

Benchmarks regenerate the paper's exhibits at laptop scale. Geometry and
Monte Carlo depth are controlled by REPRO_BENCH_SCALE:

* ``quick`` (default) — minutes for the whole suite;
* ``full``  — closer to the paper's statistical depth (tens of minutes).

Monte Carlo exhibits run on the trial engine; REPRO_BENCH_WORKERS (or
the library-wide REPRO_NUM_WORKERS) fans their trials out over worker
processes without changing any number (0 = serial, the default).

Every benchmark prints the same rows/series its exhibit shows, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the results
generator for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.codec import EncoderConfig
from repro.video import make_suite, synthesize_scene, SceneConfig


@dataclass(frozen=True)
class BenchScale:
    width: int
    height: int
    num_frames: int
    runs: int
    suite_names: tuple
    crfs: tuple


_SCALES = {
    "quick": BenchScale(width=96, height=64, num_frames=12, runs=4,
                        suite_names=("slow_objects", "busy_objects"),
                        crfs=(20, 24)),
    "full": BenchScale(width=160, height=96, num_frames=36, runs=15,
                       suite_names=("static_texture", "slow_objects",
                                    "busy_objects", "camera_pan",
                                    "noisy_sensor", "scene_cuts"),
                       crfs=(16, 20, 24)),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


@pytest.fixture(scope="session")
def bench_video(scale):
    """The main probe video used by single-video exhibits."""
    return synthesize_scene(SceneConfig(
        width=scale.width, height=scale.height,
        num_frames=scale.num_frames, seed=5, num_objects=3))


@pytest.fixture(scope="session")
def bench_suite(scale):
    """(name, video) pairs standing in for the Xiph suite."""
    return make_suite(width=scale.width, height=scale.height,
                      num_frames=scale.num_frames,
                      names=list(scale.suite_names))


@pytest.fixture(scope="session")
def bench_config(scale):
    return EncoderConfig(crf=24, gop_size=min(12, scale.num_frames))


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker processes for Monte Carlo exhibits (0 = serial)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS",
                         os.environ.get("REPRO_NUM_WORKERS", "0"))
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_WORKERS must be an integer, got {raw!r}")
