"""Observability: tracing spans, a metrics registry, live progress.

A lightweight, dependency-free subsystem the rest of the library
publishes into (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — span-based tracer with parent/child nesting,
  per-process buffers merged across the worker-pool boundary, JSONL and
  Chrome-trace (``chrome://tracing`` / Perfetto) export;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms with
  fixed bucket boundaries so cross-process merges are exact;
* :mod:`repro.obs.progress` — a terminal progress reporter for
  campaigns (trials/s, ETA, failure counts), gated behind
  ``--progress``/``REPRO_PROGRESS``.

Everything here is observational: enabling or disabling any of it never
changes a campaign's numbers, and with tracing disabled every
instrumentation site reduces to a single module-global ``None`` check.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    reset_registry,
)
from .progress import PROGRESS_ENV, ProgressReporter, format_eta, \
    resolve_progress
from .trace import (
    NULL_SPAN,
    NULL_STAGE_CLOCK,
    TRACE_ENV,
    SpanRecord,
    StageClock,
    Tracer,
    active,
    aggregate,
    disable,
    enable,
    enabled,
    span,
    spans_to_jsonl,
    stage_clock,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_STAGE_CLOCK",
    "PROGRESS_ENV",
    "ProgressReporter",
    "SpanRecord",
    "StageClock",
    "TRACE_ENV",
    "Tracer",
    "active",
    "aggregate",
    "counter",
    "disable",
    "enable",
    "enabled",
    "format_eta",
    "gauge",
    "get_registry",
    "histogram",
    "reset_registry",
    "resolve_progress",
    "span",
    "spans_to_jsonl",
    "stage_clock",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
