"""Span-based tracing for campaigns and the codec pipeline.

A *span* is one timed region of work — ``encode``, ``decode.frame``,
``inject``, ``bch.decode`` — with a name, a monotonic start/duration,
an owning process id, and a parent, forming a tree::

    with trace.span("trial", kind="sweep", index=3):
        with trace.span("inject"):
            ...
        with trace.span("decode"):
            ...

Design constraints (see docs/OBSERVABILITY.md):

* **Zero cost when disabled.** Tracing is off by default; every
  instrumentation site calls :func:`span`, which returns a shared no-op
  context manager after a single module-global ``None`` check. No
  objects are allocated, no clocks are read.
* **Observational only.** Spans record wall-clock facts about a run;
  they are never folded into seeds, digests, or results, so a traced
  campaign is bitwise identical to an untraced one.
* **Fork-friendly.** ``time.perf_counter`` is ``CLOCK_MONOTONIC`` on
  the POSIX platforms where the executor forks workers, so timestamps
  from parent and children share one clock. Worker-side buffers are
  drained and shipped back over the existing trial-result channel (see
  :mod:`repro.runtime.executor`) and merged with :meth:`Tracer.absorb`;
  per-span ``pid`` keeps the processes apart in the merged view.
* **Single-threaded spans.** The span stack is per-process, not
  per-thread: trials, the encoder, and the decoder all run on one
  thread. (Metrics, by contrast, are safe to publish from anywhere.)

Two export formats:

* :func:`write_jsonl` — one JSON object per span, the raw record;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format, loadable in ``chrome://tracing`` or Perfetto
  (https://ui.perfetto.dev), with one track per process.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

#: Environment knob: a non-empty value enables tracing in the CLI and
#: names the Chrome-trace output path (``--trace`` overrides it).
TRACE_ENV = "REPRO_TRACE"


@dataclass
class SpanRecord:
    """One finished span. Picklable: records cross the worker channel."""

    name: str                     #: stage name, dot-separated namespace
    start: float                  #: ``time.perf_counter()`` at entry
    duration: float               #: seconds, >= 0
    span_id: int                  #: unique within ``pid``
    parent_id: Optional[int]      #: enclosing span's id (None = root)
    pid: int                      #: process that recorded the span
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """``start + duration`` (perf-counter seconds)."""
        return self.start + self.duration


class _ActiveSpan:
    """A span currently on the stack; mutable until it closes."""

    __slots__ = ("name", "start", "span_id", "parent_id", "attrs",
                 "synth_cursor")

    def __init__(self, name: str, start: float, span_id: int,
                 parent_id: Optional[int], attrs: Dict[str, Any]) -> None:
        self.name = name
        self.start = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        #: Placement cursor for synthetic :meth:`Tracer.aggregate`
        #: children, seconds past ``start``.
        self.synth_cursor = 0.0


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_active")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._active: Optional[_ActiveSpan] = None

    def __enter__(self) -> _ActiveSpan:
        self._active = self._tracer._push(self._name, self._attrs)
        return self._active

    def __exit__(self, *exc_info) -> bool:
        self._tracer._pop(self._active)
        return False


class _NullSpan:
    """Shared no-op context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


#: The one instance every disabled :func:`span` call returns.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one process into an in-memory buffer.

    Use the module-level :func:`enable`/:func:`span` API rather than
    instantiating directly; a ``Tracer`` is per-process state.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[_ActiveSpan] = []
        self._next_id = 0
        self._pid = os.getpid()

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """A context manager timing one region as a child of the
        current span."""
        return _SpanContext(self, name, attrs)

    def _push(self, name: str, attrs: Dict[str, Any]) -> _ActiveSpan:
        parent_id = self._stack[-1].span_id if self._stack else None
        active = _ActiveSpan(name, time.perf_counter(), self._next_id,
                             parent_id, attrs)
        self._next_id += 1
        self._stack.append(active)
        return active

    def _pop(self, active: Optional[_ActiveSpan]) -> None:
        end = time.perf_counter()
        # Tolerate a corrupted stack (a span leaked across an exception
        # boundary) by popping down to the span being closed.
        while self._stack:
            top = self._stack.pop()
            self.records.append(SpanRecord(
                name=top.name, start=top.start,
                duration=max(0.0, end - top.start), span_id=top.span_id,
                parent_id=top.parent_id, pid=self._pid, attrs=top.attrs))
            if top is active:
                break

    def aggregate(self, name: str, seconds: float, count: int = 1,
                  **attrs: Any) -> None:
        """Record an *aggregate* span: summed time of many tiny regions.

        Per-macroblock stages (intra search, transform, entropy coding)
        are far too hot for one span each; instead callers accumulate
        their seconds with ``perf_counter`` and emit one synthetic child
        span per stage per frame. Aggregates are placed sequentially
        from the parent's start (they represent summed, interleaved
        time, not a contiguous interval) and carry
        ``attrs["aggregate"] = True`` plus the sample ``count``.
        """
        parent = self._stack[-1] if self._stack else None
        start = (parent.start + parent.synth_cursor if parent is not None
                 else time.perf_counter() - seconds)
        if parent is not None:
            parent.synth_cursor += seconds
        merged = {"aggregate": True, "count": count}
        merged.update(attrs)
        self.records.append(SpanRecord(
            name=name, start=start, duration=max(0.0, seconds),
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            pid=self._pid, attrs=merged))
        self._next_id += 1

    # -- buffers ----------------------------------------------------------

    def drain(self) -> List[SpanRecord]:
        """Return and clear the buffered spans (open spans stay open)."""
        records, self.records = self.records, []
        return records

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Merge spans drained from another process into this buffer."""
        self.records.extend(records)

    def reset_after_fork(self) -> None:
        """Called in a freshly forked worker: drop state copied from the
        parent (its buffered spans and open stack) and re-pin the pid."""
        self.records = []
        self._stack = []
        self._pid = os.getpid()


class StageClock:
    """Accumulates seconds per stage name for too-hot-to-span regions.

    The encoder runs four stages per macroblock; a span per stage per
    macroblock would dwarf the work being measured. Instead the caller
    times each region with :meth:`time` (a cheap context manager that
    only exists while tracing is on), and :meth:`emit` turns the
    accumulated totals into one :func:`aggregate` span per stage::

        stages = StageClock() if trace.enabled() else None
        for macroblock in frame:
            with stages.time("encode.transform"):
                ...
        if stages is not None:
            stages.emit()
    """

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def time(self, name: str) -> "_StageTimer":
        """Context manager adding the region's seconds to ``name``."""
        return _StageTimer(self, name)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` (and ``count`` samples) for ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    def emit(self, **attrs: Any) -> None:
        """Emit one aggregate span per accumulated stage, then reset."""
        for name, seconds in self.totals.items():
            aggregate(name, seconds, count=self.counts[name], **attrs)
        self.totals.clear()
        self.counts.clear()


class _NullStageClock:
    """No-op stand-in for :class:`StageClock` when tracing is off."""

    __slots__ = ()

    def time(self, name: str) -> _NullSpan:
        """Return the shared no-op context manager."""
        return NULL_SPAN

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Discard the sample."""

    def emit(self, **attrs: Any) -> None:
        """Nothing accumulated, nothing to emit."""


#: The one instance every disabled :func:`stage_clock` call returns.
NULL_STAGE_CLOCK = _NullStageClock()


def stage_clock() -> Union[StageClock, _NullStageClock]:
    """A fresh :class:`StageClock` when tracing is enabled, the shared
    no-op clock otherwise — callers never need an ``enabled()`` branch."""
    return StageClock() if _tracer is not None else NULL_STAGE_CLOCK


class _StageTimer:
    """The context manager :meth:`StageClock.time` hands out."""

    __slots__ = ("_clock", "_name", "_start")

    def __init__(self, clock: StageClock, name: str) -> None:
        self._clock = clock
        self._name = name
        self._start = 0.0

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc_info) -> bool:
        self._clock.add(self._name, time.perf_counter() - self._start)
        return False


_tracer: Optional[Tracer] = None


def enable() -> Tracer:
    """Turn tracing on for this process; idempotent."""
    global _tracer
    if _tracer is None:
        _tracer = Tracer()
    return _tracer


def disable() -> None:
    """Turn tracing off and discard the tracer (buffer included)."""
    global _tracer
    _tracer = None


def enabled() -> bool:
    """True when a tracer is installed in this process."""
    return _tracer is not None


def active() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _tracer


def span(name: str, **attrs: Any) -> Union[_SpanContext, _NullSpan]:
    """Module-level instrumentation point: time a region when tracing
    is enabled, do nothing (one ``None`` check) when it is not.

    The context manager yields the active span (mutate ``.attrs`` to
    attach facts learned inside the region) or ``None`` when disabled.
    """
    tracer = _tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def aggregate(name: str, seconds: float, count: int = 1,
              **attrs: Any) -> None:
    """Module-level :meth:`Tracer.aggregate`; no-op when disabled."""
    tracer = _tracer
    if tracer is not None:
        tracer.aggregate(name, seconds, count, **attrs)


# -- export ---------------------------------------------------------------


def spans_to_jsonl(records: Iterable[SpanRecord]) -> str:
    """Render spans as JSONL, one object per line."""
    lines = []
    for record in records:
        lines.append(json.dumps({
            "name": record.name,
            "start": record.start,
            "duration": record.duration,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "pid": record.pid,
            "attrs": record.attrs,
        }, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: Union[str, Path],
                records: Iterable[SpanRecord]) -> None:
    """Write spans as JSONL to ``path``."""
    Path(path).write_text(spans_to_jsonl(records), encoding="utf-8")


def to_chrome_trace(records: Iterable[SpanRecord],
                    process_name: str = "repro") -> Dict[str, Any]:
    """Convert spans to the Chrome trace-event format.

    Each span becomes one complete (``ph: "X"``) event with microsecond
    timestamps; each recording process gets its own named track. The
    result loads in ``chrome://tracing`` and Perfetto.
    """
    records = list(records)
    events: List[Dict[str, Any]] = []
    for pid in sorted({r.pid for r in records}):
        events.append({
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name",
            "args": {"name": f"{process_name} pid {pid}"},
        })
    for record in records:
        args = {key: _jsonable(value)
                for key, value in record.attrs.items()}
        args["span_id"] = record.span_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        events.append({
            "ph": "X",
            "name": record.name,
            "pid": record.pid,
            "tid": 0,
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path],
                       records: Iterable[SpanRecord],
                       process_name: str = "repro") -> None:
    """Write spans as a Chrome-trace JSON file to ``path``."""
    payload = to_chrome_trace(records, process_name=process_name)
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
