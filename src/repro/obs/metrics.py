"""Metrics registry: counters, gauges, and exactly-mergeable histograms.

Where spans (:mod:`repro.obs.trace`) answer "where did the time go",
metrics answer "how much happened": trials run, watchdogs expired,
journal records written, fuzz contract violations. The runtime layers
(:class:`~repro.runtime.trials.RunStats` publication, the journal, the
watchdog, the fuzz harness) publish into one process-wide registry.

Three instrument kinds:

* :class:`Counter` — monotonically increasing count; merges by sum.
* :class:`Gauge` — last-written value; merges last-writer-wins.
* :class:`Histogram` — observation counts in **fixed** bucket
  boundaries plus an exact total count and a sum. Because boundaries
  are fixed at creation and never rebalanced, merging two histograms is
  *exact*: bucket counts add integer-wise, so a campaign's merged
  worker histograms equal the histogram a single process would have
  recorded (bucket-for-bucket; only the float ``sum`` is subject to
  addition order).

Worker processes :meth:`MetricsRegistry.drain` their registry into a
picklable snapshot that crosses the executor's trial-result channel and
is :meth:`MetricsRegistry.merge`-d by the parent — mirroring the span
pipeline, with the same guarantee that none of it perturbs results.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError

#: Default histogram boundaries for durations in seconds: log-ish spacing
#: from 1 ms to 1 min, the range a trial stage plausibly occupies.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise AnalysisError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value; the last write wins (merges included)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Observation counts over fixed bucket boundaries.

    ``boundaries`` are upper bounds: an observation lands in the first
    bucket whose boundary is >= the value; values above the last
    boundary land in the implicit overflow bucket. ``counts`` therefore
    has ``len(boundaries) + 1`` entries.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "sum")

    def __init__(self, name: str,
                 boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        ordered = tuple(float(b) for b in boundaries)
        if not ordered:
            raise AnalysisError(f"histogram {name!r} needs >= 1 boundary")
        if list(ordered) != sorted(set(ordered)):
            raise AnalysisError(
                f"histogram {name!r} boundaries must be strictly "
                f"increasing, got {ordered}")
        self.name = name
        self.boundaries = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, boundaries: Sequence[float], counts: Sequence[int],
              count: int, total: float) -> None:
        """Fold another histogram's state in; boundaries must match
        exactly (that is what makes the merge exact)."""
        if tuple(float(b) for b in boundaries) != self.boundaries:
            raise AnalysisError(
                f"histogram {self.name!r}: cannot merge boundaries "
                f"{tuple(boundaries)} into {self.boundaries}")
        if len(counts) != len(self.counts):
            raise AnalysisError(
                f"histogram {self.name!r}: bucket count mismatch")
        for index, bucket in enumerate(counts):
            self.counts[index] += int(bucket)
        self.count += int(count)
        self.sum += float(total)


class MetricsRegistry:
    """Get-or-create registry of named instruments for one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        """The histogram called ``name``, created on first use.

        Re-requesting an existing histogram with different boundaries
        is an error — fixed boundaries are the exact-merge contract.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name)
            instrument = self._histograms[name] = Histogram(name, boundaries)
        elif instrument.boundaries != tuple(float(b) for b in boundaries):
            raise AnalysisError(
                f"histogram {name!r} already exists with boundaries "
                f"{instrument.boundaries}")
        return instrument

    def _check_free(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise AnalysisError(
                f"metric name {name!r} already used by another "
                f"instrument kind")

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A picklable, JSON-friendly copy of every instrument."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {"boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum}
                for n, h in self._histograms.items()
            },
        }

    def drain(self) -> Dict[str, Any]:
        """Snapshot then reset — the worker side of the merge channel."""
        snap = self.snapshot()
        self.reset()
        return snap

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` payload into this
        registry (counters add, gauges last-write-wins, histograms
        merge exactly)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name, state["boundaries"]).merge(
                state["boundaries"], state["counts"], state["count"],
                state["sum"])

    def reset(self) -> None:
        """Drop every instrument (used after a drain, and by tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry, created on first use."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def counter(name: str) -> Counter:
    """Module-level shorthand for ``get_registry().counter(name)``."""
    return get_registry().counter(name)


def gauge(name: str) -> Gauge:
    """Module-level shorthand for ``get_registry().gauge(name)``."""
    return get_registry().gauge(name)


def histogram(name: str,
              boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS
              ) -> Histogram:
    """Module-level shorthand for ``get_registry().histogram(...)``."""
    return get_registry().histogram(name, boundaries)


def reset_registry() -> None:
    """Reset the process-wide registry (forked workers, tests)."""
    if _registry is not None:
        _registry.reset()
