"""Terminal progress reporting for long campaigns.

A thousand-trial Monte Carlo campaign can run for minutes with nothing
on the terminal; :class:`ProgressReporter` renders a single
carriage-return-refreshed status line while it runs::

    sweep:  37/48 trials (77%)  12.3 trials/s  eta 0:01  \
[rate 1e-05] [2 failed, 1 retried]

and a final summary line when the campaign finishes. The executor feeds
it (see :meth:`~repro.runtime.executor.TrialExecutor.run_with_stats`);
nothing here touches randomness or results.

Progress is opt-in, gated by ``--progress`` on the CLI or the
``REPRO_PROGRESS`` environment variable (any value except ``0``,
``false``, or empty enables it). Rendering is throttled to
``min_interval`` seconds except for fault events (failures, retries,
pool restarts), which always repaint so degradation is visible the
moment it happens.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Optional

from ..errors import AnalysisError

#: Environment knob: enable campaign progress lines by default.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Values of :data:`PROGRESS_ENV` that mean "off".
_FALSY = ("", "0", "false", "no", "off")


def resolve_progress(progress: Optional[bool] = None) -> bool:
    """Resolve the effective progress setting.

    An explicit ``progress`` wins; otherwise ``REPRO_PROGRESS`` is
    consulted; otherwise off.
    """
    if progress is not None:
        return bool(progress)
    return os.environ.get(PROGRESS_ENV, "").strip().lower() not in _FALSY


def format_eta(seconds: float) -> str:
    """``m:ss`` (or ``h:mm:ss``) rendering of a non-negative ETA."""
    seconds = max(0, int(seconds))
    hours, remainder = divmod(seconds, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Renders campaign progress as one refreshing terminal line.

    Args:
        total: number of trials the campaign will run.
        stream: where to render (default ``sys.stderr``; tests pass a
            ``StringIO``).
        label: prefix for the line, e.g. the campaign kind.
        min_interval: minimum seconds between repaints (fault events
            bypass the throttle).
    """

    def __init__(self, total: int, stream: Optional[IO[str]] = None,
                 label: str = "campaign",
                 min_interval: float = 0.1) -> None:
        if total < 0:
            raise AnalysisError(f"total must be >= 0, got {total}")
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self.resumed = 0
        self.pool_restarts = 0
        self.current = ""       #: label of the latest finished work item
        self._started = time.perf_counter()
        self._last_render = 0.0
        self._line_width = 0
        self._finished = False

    # -- event feed -------------------------------------------------------

    def begin(self, resumed: int = 0) -> None:
        """Start the clock; ``resumed`` trials were restored from a
        journal and count as already completed."""
        self.resumed = resumed
        self.completed = resumed
        self._started = time.perf_counter()
        self.render(force=True)

    def trial_finished(self, ok: bool, label: str = "") -> None:
        """One trial reached a final outcome (result or quarantine)."""
        self.completed += 1
        if label:
            self.current = label
        if not ok:
            self.failed += 1
        self.render(force=not ok)

    def note_retry(self, count: int = 1) -> None:
        """Chunks were resubmitted after a crash or hang."""
        self.retried += count
        self.render(force=True)

    def note_pool_restart(self) -> None:
        """The worker pool died and was respawned."""
        self.pool_restarts += 1
        self.render(force=True)

    # -- rendering --------------------------------------------------------

    def render(self, force: bool = False) -> None:
        """Repaint the status line (throttled unless ``force``)."""
        if self._finished:
            return
        now = time.perf_counter()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._paint(self._compose(now))

    def finish(self, stats=None) -> None:
        """Clear the live line and print one final summary line."""
        if self._finished:
            return
        self._finished = True
        now = time.perf_counter()
        summary = self._compose(now, final=True)
        self._paint(summary)
        self.stream.write("\n")
        self.stream.flush()

    def _compose(self, now: float, final: bool = False) -> str:
        elapsed = max(now - self._started, 1e-9)
        fresh = self.completed - self.resumed  # actually executed
        rate = fresh / elapsed
        parts = [f"{self.label}: {self.completed}/{self.total} trials"]
        if self.total:
            parts.append(f"({100 * self.completed // self.total}%)")
        parts.append(f"{rate:.1f} trials/s")
        if final:
            parts.append(f"in {elapsed:.1f}s")
        elif rate > 0 and self.total > self.completed:
            remaining = (self.total - self.completed) / rate
            parts.append(f"eta {format_eta(remaining)}")
        if self.current and not final:
            parts.append(f"[{self.current}]")
        faults = []
        if self.resumed:
            faults.append(f"{self.resumed} resumed")
        if self.failed:
            faults.append(f"{self.failed} failed")
        if self.retried:
            faults.append(f"{self.retried} retried")
        if self.pool_restarts:
            faults.append(f"{self.pool_restarts} pool restarts")
        if faults:
            parts.append("[" + ", ".join(faults) + "]")
        return "  ".join(parts)

    def _paint(self, line: str) -> None:
        pad = max(0, self._line_width - len(line))
        self._line_width = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
