"""repro: reproduction of "Approximate Storage of Compressed and
Encrypted Videos" (Jevdjic, Strauss, Ceze, Malvar — ASPLOS 2017).

Public surface (see README for the architecture tour):

* :mod:`repro.video`   — raw video containers, synthesis, I/O
* :mod:`repro.codec`   — H.264-like encoder/decoder (CABAC + CAVLC)
* :mod:`repro.core`    — VideoApp: importance analysis, pivots,
  partitioning, ECC assignment, end-to-end pipeline
* :mod:`repro.storage` — MLC PCM model, BCH codes, error injection
* :mod:`repro.crypto`  — AES-128 and block modes, approximability analysis
* :mod:`repro.metrics` — PSNR / SSIM / MS-SSIM / VIFP
* :mod:`repro.analysis`— experiment harness reproducing every figure
"""

from .errors import (
    AnalysisError,
    BitstreamError,
    CryptoError,
    EncoderError,
    ReproError,
    StorageError,
    VideoFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BitstreamError",
    "CryptoError",
    "EncoderError",
    "ReproError",
    "StorageError",
    "VideoFormatError",
    "__version__",
]
