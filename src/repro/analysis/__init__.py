"""Experiment harness: binning, sweeps, and per-figure runners."""

from .binning import ImportanceBin, bin_balance, equal_storage_bins
from .experiments import (
    AblationPoint,
    DesignPoint,
    Figure3Result,
    Figure9Result,
    Figure10Result,
    Figure11Result,
    OverheadResult,
    run_figure3,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure10_suite,
    run_figure11,
    run_overhead,
    run_section5,
    run_section8,
    run_table1,
)
from .reporting import format_run_stats, format_series, format_table
from ..runtime import RunStats
from .sweeps import PAPER_ERROR_RATES, SweepPoint, SweepResult, quality_sweep
from .visualize import (
    SHADES,
    importance_map,
    macroblock_error_map,
    video_error_maps,
)

__all__ = [
    "AblationPoint",
    "DesignPoint",
    "Figure3Result",
    "Figure9Result",
    "Figure10Result",
    "Figure11Result",
    "ImportanceBin",
    "OverheadResult",
    "PAPER_ERROR_RATES",
    "RunStats",
    "format_run_stats",
    "SHADES",
    "SweepPoint",
    "SweepResult",
    "bin_balance",
    "equal_storage_bins",
    "format_series",
    "format_table",
    "importance_map",
    "macroblock_error_map",
    "quality_sweep",
    "video_error_maps",
    "run_figure3",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure10_suite",
    "run_figure11",
    "run_overhead",
    "run_section5",
    "run_section8",
    "run_table1",
]
