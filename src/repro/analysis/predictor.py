"""Rate/quality prediction from motion-search statistics.

Sweeping a CRF grid costs one full encode *plus a Monte Carlo campaign*
per grid point. Most of that is wasted on operating points nobody would
pick: beyond some CRF the quality curve plateaus while bits keep
growing. This module predicts each grid point's rate and quality from a
single cheap *probe* encode — using the coding statistics the encoder's
motion search already produced (:mod:`repro.codec.stats`) — so
dominated points can be skipped before any expensive work
(``repro sweep --crf-grid ... --prune-predicted``).

The model is a pair of linear fits on probe features (probe bits per
pixel, mean motion-vector magnitude, skip/intra fractions, residual
density, mean QP) plus the target CRF. Rate is predicted in
``log2(bits/pixel)`` — compression is multiplicative, so the log domain
is where it is near-linear in CRF. The default weights are least-squares
fits over a synthetic suite spanning static, panning, noisy, and
high-detail content at CRFs 16..36 (see ``tests/analysis`` for the
fit-quality floor the committed weights must keep meeting).

Prediction is advisory: pruning changes which sweeps *run*, never any
measured number. A kept point's campaign is identical to an unpruned
run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..codec.config import EncoderConfig
from ..codec.stats import VideoStats, inspect_video
from ..errors import AnalysisError
from ..video.frame import VideoSequence

#: CRF of the probe encode default weights were fitted against.
PROBE_CRF = 24

#: A kept point must be predicted to gain at least this much PSNR over
#: every cheaper kept point, or it is dominated.
DEFAULT_EPSILON_DB = 0.25


@dataclass(frozen=True)
class EncodePrediction:
    """Predicted operating point of one CRF."""

    crf: int
    bits_per_pixel: float
    psnr_db: float


def probe_features(stats: VideoStats, total_pixels: int,
                   crf: int) -> List[float]:
    """Feature vector for one (probe stats, target CRF) pair."""
    if total_pixels <= 0:
        raise AnalysisError(f"total_pixels must be > 0, got {total_pixels}")
    frames = stats.frames
    mean_mv = float(np.mean([f.mean_mv_magnitude for f in frames]))
    skip = float(np.mean([f.skip_fraction for f in frames]))
    intra = float(np.mean([f.intra_fraction for f in frames]))
    mean_qp = float(np.mean([f.mean_qp for f in frames]))
    density = sum(f.total_nonzero_coefficients
                  for f in frames) / total_pixels
    log_bpp = float(np.log2(max(stats.total_payload_bits, 1)
                            / total_pixels))
    return [1.0, float(crf), log_bpp, mean_mv, skip, intra, density,
            mean_qp]


@dataclass(frozen=True)
class RateQualityPredictor:
    """Linear rate/quality model over :func:`probe_features`."""

    #: Weights for ``log2(bits/pixel)`` at the target CRF.
    bits_weights: Tuple[float, ...]
    #: Weights for clean-decode PSNR (dB) at the target CRF.
    psnr_weights: Tuple[float, ...]

    def predict(self, stats: VideoStats, total_pixels: int,
                crf: int) -> EncodePrediction:
        features = np.asarray(probe_features(stats, total_pixels, crf))
        if features.shape != (len(self.bits_weights),):
            raise AnalysisError(
                f"predictor expects {len(self.bits_weights)} features, "
                f"got {features.shape[0]}")
        log_bpp = float(features @ np.asarray(self.bits_weights))
        psnr = float(features @ np.asarray(self.psnr_weights))
        return EncodePrediction(crf=int(crf),
                                bits_per_pixel=float(2.0 ** log_bpp),
                                psnr_db=psnr)

    @classmethod
    def fit(cls, feature_rows: Sequence[Sequence[float]],
            log_bpp: Sequence[float],
            psnr_db: Sequence[float]) -> "RateQualityPredictor":
        """Least-squares fit of both heads on observed encodes."""
        matrix = np.asarray(feature_rows, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < matrix.shape[1]:
            raise AnalysisError(
                f"need at least as many samples as features, got shape "
                f"{matrix.shape}")
        bits_w = np.linalg.lstsq(matrix, np.asarray(log_bpp), rcond=None)[0]
        psnr_w = np.linalg.lstsq(matrix, np.asarray(psnr_db), rcond=None)[0]
        return cls(tuple(float(w) for w in bits_w),
                   tuple(float(w) for w in psnr_w))


#: Weights fitted on the synthetic suite in
#: ``tools/fit_predictor.py`` (12 clips x CRFs 16..36, probe at CRF 24;
#: in-sample R^2 = 0.952 for log2 bits/pixel, 0.997 for PSNR).
DEFAULT_PREDICTOR = RateQualityPredictor(
    bits_weights=(0.0031497244162290616, -0.09089741150150435,
                  0.7835557489635746, 0.03705778986047997,
                  0.132782776193894, 0.00031497244162287104,
                  0.33591041505426733, 0.0812628899387098),
    psnr_weights=(0.09099967755798122, -0.930754577332203,
                  -0.9491287812715132, 0.0889949486643231,
                  1.3367096401579153, 0.009099967755798178,
                  0.16487673219798174, 2.34779168099592),
)


def probe_and_predict(video: VideoSequence, crf_grid: Sequence[int],
                      config: Optional[EncoderConfig] = None,
                      predictor: Optional[RateQualityPredictor] = None
                      ) -> List[EncodePrediction]:
    """One probe encode, then a prediction per grid CRF.

    ``config`` supplies the non-CRF knobs of the probe (GOP size,
    slices, entropy coder, ...); its CRF is replaced by
    :data:`PROBE_CRF`, which the default weights were fitted at.
    """
    import dataclasses

    from ..codec.encoder import Encoder

    predictor = predictor or DEFAULT_PREDICTOR
    base = config or EncoderConfig()
    probe_config = dataclasses.replace(base, crf=PROBE_CRF)
    encoded = Encoder(probe_config).encode(video)
    stats = inspect_video(encoded)
    pixels = video.total_pixels
    return [predictor.predict(stats, pixels, crf) for crf in crf_grid]


def prune_dominated(predictions: Sequence[EncodePrediction],
                    epsilon_db: float = DEFAULT_EPSILON_DB) -> List[bool]:
    """Keep mask over predicted operating points.

    A point is dominated when some cheaper point (strictly fewer
    predicted bits) already achieves its predicted PSNR within
    ``epsilon_db``. The cheapest point is always kept, so pruning can
    never empty the grid.
    """
    if epsilon_db < 0:
        raise AnalysisError(f"epsilon_db must be >= 0, got {epsilon_db}")
    keep = [True] * len(predictions)
    for j, candidate in enumerate(predictions):
        for other in predictions:
            if (other.bits_per_pixel < candidate.bits_per_pixel
                    and other.psnr_db >= candidate.psnr_db - epsilon_db):
                keep[j] = False
                break
    return keep
