"""Equal-storage importance bins (the Figure 9 validation experiment).

All macroblocks of a video are sorted by importance and cut into
``num_bins`` bins of (nearly) equal *storage* — equal bit counts, so
that injecting errors at the same rate produces the same expected number
of flips in every bin and quality differences are attributable to
importance alone (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import AnalysisError
from ..core.importance import MacroblockBits

#: One injectable region: (frame coded index, start bit, end bit).
BitRange = Tuple[int, int, int]


@dataclass
class ImportanceBin:
    """One equal-storage bin of macroblocks."""

    index: int
    ranges: List[BitRange] = field(default_factory=list)
    total_bits: int = 0
    min_importance: float = float("inf")
    max_importance: float = 0.0

    def add(self, mb: MacroblockBits) -> None:
        if mb.bit_end > mb.bit_start:
            self.ranges.append(
                (mb.frame_coded_index, mb.bit_start, mb.bit_end))
            self.total_bits += mb.bit_end - mb.bit_start
        self.min_importance = min(self.min_importance, mb.importance)
        self.max_importance = max(self.max_importance, mb.importance)


def equal_storage_bins(mb_bits: Sequence[MacroblockBits],
                       num_bins: int = 16) -> List[ImportanceBin]:
    """Sort MBs by importance and cut into equal-storage bins.

    Bin 0 holds the least important ~1/num_bins of the bits; bin
    ``num_bins - 1`` the most important.
    """
    if num_bins < 1:
        raise AnalysisError(f"num_bins must be >= 1, got {num_bins}")
    ordered = sorted(mb_bits, key=lambda mb: mb.importance)
    total_bits = sum(mb.bit_end - mb.bit_start for mb in ordered)
    if total_bits == 0:
        raise AnalysisError("video has no payload bits to bin")
    target = total_bits / num_bins
    bins = [ImportanceBin(index=i) for i in range(num_bins)]
    consumed = 0
    for mb in ordered:
        index = min(int(consumed / target), num_bins - 1)
        bins[index].add(mb)
        consumed += mb.bit_end - mb.bit_start
    return bins


def bin_balance(bins: Sequence[ImportanceBin]) -> float:
    """Max relative deviation of bin sizes from perfect balance."""
    sizes = [b.total_bits for b in bins]
    mean = sum(sizes) / len(sizes)
    if mean == 0:
        raise AnalysisError("bins are empty")
    return max(abs(size - mean) / mean for size in sizes)
