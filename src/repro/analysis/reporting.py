"""Plain-text reporting of experiment results.

Benchmarks print the same rows/series the paper's exhibits show; these
helpers render them as aligned ASCII tables so bench output is readable
in a terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..errors import AnalysisError


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    materialized: List[List[str]] = [[_cell(value) for value in row]
                                     for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one curve as labelled (x, y) rows."""
    if len(xs) != len(ys):
        raise AnalysisError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    rows = [(_cell(x), _cell(y)) for x, y in zip(xs, ys)]
    return format_table((x_label, y_label), rows, title=name)


def format_run_stats(stats) -> str:
    """One-line throughput + fault summary of a campaign's RunStats."""
    if stats is None:
        return "(no run stats recorded)"
    mode = "serial" if stats.workers == 0 else f"{stats.workers} workers"
    line = (f"{stats.trials} trials in {stats.elapsed_seconds:.2f}s "
            f"({stats.trials_per_second:.2f} trials/s, {mode})")
    faults = []
    if getattr(stats, "resumed", 0):
        faults.append(f"{stats.resumed} resumed from journal")
    if getattr(stats, "failed", 0):
        faults.append(f"{stats.failed} failed")
    if getattr(stats, "quarantined", 0):
        faults.append(f"{stats.quarantined} quarantined")
    if getattr(stats, "retried", 0):
        faults.append(f"{stats.retried} retried")
    if getattr(stats, "pool_restarts", 0):
        faults.append(f"{stats.pool_restarts} pool restarts")
    if faults:
        line += " [" + ", ".join(faults) + "]"
    return line


def _cell(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
