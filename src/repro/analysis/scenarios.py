"""The scenario matrix: hostile content × injected faults, with invariants.

Every robustness mechanism in the repo — the executor's crash
quarantine, the journal's torn-tail recovery, the farm's skip-and-scale
aggregation, the device's never-silently-corrupted contract — was built
against *friendly* content and *assumed* faults. This exhibit runs the
cross product that proves they compose: each content suite (the
friendly synthetic baseline plus every :mod:`~repro.video.adversarial`
generator) is pushed through the pipeline while a seeded
:class:`~repro.runtime.chaos.ChaosPolicy` injects one fault class per
cell, and each cell asserts the invariant that fault class must not
break:

========================  ==============================================
fault cell                invariant
========================  ==============================================
``none``                  campaign completes; content-model gap checks
                          (importance ranking, predictor prune audit)
                          run here and *flag* rather than fail
``device_overrate``       reads fail beyond the modeled rates, yet every
                          extra failure surfaces as an uncorrectable
                          block (nothing silently miscorrected) and the
                          campaign still completes
``trial_error``           an injected mid-trial exception fails exactly
                          that trial; every survivor is bitwise equal to
                          the fault-free run
``worker_crash``          a killed worker process is quarantined after
                          retries; survivors bitwise equal
``shm_loss``              a shared-memory clip segment vanishing
                          mid-campaign fails one encode unit; the farm
                          skip-and-scales and other clips are untouched
``journal_torn``          a torn journal tail aborts the writer; a
                          resume completes the campaign and the final
                          journal is exactly what an uninterrupted run
                          would have written
========================  ==============================================

Determinism is the point: the same ``seed`` produces the same fault
schedule (:func:`~repro.runtime.chaos.schedule_digest` per cell) and
the same journal digest, so the whole matrix is a replayable regression
artifact — the JSON report it emits is compared across runs in CI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..codec.config import EncoderConfig
from ..codec.decoder import Decoder
from ..codec.encoder import Encoder
from ..core.importance import compute_importance, macroblock_bits
from ..core.pipeline import ApproximateVideoStore
from ..errors import AnalysisError, ChaosError
from ..metrics.psnr import video_psnr
from ..obs import metrics as obs_metrics
from ..runtime import chaos
from ..runtime.executor import run_campaign
from ..runtime.farm import encode_farm
from ..runtime.journal import (
    JOURNAL_VERSION,
    campaign_digest,
    spec_digest,
)
from ..runtime.shm import SharedClipStore, pack_clips
from ..runtime.trials import (
    KIND_STORED_READ,
    TrialContext,
    TrialResult,
    TrialSpec,
    spawn_trial_seeds,
)
from ..video.adversarial import ADVERSARIAL_PRESETS, make_adversarial_suite
from ..video.frame import VideoSequence
from ..video.synthesis import SceneConfig, synthesize_scene
from .binning import equal_storage_bins
from .experiments import _slim_stored
from .predictor import (
    DEFAULT_EPSILON_DB,
    probe_and_predict,
    prune_dominated,
)
from .sweeps import quality_sweep

#: Fault cells, in execution order. ``none`` must stay first: it is the
#: paired baseline every other cell's bitwise comparisons run against.
DEFAULT_FAULTS: Tuple[str, ...] = (
    "none", "device_overrate", "trial_error", "worker_crash", "shm_loss",
    "journal_torn",
)

#: Every content suite: the friendly baseline plus the full hostile set.
ALL_CONTENTS: Tuple[str, ...] = (
    ("friendly",) + tuple(name for name, _ in ADVERSARIAL_PRESETS))

#: The CI-sized subset (--quick): baseline plus the three generators
#: that stress distinct codec assumptions (reference reuse, temporal
#: ordering, transform energy compaction).
QUICK_CONTENTS: Tuple[str, ...] = (
    "friendly", "scene_cut_storm", "timeline_shuffle", "high_freq_texture")

#: Importance-inversion tolerance: damaging the most important bin may
#: score up to this much *less* loss than the least important bin
#: before the content is flagged as an importance-model gap.
IMPORTANCE_GAP_TOLERANCE_DB = 0.5

#: Extra dB of slack (beyond the prune epsilon) a pruned CRF point gets
#: against ground truth before the prune is flagged as wrong.
PREDICTOR_AUDIT_SLACK_DB = 1.0


def build_content(name: str, width: int, height: int, num_frames: int,
                  seed: int) -> VideoSequence:
    """Materialize one named content suite at the matrix geometry."""
    if name == "friendly":
        return synthesize_scene(SceneConfig(
            width=width, height=height, num_frames=num_frames, seed=seed,
            num_objects=2))
    return make_adversarial_suite(width, height, num_frames, names=[name],
                                  seed=seed)[0][1]


@dataclass
class ScenarioCell:
    """One (content, fault) cell's verdict."""

    content: str
    fault: str
    #: Every invariant held. Model-gap flags do NOT clear this.
    passed: bool
    #: Named invariant verdicts (all must be True for ``passed``).
    invariants: Dict[str, bool] = field(default_factory=dict)
    #: Model gaps and environment skips: recorded, never failing.
    flags: List[str] = field(default_factory=list)
    #: Parent-side chaos schedule fingerprint while this cell ran.
    schedule_digest: str = ""
    #: Chaos events fired in the parent during this cell.
    chaos_events: int = 0
    #: Cell-specific numbers (trial values, counter deltas, bits).
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class ScenarioReport:
    """A full scenario-matrix run."""

    cells: List[ScenarioCell]
    seed: int
    width: int
    height: int
    num_frames: int
    trials: int
    #: Canonical digest of the torn-then-resumed campaign journal.
    journal_digest: str = ""

    @property
    def passed(self) -> bool:
        """Every cell's invariants held (flags never fail a run)."""
        return all(cell.passed for cell in self.cells)

    @property
    def flagged(self) -> List[Tuple[str, str, str]]:
        """(content, fault, flag) for every recorded model gap / skip."""
        return [(c.content, c.fault, flag)
                for c in self.cells for flag in c.flags]

    @property
    def matrix_digest(self) -> str:
        """Replayable fingerprint of the whole matrix outcome.

        Folds every cell's fault schedule, invariant verdicts, and
        measured values (via exact float repr) plus the journal digest.
        Wall-clock and throughput never enter, so two runs with one
        seed must produce one digest — CI compares them byte for byte.
        """
        payload = {
            "seed": self.seed,
            "geometry": [self.width, self.height, self.num_frames,
                         self.trials],
            "journal": self.journal_digest,
            "cells": [{
                "content": c.content, "fault": c.fault,
                "passed": c.passed, "invariants": c.invariants,
                "flags": c.flags, "schedule": c.schedule_digest,
                "events": c.chaos_events,
                "details": {k: repr(v) for k, v in sorted(c.details.items())},
            } for c in self.cells],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()[:32]

    def to_dict(self) -> dict:
        """JSON-ready report: all cells plus the derived verdicts."""
        data = dataclasses.asdict(self)
        data["passed"] = self.passed
        data["matrix_digest"] = self.matrix_digest
        return data


def journal_file_digest(path: Union[str, Path]) -> str:
    """Order-independent content digest of one campaign journal.

    Sorted-line hashing, because a resumed journal holds the same
    records as an uninterrupted run's journal but possibly reordered.
    """
    lines = sorted(Path(path).read_bytes().splitlines())
    return hashlib.sha256(b"\n".join(lines)).hexdigest()[:32]


def _expected_journal_lines(specs: Sequence[TrialSpec],
                            context: TrialContext,
                            outcomes: Sequence[TrialResult]) -> List[bytes]:
    """The exact lines an uninterrupted journaled campaign writes."""
    lines = [json.dumps({"type": "header", "version": JOURNAL_VERSION,
                         "campaign": campaign_digest(specs, context)})]
    for spec, outcome in zip(specs, outcomes):
        record = {"type": "trial", "digest": spec_digest(spec),
                  "index": outcome.index, "value_db": outcome.value_db,
                  "num_flips": outcome.num_flips, "forced": outcome.forced}
        if outcome.aux is not None:
            record["aux"] = outcome.aux
        lines.append(json.dumps(record))
    return sorted(line.encode() for line in lines)


def _cell_seed(seed: int, content: str, fault: str) -> int:
    """Stable per-cell chaos seed, independent of matrix ordering."""
    digest = hashlib.sha256(f"{seed}|{content}|{fault}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _counters(*names: str) -> Dict[str, int]:
    snapshot = obs_metrics.get_registry().snapshot()["counters"]
    return {name: int(snapshot.get(name, 0)) for name in names}


def _values(outcomes: Sequence[object]) -> List[Optional[float]]:
    return [o.value_db if isinstance(o, TrialResult) else None
            for o in outcomes]


# ----------------------------------------------------------------------
# Content-model gap checks (run in the fault-free cell; they flag)
# ----------------------------------------------------------------------

def importance_ranking_flags(video: VideoSequence, config: EncoderConfig,
                             seed: int) -> List[str]:
    """Does importance-based partitioning still rank damage correctly?

    Damages the most- and least-important equal-storage bins at one
    error rate with *paired* randomness. On content the importance
    model understands, hurting the top bin must hurt at least as much
    as hurting the bottom bin (within tolerance); an inversion is a
    genuine model gap on that content and is returned as a flag.
    """
    encoded = Encoder(config).encode(video)
    assert encoded.trace is not None
    clean = Decoder().decode(encoded)
    importance = compute_importance(encoded.trace)
    bins = equal_storage_bins(macroblock_bits(encoded.trace, importance),
                              num_bins=4)
    if not bins[0].ranges or not bins[-1].ranges:
        return ["importance-bins-degenerate"]
    sweeps = {}
    for label, bucket in (("bottom", bins[0]), ("top", bins[-1])):
        sweeps[label] = quality_sweep(
            encoded, video, clean, bucket.ranges, rates=(1e-3,), runs=3,
            rng=np.random.default_rng(seed), workers=0)
    top_loss = sweeps["top"].points[0].max_loss_db
    bottom_loss = sweeps["bottom"].points[0].max_loss_db
    if top_loss + IMPORTANCE_GAP_TOLERANCE_DB < bottom_loss:
        return [f"importance-inversion: top-bin loss {top_loss:.2f} dB < "
                f"bottom-bin loss {bottom_loss:.2f} dB at rate 1e-3"]
    return []


def predictor_prune_flags(video: VideoSequence, config: EncoderConfig,
                          crf_grid: Sequence[int] = (20, 28, 36)
                          ) -> List[str]:
    """Audit CRF-grid prune decisions against ground-truth encodes.

    Every point the predictor prunes as dominated is re-checked against
    real encodes of the full grid: if no ground-truth point with
    strictly fewer bits reaches the pruned point's true PSNR within
    epsilon + slack, the prune threw away a genuinely useful operating
    point on this content — a predictor model gap, returned as a flag.
    """
    predictions = probe_and_predict(video, crf_grid, config)
    keep = prune_dominated(predictions)
    if all(keep):
        return []
    truth = {}
    for crf in crf_grid:
        encoded = Encoder(dataclasses.replace(config, crf=crf)).encode(video)
        decoded = Decoder().decode(encoded)
        truth[crf] = (8 * len(encoded.serialize()),
                      float(video_psnr(video, decoded)))
    budget = DEFAULT_EPSILON_DB + PREDICTOR_AUDIT_SLACK_DB
    flags = []
    for prediction, kept in zip(predictions, keep):
        if kept:
            continue
        bits, psnr = truth[prediction.crf]
        dominated = any(
            other_bits < bits and other_psnr >= psnr - budget
            for crf, (other_bits, other_psnr) in truth.items()
            if crf != prediction.crf)
        if not dominated:
            flags.append(
                f"predictor-pruned-nondominated: crf {prediction.crf} "
                f"(truth {bits} bits / {psnr:.2f} dB) has no cheaper "
                f"ground-truth point within {budget:.2f} dB")
    return flags


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------

def run_scenario_matrix(contents: Optional[Sequence[str]] = None,
                        faults: Sequence[str] = DEFAULT_FAULTS,
                        width: int = 64, height: int = 48,
                        num_frames: int = 6, trials: int = 4,
                        seed: int = 0,
                        config: Optional[EncoderConfig] = None,
                        journal_dir: Union[str, Path, None] = None,
                        model_checks: bool = True) -> ScenarioReport:
    """Run the (content × fault) scenario matrix.

    Serial except the ``worker_crash`` cell (which needs a pool to have
    a worker to kill), so in-parent fault ordinals are deterministic.
    ``journal_dir`` holds the ``journal_torn`` cell's journals (a
    temporary directory when None). Same ``seed`` → same content, same
    trial seeds, same fault schedule, same :attr:`ScenarioReport.matrix_digest`.
    """
    if chaos.active() is not None:
        raise AnalysisError(
            "scenario matrix manages its own chaos policies; disarm the "
            "ambient one first")
    contents = list(QUICK_CONTENTS if contents is None else contents)
    unknown = [c for c in contents if c not in ALL_CONTENTS]
    if unknown:
        raise AnalysisError(
            f"unknown scenario contents {unknown}; known: "
            f"{list(ALL_CONTENTS)}")
    unknown = [f for f in faults if f not in DEFAULT_FAULTS]
    if unknown:
        raise AnalysisError(
            f"unknown fault cells {unknown}; known: {list(DEFAULT_FAULTS)}")
    if trials < 3:
        raise AnalysisError(f"the matrix needs >= 3 trials, got {trials}")
    config = config or EncoderConfig(crf=30, gop_size=4)
    cells: List[ScenarioCell] = []
    journal_digest = ""
    own_tmp = tempfile.TemporaryDirectory() if journal_dir is None else None
    journal_root = Path(own_tmp.name if own_tmp else journal_dir)
    journal_root.mkdir(parents=True, exist_ok=True)
    try:
        for content in contents:
            video = build_content(content, width, height, num_frames, seed)
            store = ApproximateVideoStore(config=config)
            stored = store.put(video)
            context = TrialContext(reference=video, store=store,
                                   stored=_slim_stored(stored))
            rng = np.random.default_rng([seed, contents.index(content)])
            seeds = spawn_trial_seeds(rng, trials)
            specs = [TrialSpec(index=i, kind=KIND_STORED_READ,
                               seed=seeds[i]) for i in range(trials)]
            baseline, _stats = run_campaign(context, specs, workers=0)
            baseline_values = _values(baseline)
            for fault in faults:
                cell = _run_fault_cell(
                    fault, content, video, context, specs, baseline_values,
                    config, seed, journal_root, model_checks)
                if fault == "journal_torn" and cell.details.get(
                        "journal_digest"):
                    journal_digest = str(cell.details["journal_digest"])
                cells.append(cell)
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
    return ScenarioReport(cells=cells, seed=seed, width=width,
                          height=height, num_frames=num_frames,
                          trials=trials, journal_digest=journal_digest)


def _finish_cell(cell: ScenarioCell) -> ScenarioCell:
    cell.schedule_digest = chaos.schedule_digest()
    cell.chaos_events = len(chaos.chaos_events())
    cell.passed = all(cell.invariants.values())
    return cell


def _run_fault_cell(fault: str, content: str, video: VideoSequence,
                    context: TrialContext, specs: List[TrialSpec],
                    baseline_values: List[Optional[float]],
                    config: EncoderConfig, seed: int, journal_root: Path,
                    model_checks: bool) -> ScenarioCell:
    cell = ScenarioCell(content=content, fault=fault, passed=False)
    cell_seed = _cell_seed(seed, content, fault)

    if fault == "none":
        cell.invariants["campaign_completes"] = all(
            value is not None for value in baseline_values)
        cell.details["values"] = baseline_values
        if model_checks:
            cell.flags += importance_ranking_flags(video, config, cell_seed)
            cell.flags += predictor_prune_flags(video, config)
        cell.schedule_digest = chaos.schedule_digest()  # disarmed digest
        cell.passed = all(cell.invariants.values())
        return cell

    if fault == "device_overrate":
        chaos.arm(chaos.ChaosPolicy(seed=cell_seed, device_fault_rate=0.9))
        try:
            before = _counters("storage_uncorrectable_blocks_total",
                               "storage_miscorrected_blocks_total",
                               "chaos_device_read_total")
            outcomes, stats = run_campaign(context, specs, workers=0)
            # The retry ladder must not pretend to fix chaos damage:
            # faults are keyed by payload content, so a re-read faults
            # identically and the block must stay *visibly* bad.
            context.store.read(context.stored,
                               rng=np.random.default_rng(cell_seed),
                               read_retries=2)
            after = _counters(*before)
            events = (after["chaos_device_read_total"]
                      - before["chaos_device_read_total"])
            uncorrectable = (after["storage_uncorrectable_blocks_total"]
                             - before["storage_uncorrectable_blocks_total"])
            miscorrected = (after["storage_miscorrected_blocks_total"]
                            - before["storage_miscorrected_blocks_total"])
            cell.invariants["campaign_completes"] = (stats.failed == 0)
            cell.invariants["damage_visible"] = (uncorrectable >= events)
            cell.invariants["no_silent_miscorrection"] = (miscorrected == 0)
            if events == 0:
                cell.flags.append("no-device-fault-fired")
            cell.details.update(device_events=events,
                                uncorrectable_blocks=uncorrectable,
                                values=_values(outcomes))
            return _finish_cell(cell)
        finally:
            chaos.disarm()

    if fault == "trial_error":
        victim = 1
        chaos.arm(chaos.ChaosPolicy(seed=cell_seed, fail_trials=(victim,)))
        try:
            outcomes, stats = run_campaign(context, specs, workers=0)
            values = _values(outcomes)
            cell.invariants["victim_fails"] = (stats.failed == 1
                                               and values[victim] is None)
            cell.invariants["survivors_bitwise_equal"] = all(
                values[i] == baseline_values[i]
                for i in range(len(values)) if i != victim)
            cell.details.update(values=values, victim=victim)
            return _finish_cell(cell)
        finally:
            chaos.disarm()

    if fault == "worker_crash":
        if os.name != "posix":  # pragma: no cover - posix-only runtime
            cell.flags.append("worker-pool-unavailable")
            cell.invariants["skipped"] = True
            return _finish_cell(cell)
        victim = 1
        chaos.arm(chaos.ChaosPolicy(seed=cell_seed, crash_trials=(victim,)))
        try:
            outcomes, stats = run_campaign(context, specs, workers=2,
                                           max_retries=2)
            values = _values(outcomes)
            cell.invariants["victim_quarantined"] = (
                stats.quarantined == 1 and values[victim] is None)
            cell.invariants["survivors_bitwise_equal"] = all(
                values[i] == baseline_values[i]
                for i in range(len(values)) if i != victim)
            cell.details.update(values=values, victim=victim,
                                retried=stats.retried,
                                pool_restarts=stats.pool_restarts)
            return _finish_cell(cell)
        finally:
            chaos.disarm()

    if fault == "shm_loss":
        clips = [video, build_content("friendly", video.width, video.height,
                                      len(video), seed + 1)]
        probe = pack_clips(clips, use_shared_memory=True)
        if not isinstance(probe, SharedClipStore):
            cell.flags.append("shared-memory-unavailable")
            cell.invariants["skipped"] = True
            return _finish_cell(cell)
        probe.close()
        baseline_farm = encode_farm(clips, config, workers=0, batch_size=1,
                                    use_shared_memory=True)
        chaos.arm(chaos.ChaosPolicy(seed=cell_seed, shm_fail_at=0))
        try:
            farm = encode_farm(clips, config, workers=0, batch_size=1,
                               use_shared_memory=True)
            failed_units = sum(c.failed_units for c in farm.clips)
            cell.invariants["exactly_one_unit_lost"] = (failed_units == 1)
            cell.invariants["other_clip_untouched"] = (
                farm.clips[1].bits == baseline_farm.clips[1].bits
                and farm.clips[1].psnr_db == baseline_farm.clips[1].psnr_db
                and farm.clips[1].complete)
            cell.invariants["lost_clip_scaled"] = (
                farm.clips[0].failed_units == 1
                and farm.clips[0].units == baseline_farm.clips[0].units)
            cell.details.update(
                failed_units=failed_units,
                bits=[c.bits for c in farm.clips],
                baseline_bits=[c.bits for c in baseline_farm.clips])
            return _finish_cell(cell)
        finally:
            chaos.disarm()

    if fault == "journal_torn":
        journal_path = journal_root / f"scenario.{content}.jsonl"
        if journal_path.exists():
            journal_path.unlink()
        chaos.arm(chaos.ChaosPolicy(seed=cell_seed, journal_tear_at=1))
        try:
            aborted = False
            try:
                run_campaign(context, specs, workers=0,
                             journal=str(journal_path))
            except ChaosError:
                aborted = True
            cell.invariants["writer_crashes"] = aborted
            cell.schedule_digest = chaos.schedule_digest()
            cell.chaos_events = len(chaos.chaos_events())
        finally:
            chaos.disarm()
        before = _counters("journal_torn_tails_total")
        outcomes, stats = run_campaign(context, specs, workers=0,
                                       journal=str(journal_path))
        after = _counters(*before)
        values = _values(outcomes)
        cell.invariants["torn_tail_detected"] = (
            after["journal_torn_tails_total"]
            - before["journal_torn_tails_total"] == 1)
        cell.invariants["resume_completes"] = (stats.failed == 0
                                               and stats.resumed >= 1)
        cell.invariants["resume_bitwise_equal"] = (
            values == baseline_values)
        cell.invariants["journal_canonical"] = (
            sorted(journal_path.read_bytes().splitlines())
            == _expected_journal_lines(
                specs, context,
                [o for o in outcomes if isinstance(o, TrialResult)]))
        cell.details.update(values=values, resumed=stats.resumed,
                            journal_digest=journal_file_digest(journal_path))
        cell.passed = all(cell.invariants.values())
        return cell

    raise AnalysisError(f"unknown fault cell {fault!r}")


# ----------------------------------------------------------------------
# The repair matrix: fault × replication × repair
# ----------------------------------------------------------------------

#: Fault cells of the self-healing matrix.
REPAIR_FAULTS: Tuple[str, ...] = (
    "single_shard_storm", "correlated_burst", "burst_on_scrub")


@dataclass
class RepairCell:
    """One (fault, replicas, repair) cell's verdict."""

    fault: str
    replicas: int
    repair: bool
    #: Every invariant held.
    passed: bool
    invariants: Dict[str, bool] = field(default_factory=dict)
    flags: List[str] = field(default_factory=list)
    schedule_digest: str = ""
    chaos_events: int = 0
    details: Dict[str, object] = field(default_factory=dict)


@dataclass
class RepairMatrixReport:
    """A full (fault × replication × repair) self-healing matrix run."""

    cells: List[RepairCell]
    seed: int
    width: int
    height: int
    num_frames: int
    objects: int
    reads: int

    @property
    def passed(self) -> bool:
        """Every cell's invariants held."""
        return all(cell.passed for cell in self.cells)

    @property
    def matrix_digest(self) -> str:
        """Replayable fingerprint of the whole repair-matrix outcome.

        Covers every cell's fault schedule, invariants, and measured
        details (exact float repr); wall clock never enters, so CI can
        run the matrix twice and compare digests byte for byte.
        """
        payload = {
            "seed": self.seed,
            "geometry": [self.width, self.height, self.num_frames,
                         self.objects, self.reads],
            "cells": [{
                "fault": c.fault, "replicas": c.replicas,
                "repair": c.repair, "passed": c.passed,
                "invariants": c.invariants, "flags": c.flags,
                "schedule": c.schedule_digest, "events": c.chaos_events,
                "details": {k: repr(v)
                            for k, v in sorted(c.details.items())},
            } for c in self.cells],
        }
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()[:32]

    def to_dict(self) -> dict:
        """JSON-ready report: all cells plus the derived verdicts."""
        data = dataclasses.asdict(self)
        data["passed"] = self.passed
        data["matrix_digest"] = self.matrix_digest
        return data


def _storm_victim(store) -> str:
    """The shard holding the most blobs (ties → smallest id).

    Storming the fullest shard maximizes the blast radius, which is
    the point: the invariants must hold on the worst single-domain
    loss the placement allows.
    """
    counts = {shard_id: len(shard.blobs)
              for shard_id, shard in store.pool.shards.items()}
    return min(counts, key=lambda sid: (-counts[sid], sid))


def _repair_outcomes(store, tenant: str, ids: Sequence[str],
                     reads: int, entropy: Sequence[int]) -> Dict[str, int]:
    """``reads`` seeded reads per object; outcome tally."""
    tally = {"clean": 0, "corrected": 0, "concealed": 0, "refused": 0}
    for op, object_id in enumerate(object_id
                                   for object_id in ids
                                   for _ in range(reads)):
        rng = np.random.default_rng([*entropy, op])
        result = store.get(tenant, object_id, rng=rng)
        tally[result.outcome] += 1
    return tally


def run_repair_matrix(faults: Sequence[str] = REPAIR_FAULTS,
                      replicas_axis: Sequence[int] = (1, 2),
                      repair_axis: Sequence[bool] = (False, True),
                      width: int = 48, height: int = 32,
                      num_frames: int = 4, objects: int = 2,
                      reads: int = 3, seed: int = 0,
                      config: Optional[EncoderConfig] = None
                      ) -> RepairMatrixReport:
    """Run the (fault × replication × repair) self-healing matrix.

    Each cell builds a fresh 4-shard pool and replicated store, ingests
    ``objects`` clips, reads every object ``reads`` times under the
    armed fault, optionally runs the repair daemon to convergence, and
    re-reads. Per-cell invariants:

    * always: nothing silently miscorrected; chaos damage that fired
      is visible (uncorrectable blocks / refusals, never clean lies);
    * ``single_shard_storm`` at R≥2: **zero refused reads** — every
      read escalates to an unstormed replica (no data loss);
    * repair arm: the daemon converges within three passes (empty
      backlog, no placement violations), the store ends fully
      replicated on healthy shards, and a storm's quarantined victim
      is drained to empty;
    * ``single_shard_storm`` + repair: the post-repair read round is
      storm-free (the victim no longer serves) — every read clean.

    Same ``seed`` → same fault schedule and the same
    :attr:`RepairMatrixReport.matrix_digest`.
    """
    from ..service.repair import replication_health, run_repair_pass
    from ..service.shards import QUARANTINED, ShardPool
    from ..service.store import VideoObjectStore

    if chaos.active() is not None:
        raise AnalysisError(
            "repair matrix manages its own chaos policies; disarm the "
            "ambient one first")
    unknown = [f for f in faults if f not in REPAIR_FAULTS]
    if unknown:
        raise AnalysisError(
            f"unknown repair fault cells {unknown}; known: "
            f"{list(REPAIR_FAULTS)}")
    if any(r < 1 for r in replicas_axis):
        raise AnalysisError(f"replicas axis must be >= 1: "
                            f"{list(replicas_axis)}")
    config = config or EncoderConfig(crf=30, gop_size=4)
    tenant = "matrix"
    clips = [synthesize_scene(SceneConfig(
        width=width, height=height, num_frames=num_frames,
        seed=seed + index, num_objects=2)) for index in range(objects)]
    cells: List[RepairCell] = []
    for fault in faults:
        for replicas in replicas_axis:
            for repair in repair_axis:
                cell = RepairCell(fault=fault, replicas=replicas,
                                  repair=repair, passed=False)
                cell_seed = _cell_seed(seed, fault,
                                       f"r{replicas}-{repair}")
                scrubbed = fault == "burst_on_scrub"
                pool = ShardPool(count=4, read_retries=1,
                                 quarantine_after=2,
                                 scrub_days=365.0 if scrubbed else None)
                store = VideoObjectStore(pool=pool, config=config,
                                         replicas=replicas)
                ids = store.put_many(tenant, clips)
                if scrubbed:
                    # Age the written keys to the far end of the scrub
                    # interval: the burst lands on cells already
                    # carrying a cycle's worth of drift, and repair
                    # rewrites (which stamp the moved clock) read as
                    # fresh afterwards.
                    pool.advance_all(360.0)
                victim = _storm_victim(store)
                if fault == "single_shard_storm":
                    policy = chaos.ChaosPolicy(
                        seed=cell_seed, shard_storm=victim,
                        device_burst_blocks=3)
                else:
                    # burst_on_scrub draws at a higher rate: uncoded
                    # (t=0) streams return before the device's chaos
                    # seam, so a low rate can leave a cell with no
                    # coded blob faulting at all.
                    rate = 0.7 if fault == "correlated_burst" else 0.9
                    policy = chaos.ChaosPolicy(
                        seed=cell_seed, device_burst_rate=rate,
                        device_burst_blocks=3)
                before = _counters(
                    "storage_miscorrected_blocks_total",
                    "storage_uncorrectable_blocks_total",
                    "chaos_device_storm_total",
                    "chaos_device_burst_total")
                chaos.arm(policy)
                try:
                    storm_tally = _repair_outcomes(
                        store, tenant, ids, reads, [cell_seed, 1])
                    after = _counters(*before)
                    events = (
                        after["chaos_device_storm_total"]
                        - before["chaos_device_storm_total"]
                        + after["chaos_device_burst_total"]
                        - before["chaos_device_burst_total"])
                    uncorrectable = (
                        after["storage_uncorrectable_blocks_total"]
                        - before["storage_uncorrectable_blocks_total"])
                    miscorrected = (
                        after["storage_miscorrected_blocks_total"]
                        - before["storage_miscorrected_blocks_total"])
                    cell.invariants["no_silent_miscorrection"] = (
                        miscorrected == 0)
                    cell.invariants["damage_visible"] = (
                        events == 0 or uncorrectable >= events)
                    if events == 0:
                        cell.flags.append("no-chaos-fault-fired")
                    if fault == "single_shard_storm" and replicas >= 2:
                        cell.invariants["zero_refusals"] = (
                            storm_tally["refused"] == 0)
                        cell.invariants["no_data_loss"] = (
                            sum(storm_tally.values())
                            == len(ids) * reads
                            and storm_tally["refused"] == 0)
                    cell.details.update(
                        victim=victim, storm_outcomes=storm_tally,
                        chaos_fired=events,
                        uncorrectable_blocks=uncorrectable,
                        backlog_after_storm=store.repair.backlog())
                    if repair:
                        reports = []
                        for _ in range(3):
                            report = run_repair_pass(store)
                            reports.append(report.to_dict())
                            if (report.backlog == 0
                                    and report.scan_enqueued == 0
                                    and report.tickets_drained == 0):
                                break
                        health = replication_health(store)
                        cell.invariants["repair_converges"] = (
                            reports[-1]["backlog"] == 0
                            and reports[-1]["scan_enqueued"] == 0
                            and reports[-1]["tickets_drained"] == 0)
                        cell.invariants["fully_replicated"] = (
                            health["under_replicated"] == 0)
                        if fault == "single_shard_storm":
                            victim_shard = store.pool.shard(victim)
                            cell.invariants["victim_drained"] = (
                                victim_shard.health == QUARANTINED
                                and len(victim_shard.blobs) == 0)
                        post_tally = _repair_outcomes(
                            store, tenant, ids, reads, [cell_seed, 2])
                        if fault == "single_shard_storm":
                            cell.invariants["post_repair_clean"] = (
                                post_tally["refused"] == 0
                                and post_tally["concealed"] == 0)
                        cell.details.update(
                            repair_passes=reports, health=health,
                            post_outcomes=post_tally)
                    cells.append(_finish_cell_repair(cell))
                finally:
                    chaos.disarm()
    return RepairMatrixReport(cells=cells, seed=seed, width=width,
                              height=height, num_frames=num_frames,
                              objects=objects, reads=reads)


def _finish_cell_repair(cell: RepairCell) -> RepairCell:
    cell.schedule_digest = chaos.schedule_digest()
    cell.chaos_events = len(chaos.chaos_events())
    cell.passed = all(cell.invariants.values())
    return cell
