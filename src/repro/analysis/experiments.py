"""Experiment runners: one per table/figure in the paper's evaluation.

Each ``run_*`` function reproduces the measurement behind one exhibit:

=============  ===========================================================
Exhibit        Runner
=============  ===========================================================
Figure 3       :func:`run_figure3`  — PSNR vs position of a flipped MB
Figure 8       :func:`run_figure8`  — BCH overhead/capability table
Figure 9       :func:`run_figure9`  — quality loss per equal-storage bin
Figure 10      :func:`run_figure10` — cumulative loss per importance class
Table 1        :func:`run_table1`   — budget-driven ECC assignment
Figure 11      :func:`run_figure11` — density vs quality for 3 designs
Section 5      :func:`run_section5` — encryption-mode compatibility
Section 8      :func:`run_section8` — slices / B-frames / CAVLC ablations
Section 4.3.1  :func:`run_overhead` — analysis cost vs encoding cost
=============  ===========================================================

Absolute numbers depend on the synthetic content and the scaled-down
geometry; the *shapes* (orderings, crossovers, win factors) are the
reproduction targets — see EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codec.config import EncoderConfig, EntropyCoder
from ..codec.decoder import Decoder
from ..codec.encoded import EncodedVideo
from ..codec.encoder import Encoder
from ..codec.types import FrameType
from ..core.assignment import (
    DEFAULT_QUALITY_BUDGET_DB,
    PAPER_TABLE1,
    ClassAssignment,
    QualityCurve,
    assign_schemes,
)
from ..core.classes import (
    class_bit_ranges,
    class_storage_distribution,
    storage_fraction_by_class,
)
from ..core.importance import compute_importance, macroblock_bits
from ..core.pipeline import ApproximateVideoStore
from ..crypto.analysis import ModeVerdict, analyze_all_modes
from ..errors import AnalysisError
from ..metrics.psnr import video_psnr
from ..runtime import (
    KIND_SINGLE_FLIP,
    KIND_STORED_READ,
    ArtifactCache,
    RunStats,
    TrialContext,
    TrialResult,
    TrialSpec,
    run_campaign,
    session_cache,
    spawn_trial_seeds,
)
from ..storage.density import ideal_density, slc_density, uniform_density
from ..storage.ecc import figure8_table
from ..video.frame import VideoSequence
from .binning import equal_storage_bins
from .sweeps import PAPER_ERROR_RATES, SweepResult, quality_sweep


# ----------------------------------------------------------------------
# Figure 3 — damage vs flipped-MB position
# ----------------------------------------------------------------------

@dataclass
class Figure3Result:
    """PSNR of the damaged frame as a function of the flipped MB."""

    psnr_grid: np.ndarray      #: (mb_rows, mb_cols) mean PSNR in dB
    samples_grid: np.ndarray   #: flips contributing per cell
    #: Wall-clock/throughput accounting; excluded from equality so
    #: serial and parallel campaigns compare bitwise equal.
    stats: Optional[RunStats] = field(default=None, compare=False,
                                      repr=False)

    def corners(self) -> Tuple[float, float]:
        """(top-left PSNR, bottom-right PSNR) — the paper's contrast."""
        return float(self.psnr_grid[0, 0]), float(self.psnr_grid[-1, -1])


def run_figure3(video: VideoSequence,
                config: Optional[EncoderConfig] = None,
                max_frames: Optional[int] = None,
                workers: Optional[int] = None,
                cache: Optional[ArtifactCache] = None) -> Figure3Result:
    """Flip one bit per macroblock position in inter-only P-frames and
    measure the affected frame's PSNR against the clean decode.

    Every probe is an independent single-flip trial, fanned out over the
    trial engine; being fully deterministic, the grid is identical at
    any worker count.
    """
    config = config or EncoderConfig()
    cache = cache or session_cache()
    encoded = cache.encode(video, config)
    assert encoded.trace is not None
    clean = cache.clean_decode(video, config)

    mb_rows = encoded.trace.mb_rows
    mb_cols = encoded.trace.mb_cols
    totals = np.zeros((mb_rows, mb_cols))
    counts = np.zeros((mb_rows, mb_cols))

    eligible = [
        frame for frame in encoded.trace.frames
        if frame.frame_type == FrameType.P
    ]
    if max_frames is not None:
        eligible = eligible[:max_frames]
    if not eligible:
        raise AnalysisError("no P-frames to probe; lengthen the video")

    specs = []
    cells = []  # (row, col) per spec, aligned by index
    for frame in eligible:
        for mb in frame.macroblocks:
            if mb.bit_end <= mb.bit_start:
                continue  # skip MBs that emitted no attributable bits
            bit = (mb.bit_start + mb.bit_end) // 2
            specs.append(TrialSpec(
                index=len(specs), kind=KIND_SINGLE_FLIP,
                flip_payload=frame.coded_index, flip_bit=bit,
                measure_frame=frame.display_index))
            cells.append(divmod(mb.mb_index, mb_cols))
    context = TrialContext(
        encoded_blob=EncodedVideo(header=encoded.header,
                                  frames=encoded.frames,
                                  trace=None).serialize(),
        clean=clean,
    )
    results, stats = run_campaign(context, specs, workers=workers)
    for trial, (row, col) in zip(results, cells):
        if not isinstance(trial, TrialResult):
            continue  # quarantined probe: its cell just gets fewer samples
        totals[row, col] += trial.value_db
        counts[row, col] += 1
    grid = np.where(counts > 0, totals / np.maximum(counts, 1), np.nan)
    return Figure3Result(psnr_grid=grid, samples_grid=counts, stats=stats)


# ----------------------------------------------------------------------
# Figure 8 — the ECC menu
# ----------------------------------------------------------------------

def run_figure8(raw_ber: float = 1e-3) -> List[dict]:
    """Overhead and correction capability per BCH scheme."""
    return figure8_table(raw_ber)


# ----------------------------------------------------------------------
# Figure 9 — equal-storage bins
# ----------------------------------------------------------------------

@dataclass
class Figure9Result:
    """Per-bin quality-loss curves plus per-bin max importance."""

    sweeps: List[SweepResult]          #: one per bin, ascending importance
    max_importance_log2: List[float]   #: Figure 9(b)
    rates: Tuple[float, ...]

    def losses_matrix(self) -> np.ndarray:
        """(bins, rates) max-loss matrix in dB."""
        return np.array([s.losses() for s in self.sweeps])


def run_figure9(video: VideoSequence,
                config: Optional[EncoderConfig] = None,
                num_bins: int = 16,
                rates: Sequence[float] = PAPER_ERROR_RATES,
                runs: int = 8,
                rng: Optional[np.random.Generator] = None,
                workers: Optional[int] = None,
                cache: Optional[ArtifactCache] = None) -> Figure9Result:
    """Inject errors into one equal-storage importance bin at a time."""
    config = config or EncoderConfig()
    rng = rng or np.random.default_rng(42)
    cache = cache or session_cache()
    encoded = cache.encode(video, config)
    assert encoded.trace is not None
    clean = cache.clean_decode(video, config)
    importance = compute_importance(encoded.trace)
    mb_bits = macroblock_bits(encoded.trace, importance)
    bins = equal_storage_bins(mb_bits, num_bins)
    sweeps = []
    for bucket in bins:
        sweeps.append(quality_sweep(
            encoded, video, clean, bucket.ranges, rates=rates, runs=runs,
            rng=rng, workers=workers))
    return Figure9Result(
        sweeps=sweeps,
        max_importance_log2=[float(np.log2(max(b.max_importance, 1.0)))
                             for b in bins],
        rates=tuple(rates),
    )


# ----------------------------------------------------------------------
# Figure 10 — importance classes
# ----------------------------------------------------------------------

@dataclass
class Figure10Result:
    """Cumulative loss per importance class + storage distribution."""

    class_indices: List[int]
    curves: List[QualityCurve]              #: cumulative, Figure 10(a)
    cumulative_storage: List[float]         #: Figure 10(b)
    storage_fractions: Dict[int, float]     #: per-class (non-cumulative)
    rates: Tuple[float, ...]


def run_figure10(video: VideoSequence,
                 config: Optional[EncoderConfig] = None,
                 rates: Sequence[float] = PAPER_ERROR_RATES,
                 runs: int = 8,
                 rng: Optional[np.random.Generator] = None,
                 workers: Optional[int] = None,
                 cache: Optional[ArtifactCache] = None
                 ) -> Figure10Result:
    """Cumulative quality loss when all classes <= i are exposed."""
    config = config or EncoderConfig()
    rng = rng or np.random.default_rng(43)
    cache = cache or session_cache()
    encoded = cache.encode(video, config)
    assert encoded.trace is not None
    clean = cache.clean_decode(video, config)
    importance = compute_importance(encoded.trace)
    mb_bits = macroblock_bits(encoded.trace, importance)
    distribution = class_storage_distribution(mb_bits)
    class_indices = [entry.class_index for entry in distribution]

    curves: List[QualityCurve] = []
    cumulative_bits = 0
    total_bits = sum(entry.bits for entry in distribution)
    cumulative_storage: List[float] = []
    for entry in distribution:
        ranges = class_bit_ranges(mb_bits, entry.class_index)
        sweep = quality_sweep(encoded, video, clean, ranges, rates=rates,
                              runs=runs, rng=rng, workers=workers)
        curves.append(QualityCurve(
            class_index=entry.class_index,
            points={p.rate: -p.max_loss_db for p in sweep.points},
        ))
        cumulative_bits += entry.bits
        cumulative_storage.append(cumulative_bits / total_bits)
    return Figure10Result(
        class_indices=class_indices,
        curves=curves,
        cumulative_storage=cumulative_storage,
        storage_fractions=storage_fraction_by_class(mb_bits),
        rates=tuple(rates),
    )


def run_figure10_suite(videos: Sequence[Tuple[str, VideoSequence]],
                       config: Optional[EncoderConfig] = None,
                       rates: Sequence[float] = PAPER_ERROR_RATES,
                       runs: int = 8,
                       rng: Optional[np.random.Generator] = None,
                       workers: Optional[int] = None
                       ) -> Figure10Result:
    """Figure 10 aggregated over a video suite, as the paper does.

    Per class and rate the suite-worst (maximum) loss is kept — the
    paper's conservative accounting — and storage distributions are
    merged by bit count across all videos.
    """
    if not videos:
        raise AnalysisError("empty video suite")
    rng = rng or np.random.default_rng(49)
    per_video = [run_figure10(video, config, rates=rates, runs=runs,
                              rng=rng, workers=workers)
                 for _name, video in videos]

    all_classes = sorted({index for result in per_video
                          for index in result.class_indices})
    merged_curves: List[QualityCurve] = []
    for class_index in all_classes:
        points: Dict[float, float] = {}
        for rate in rates:
            losses = []
            for result in per_video:
                # Use this video's largest class <= class_index (its
                # cumulative curve is defined at every class it has).
                candidates = [c for c in result.curves
                              if c.class_index <= class_index]
                if candidates:
                    losses.append(candidates[-1].loss_at(rate))
            points[rate] = -max(losses) if losses else 0.0
        merged_curves.append(QualityCurve(class_index=class_index,
                                          points=points))

    # Merge storage by absolute bits.
    bits_by_class: Dict[int, float] = {}
    total_bits = 0.0
    for result, (_name, _video) in zip(per_video, videos):
        video_total = sum(result.storage_fractions.values())
        # storage_fractions are normalized per video; weight by the
        # video's payload so bigger videos count more.
        weight = 1.0  # equal weighting unless payload sizes differ a lot
        for index, fraction in result.storage_fractions.items():
            bits_by_class[index] = (bits_by_class.get(index, 0.0)
                                    + weight * fraction / video_total)
        total_bits += weight
    storage_fractions = {index: value / total_bits
                         for index, value in bits_by_class.items()}
    cumulative = []
    running = 0.0
    for index in all_classes:
        running += storage_fractions.get(index, 0.0)
        cumulative.append(running)
    return Figure10Result(
        class_indices=all_classes,
        curves=merged_curves,
        cumulative_storage=cumulative,
        storage_fractions=storage_fractions,
        rates=tuple(rates),
    )


# ----------------------------------------------------------------------
# Table 1 — ECC assignment
# ----------------------------------------------------------------------

def run_table1(figure10: Figure10Result,
               budget_db: float = DEFAULT_QUALITY_BUDGET_DB
               ) -> ClassAssignment:
    """Derive the assignment from measured class curves (Section 7.2).

    Pure post-processing of a :func:`run_figure10` result: the Monte
    Carlo work already happened on the trial engine, so this step has
    no trials (and no ``workers`` knob) of its own.
    """
    return assign_schemes(figure10.curves, figure10.storage_fractions,
                          budget_db=budget_db)


# ----------------------------------------------------------------------
# Figure 11 — overall storage gains
# ----------------------------------------------------------------------

@dataclass
class DesignPoint:
    """One (density, quality) point of Figure 11."""

    design: str
    crf: int
    cells_per_pixel: float
    psnr_db: float


@dataclass
class Figure11Result:
    """Density/quality points for Uniform / Variable / Ideal, per CRF."""

    points: List[DesignPoint]
    #: Headline metrics at the most error-intolerant setting (lowest CRF).
    ecc_overhead_reduction: float
    density_gain_vs_uniform: float
    density_gain_vs_slc: float
    worst_quality_loss_db: float

    def by_design(self, design: str) -> List[DesignPoint]:
        return [p for p in self.points if p.design == design]


def _slim_stored(stored):
    """A copy of a StoredVideo without the encoding trace or timings.

    The read path never touches the trace, and it dominates the pickle
    shipped to worker processes. The importance analysis wall-clock is
    zeroed too: the campaign journal folds this object's pickle into
    the campaign digest, and a timing that changes every run would
    orphan the journal on resume (two identical campaigns would look
    like different ones).
    """
    from dataclasses import replace

    slim = replace(stored,
                   importance=replace(stored.importance,
                                      analysis_seconds=0.0))
    encoded = slim.protected.encoded
    if encoded.trace is None:
        return slim
    slim_encoded = EncodedVideo(header=encoded.header,
                                frames=encoded.frames, trace=None)
    return replace(slim,
                   protected=replace(slim.protected,
                                     encoded=slim_encoded))


def run_figure11(videos: Sequence[Tuple[str, VideoSequence]],
                 crfs: Sequence[int] = (16, 20, 24),
                 assignment: ClassAssignment = PAPER_TABLE1,
                 gop_size: int = 12,
                 runs: int = 5,
                 rng: Optional[np.random.Generator] = None,
                 workers: Optional[int] = None) -> Figure11Result:
    """The headline experiment: uniform vs variable vs ideal correction.

    For each CRF, every suite video is encoded, analyzed, partitioned,
    and stored; densities are aggregated over the suite and quality is
    the suite-mean PSNR (with the variable design's loss taken as the
    worst Monte Carlo run, per the paper's conservative accounting).
    The per-video storage reads are independent stored-read trials on
    the trial engine; each owns a spawned seed, so results are bitwise
    identical at any worker count.
    """
    rng = rng or np.random.default_rng(44)
    points: List[DesignPoint] = []
    headline: Dict[str, float] = {}
    for crf in sorted(crfs):
        config = EncoderConfig(crf=crf, gop_size=gop_size)
        store = ApproximateVideoStore(config=config, assignment=assignment)
        uniform_cells = variable_cells = ideal_cells = slc_cells = 0.0
        pixels = 0
        clean_psnrs: List[float] = []
        approx_psnrs: List[float] = []
        overhead_bits_uniform = overhead_bits_variable = 0.0
        for _name, video in videos:
            stored = store.put(video)
            clean = store.reconstruct(stored)
            clean_value = video_psnr(video, clean)
            clean_psnrs.append(clean_value)
            seeds = spawn_trial_seeds(rng, runs)
            context = TrialContext(reference=video, store=store,
                                   stored=_slim_stored(stored))
            specs = [TrialSpec(index=i, kind=KIND_STORED_READ,
                               seed=seeds[i])
                     for i in range(runs)]
            results, _stats = run_campaign(context, specs, workers=workers)
            worst = min([clean_value]
                        + [trial.value_db for trial in results
                           if isinstance(trial, TrialResult)])
            approx_psnrs.append(worst)
            report = stored.density()
            total_bits = report.payload_bits + report.header_bits
            uniform = uniform_density(total_bits, video.total_pixels)
            ideal = ideal_density(total_bits, video.total_pixels)
            slc = slc_density(total_bits, video.total_pixels)
            uniform_cells += uniform.cells
            variable_cells += report.cells
            ideal_cells += ideal.cells
            slc_cells += slc.cells
            pixels += video.total_pixels
            overhead_bits_uniform += uniform.stored_bits - total_bits
            overhead_bits_variable += report.stored_bits - total_bits
        clean_mean = float(np.mean(clean_psnrs))
        approx_mean = float(np.mean(approx_psnrs))
        points.append(DesignPoint("uniform", crf, uniform_cells / pixels,
                                  clean_mean))
        points.append(DesignPoint("variable", crf, variable_cells / pixels,
                                  approx_mean))
        points.append(DesignPoint("ideal", crf, ideal_cells / pixels,
                                  clean_mean))
        if crf == min(crfs):  # most error-intolerant setting
            headline["reduction"] = 1.0 - (overhead_bits_variable
                                           / overhead_bits_uniform)
            headline["vs_uniform"] = uniform_cells / variable_cells - 1.0
            headline["vs_slc"] = slc_cells / variable_cells
            headline["loss"] = clean_mean - approx_mean
    return Figure11Result(
        points=points,
        ecc_overhead_reduction=headline["reduction"],
        density_gain_vs_uniform=headline["vs_uniform"],
        density_gain_vs_slc=headline["vs_slc"],
        worst_quality_loss_db=headline["loss"],
    )


# ----------------------------------------------------------------------
# Approximation vs compression — the paper's central thesis
# ----------------------------------------------------------------------

@dataclass
class ApproxVsCompressResult:
    """Equal-storage comparison of the two ways to save cells.

    ``approx_*`` is VideoApp's variable correction at the base CRF;
    ``compress_*`` is uniform (precise) correction at the smallest CRF
    whose cell footprint fits within the approximate design's. The
    paper's thesis — "quality/density points that neither compression
    nor approximation can achieve alone" — holds when approx quality
    exceeds compress quality at no more storage.
    """

    base_crf: int
    compress_crf: int
    approx_cells_per_pixel: float
    compress_cells_per_pixel: float
    approx_psnr_db: float
    compress_psnr_db: float

    @property
    def approximation_wins(self) -> bool:
        return (self.approx_psnr_db > self.compress_psnr_db
                and self.approx_cells_per_pixel
                <= self.compress_cells_per_pixel * 1.001)


def run_approximation_vs_compression(
        video: VideoSequence,
        base_crf: int = 22,
        gop_size: int = 12,
        assignment: Optional[ClassAssignment] = None,
        runs: int = 4,
        max_crf_search: int = 20,
        budget_db: float = DEFAULT_QUALITY_BUDGET_DB,
        rng: Optional[np.random.Generator] = None
        ) -> ApproxVsCompressResult:
    """Answer the paper's Section 8 question — "can approximation bring
    higher objectively measured benefits compared to deterministic
    video compression?" — on one video.

    The approximate design stores the base-CRF encode with variable ECC
    (worst Monte Carlo quality over ``runs`` reads); by default the
    class assignment is derived from this content's own measured
    Figure-10 curves — the paper's methodology, which matters here
    because damage per flip depends on video size, so thresholds tuned
    for 500-frame 720p footage (``PAPER_TABLE1``) are too permissive for
    short clips. The compression design raises CRF until the uniformly
    protected encode fits in no more cells, then decodes cleanly.
    """
    from ..core.pipeline import ApproximateVideoStore

    rng = rng or np.random.default_rng(53)
    config = EncoderConfig(crf=base_crf, gop_size=gop_size)
    if assignment is None:
        curves = run_figure10(video, config, rates=(1e-8, 1e-6, 1e-4, 1e-3),
                              runs=runs, rng=rng)
        assignment = assign_schemes(curves.curves,
                                    curves.storage_fractions,
                                    budget_db=budget_db)
    store = ApproximateVideoStore(config=config, assignment=assignment)
    stored = store.put(video)
    approx_report = stored.density()
    worst = video_psnr(video, store.reconstruct(stored))
    for _run in range(runs):
        worst = min(worst, video_psnr(video, store.read(stored, rng=rng)))

    # Walk the compression rate-distortion curve (uniform protection)
    # until it fits inside the approximate design's cell budget, then
    # interpolate quality at *exactly* that budget — CRF is discrete but
    # the comparison must be at equal storage.
    decoder = Decoder()
    points = []  # (cells, psnr, crf), cells decreasing with crf
    compress_crf = base_crf
    for candidate in range(base_crf, min(base_crf + max_crf_search, 51) + 1):
        encoded = Encoder(EncoderConfig(crf=candidate,
                                        gop_size=gop_size)).encode(video)
        report = uniform_density(encoded.total_bits, video.total_pixels)
        quality = video_psnr(video, decoder.decode(encoded))
        points.append((report.cells, quality, candidate))
        if report.cells <= approx_report.cells:
            compress_crf = candidate
            break
    else:
        raise AnalysisError(
            f"no CRF within +{max_crf_search} matches the approximate "
            f"design's footprint; raise max_crf_search"
        )
    target = approx_report.cells
    if len(points) == 1 or points[-1][0] >= target:
        compress_quality = points[-1][1]
    else:
        (cells_hi, quality_hi, _), (cells_lo, quality_lo, _) = \
            points[-2], points[-1]
        weight = (target - cells_lo) / max(cells_hi - cells_lo, 1e-9)
        compress_quality = quality_lo + weight * (quality_hi - quality_lo)
    return ApproxVsCompressResult(
        base_crf=base_crf,
        compress_crf=compress_crf,
        approx_cells_per_pixel=approx_report.cells_per_pixel,
        compress_cells_per_pixel=target / video.total_pixels,
        approx_psnr_db=worst,
        compress_psnr_db=compress_quality,
    )


# ----------------------------------------------------------------------
# Section 5 — encryption
# ----------------------------------------------------------------------

def run_section5() -> Dict[str, ModeVerdict]:
    """Mode-by-mode requirements scorecard (ECB/CBC/OFB/CTR)."""
    return analyze_all_modes()


# ----------------------------------------------------------------------
# Section 8 — encoder-knob ablations
# ----------------------------------------------------------------------

@dataclass
class AblationPoint:
    """One encoder variant's approximability profile."""

    name: str
    payload_bits: int
    unreferenced_fraction: float   #: storage in MBs of importance ~1
    low_class_fraction: float      #: storage in classes 0-2 (no ECC)
    loss_at_probe_db: float        #: max loss, probe rate over all bits


def run_section8(video: VideoSequence,
                 base_crf: int = 24,
                 gop_size: int = 12,
                 probe_rate: float = 1e-5,
                 runs: int = 5,
                 rng: Optional[np.random.Generator] = None,
                 workers: Optional[int] = None) -> List[AblationPoint]:
    """Slices, B-frames, and CAVLC vs the conservative baseline."""
    rng = rng or np.random.default_rng(45)
    cache = session_cache()
    variants = [
        ("baseline (CABAC, 1 slice)", EncoderConfig(crf=base_crf,
                                                    gop_size=gop_size)),
        ("2 slices", EncoderConfig(crf=base_crf, gop_size=gop_size,
                                   slices=2)),
        ("B-frames x2", EncoderConfig(crf=base_crf, gop_size=gop_size,
                                      bframes=2)),
        ("CAVLC", EncoderConfig(crf=base_crf, gop_size=gop_size,
                                entropy_coder=EntropyCoder.CAVLC)),
    ]
    out: List[AblationPoint] = []
    for name, config in variants:
        encoded = cache.encode(video, config)
        assert encoded.trace is not None
        clean = cache.clean_decode(video, config)
        importance = compute_importance(encoded.trace)
        mb_bits = macroblock_bits(encoded.trace, importance)
        total = sum(mb.bit_end - mb.bit_start for mb in mb_bits)
        unreferenced = sum(
            mb.bit_end - mb.bit_start for mb in mb_bits
            if mb.importance <= 1.0 + 1e-9)
        fractions = storage_fraction_by_class(mb_bits)
        low = sum(fraction for index, fraction in fractions.items()
                  if index <= 2)
        sweep = quality_sweep(encoded, video, clean, None,
                              rates=(probe_rate,), runs=runs, rng=rng,
                              workers=workers)
        out.append(AblationPoint(
            name=name,
            payload_bits=encoded.payload_bits,
            unreferenced_fraction=unreferenced / total,
            low_class_fraction=low,
            loss_at_probe_db=sweep.points[0].max_loss_db,
        ))
    return out


# ----------------------------------------------------------------------
# Section 6.1 — metric agreement
# ----------------------------------------------------------------------

@dataclass
class MetricAgreementResult:
    """Rank agreement between PSNR and the other quality metrics.

    The paper reports only PSNR but verified its methodology "relates
    well" to SSIM, MS-SSIM, and VIFP for bit-flip distortions; this
    experiment quantifies that with Spearman rank correlations across a
    set of independently damaged decodes.
    """

    trials: int
    psnr_values: List[float]
    metric_values: Dict[str, List[float]]
    spearman: Dict[str, float]


def _spearman(a: Sequence[float], b: Sequence[float]) -> float:
    ranks_a = np.argsort(np.argsort(a)).astype(float)
    ranks_b = np.argsort(np.argsort(b)).astype(float)
    if np.std(ranks_a) == 0 or np.std(ranks_b) == 0:
        return 1.0
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def run_metric_agreement(video: VideoSequence,
                         config: Optional[EncoderConfig] = None,
                         rates: Sequence[float] = (1e-5, 1e-4, 1e-3),
                         trials_per_rate: int = 4,
                         rng: Optional[np.random.Generator] = None
                         ) -> MetricAgreementResult:
    """Damage the video at several rates; score with all four metrics."""
    from ..metrics import video_ms_ssim, video_ssim, video_vifp
    from ..storage.injection import inject_into_payloads

    config = config or EncoderConfig()
    rng = rng or np.random.default_rng(50)
    encoder = Encoder(config)
    decoder = Decoder()
    encoded = encoder.encode(video)
    clean = decoder.decode(encoded)
    payloads = encoded.frame_payloads()

    psnr_values: List[float] = []
    others: Dict[str, List[float]] = {"ssim": [], "ms_ssim": [], "vifp": []}
    for rate in rates:
        for _trial in range(trials_per_rate):
            result = inject_into_payloads(payloads, rate, rng,
                                          force_at_least_one=True)
            damaged = decoder.decode(encoded.with_payloads(result.payloads))
            psnr_values.append(video_psnr(clean, damaged))
            others["ssim"].append(video_ssim(clean, damaged))
            others["ms_ssim"].append(video_ms_ssim(clean, damaged))
            others["vifp"].append(video_vifp(clean, damaged))
    spearman = {name: _spearman(psnr_values, values)
                for name, values in others.items()}
    return MetricAgreementResult(
        trials=len(psnr_values),
        psnr_values=psnr_values,
        metric_values=others,
        spearman=spearman,
    )


# ----------------------------------------------------------------------
# Section 7.3 — quality vs approximability
# ----------------------------------------------------------------------

@dataclass
class CrfApproximabilityPoint:
    """How approximable one CRF setting's output is."""

    crf: int
    payload_bits: int
    clean_psnr_db: float
    loss_at_probe_db: float  #: max loss with all bits exposed at the probe


def run_crf_approximability(video: VideoSequence,
                            crfs: Sequence[int] = (16, 20, 24),
                            gop_size: int = 12,
                            probe_rate: float = 1e-5,
                            runs: int = 5,
                            rng: Optional[np.random.Generator] = None,
                            workers: Optional[int] = None
                            ) -> List[CrfApproximabilityPoint]:
    """The paper's counter-intuitive Section 7.3 finding.

    Higher-quality encodes carry *less* information per bit, yet are
    slightly less approximable: larger frames mean more flips per frame
    at a fixed error rate, and each flip still poisons its whole frame
    under CABAC.
    """
    rng = rng or np.random.default_rng(47)
    cache = session_cache()
    points = []
    for crf in sorted(crfs):
        config = EncoderConfig(crf=crf, gop_size=gop_size)
        encoded = cache.encode(video, config)
        clean = cache.clean_decode(video, config)
        sweep = quality_sweep(encoded, video, clean, None,
                              rates=(probe_rate,), runs=runs, rng=rng,
                              workers=workers)
        points.append(CrfApproximabilityPoint(
            crf=crf,
            payload_bits=encoded.payload_bits,
            clean_psnr_db=video_psnr(video, clean),
            loss_at_probe_db=sweep.points[0].max_loss_db,
        ))
    return points


# ----------------------------------------------------------------------
# GOP-size ablation — I-frame checkpoints (Section 2.3.1)
# ----------------------------------------------------------------------

@dataclass
class GopAblationPoint:
    """One I-frame period's storage/containment trade."""

    gop_size: int
    payload_bits: int
    max_importance: float
    loss_at_probe_db: float


def run_gop_ablation(video: VideoSequence,
                     gop_sizes: Sequence[int] = (4, 8, 16),
                     crf: int = 24,
                     probe_rate: float = 1e-4,
                     runs: int = 4,
                     rng: Optional[np.random.Generator] = None,
                     workers: Optional[int] = None
                     ) -> List[GopAblationPoint]:
    """The checkpointing trade the paper states in Section 2.3.1:
    I-frames "limit the propagation of eventual errors, at the expense
    of extra storage". Shorter GOPs cost bits (more intra frames) but
    cap every macroblock's importance — and hence the damage a flip can
    do — at the GOP boundary.
    """
    rng = rng or np.random.default_rng(52)
    cache = session_cache()
    points = []
    for gop_size in sorted(gop_sizes):
        config = EncoderConfig(crf=crf, gop_size=gop_size)
        encoded = cache.encode(video, config)
        assert encoded.trace is not None
        clean = cache.clean_decode(video, config)
        importance = compute_importance(encoded.trace)
        sweep = quality_sweep(encoded, video, clean, None,
                              rates=(probe_rate,), runs=runs, rng=rng,
                              workers=workers)
        points.append(GopAblationPoint(
            gop_size=gop_size,
            payload_bits=encoded.payload_bits,
            max_importance=importance.max_importance(),
            loss_at_probe_db=sweep.points[0].max_loss_db,
        ))
    return points


# ----------------------------------------------------------------------
# Substrate ablation — levels/cell and scrub interval (Section 6.2)
# ----------------------------------------------------------------------

@dataclass
class SubstratePoint:
    """One MLC design point and the ECC it needs for precise storage."""

    levels: int
    scrub_days: float
    raw_ber: float
    bits_per_cell: int
    required_scheme: str       #: weakest scheme reaching 1e-16
    net_bits_per_cell: float   #: bits/cell after that scheme's overhead

    @property
    def density_vs_slc(self) -> float:
        return self.net_bits_per_cell


def run_substrate_ablation(levels_options: Sequence[int] = (4, 8, 16),
                           scrub_days_options: Sequence[float] = (7.0, 90.0,
                                                                  365.0)
                           ) -> List[SubstratePoint]:
    """Why the paper's 8-level / 3-month substrate is the design point.

    For each (levels, scrub interval): the raw BER of a cell population
    with the paper-calibrated write noise, the weakest Figure 8 scheme
    that still reaches precise storage (1e-16), and the *net* density
    after paying that scheme's overhead. Denser cells or lazier
    scrubbing raise the raw BER until no menu scheme suffices.
    """
    from ..storage.ecc import SCHEME_MENU
    from ..storage.mlc import MLCCellModel

    points = []
    for levels in levels_options:
        for scrub_days in scrub_days_options:
            model = MLCCellModel(levels=levels,
                                 scrub_interval_days=scrub_days)
            raw = model.raw_bit_error_rate()
            chosen = None
            for scheme in sorted((s for s in SCHEME_MENU if s.t > 0),
                                 key=lambda s: s.t):
                if scheme.block_failure_rate(raw) <= 1e-16:
                    chosen = scheme
                    break
            if chosen is None:
                points.append(SubstratePoint(
                    levels=levels, scrub_days=scrub_days, raw_ber=raw,
                    bits_per_cell=model.bits_per_cell,
                    required_scheme="(none sufficient)",
                    net_bits_per_cell=0.0))
                continue
            net = model.bits_per_cell / (1.0 + chosen.overhead)
            points.append(SubstratePoint(
                levels=levels, scrub_days=scrub_days, raw_ber=raw,
                bits_per_cell=model.bits_per_cell,
                required_scheme=chosen.name,
                net_bits_per_cell=net))
    return points


# ----------------------------------------------------------------------
# Section 4.3.1 — analysis overhead
# ----------------------------------------------------------------------

@dataclass
class OverheadResult:
    encode_seconds: float
    analysis_seconds: float

    @property
    def ratio(self) -> float:
        """Analysis time relative to encoding time (paper: 2-3%)."""
        return self.analysis_seconds / self.encode_seconds


def run_overhead(video: VideoSequence,
                 config: Optional[EncoderConfig] = None) -> OverheadResult:
    """Time the importance analysis against the encode it follows."""
    config = config or EncoderConfig()
    start = time.perf_counter()
    encoded = Encoder(config).encode(video)
    encode_seconds = time.perf_counter() - start
    assert encoded.trace is not None
    importance = compute_importance(encoded.trace)
    return OverheadResult(encode_seconds=encode_seconds,
                          analysis_seconds=importance.analysis_seconds)
