"""Error-rate sweeps: the paper's Monte Carlo quality measurements.

A sweep injects bit flips into a chosen subset of a video's payload bits
at each error rate, decodes, and measures the quality change against the
clean coded video — the engine behind Figures 9 and 10. It follows the
paper's Section 6.4 methodology:

* per (rate, run), the flip count is binomial over the targeted bits;
* at very low rates one flip is forced and the measured loss is scaled
  by the probability that any flip would occur;
* per video, the *maximum* loss across runs is reported (the paper's
  deliberately conservative choice), alongside the mean.

Trials execute on :mod:`repro.runtime`: every (rate, run) pair becomes
an independent :class:`~repro.runtime.TrialSpec` with its own spawned
RNG seed, so results are bitwise identical whether the campaign runs
serially (``workers=0``) or over any number of worker processes.

The engine's fault tolerance surfaces here as *skip-and-scale*
aggregation: trials quarantined by the executor (watchdog timeout,
worker crash) are excluded from a rate's statistics instead of aborting
the sweep — each :class:`SweepPoint` reports how many of its runs
survived — and a ``journal`` path makes the whole sweep resumable after
an interruption, bitwise identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError
from ..codec.decoder import Decoder
from ..codec.encoded import EncodedVideo
from ..metrics.psnr import video_psnr
from ..runtime import (
    RunStats,
    TrialContext,
    TrialResult,
    build_sweep_specs,
    run_campaign,
)
from ..storage.injection import rare_event_scale
from ..video.frame import VideoSequence
from .binning import BitRange

#: The paper's error-probability axis (Figures 9 and 10).
PAPER_ERROR_RATES = (1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2)


@dataclass
class SweepPoint:
    """Aggregated quality outcome at one error rate."""

    rate: float
    mean_change_db: float  #: mean quality change (negative = loss)
    max_loss_db: float     #: worst loss across runs (positive dB)
    mean_flips: float
    runs: int              #: trials that survived (failures excluded)
    forced_fraction: float
    failed: int = 0        #: trials quarantined by the executor


@dataclass
class SweepResult:
    """One full error-rate sweep."""

    points: List[SweepPoint]
    targeted_bits: int
    #: Wall-clock/throughput accounting; excluded from equality so
    #: serial and parallel runs of one campaign compare bitwise equal.
    stats: Optional[RunStats] = field(default=None, compare=False,
                                      repr=False)

    def losses(self) -> List[float]:
        return [p.max_loss_db for p in self.points]


def quality_sweep(encoded: EncodedVideo,
                  reference: VideoSequence,
                  clean_decoded: VideoSequence,
                  ranges: Optional[Sequence[BitRange]],
                  rates: Sequence[float] = PAPER_ERROR_RATES,
                  runs: int = 10,
                  rng: Optional[np.random.Generator] = None,
                  decoder: Optional[Decoder] = None,
                  workers: Optional[int] = None,
                  timeout: Optional[float] = None,
                  max_retries: Optional[int] = None,
                  journal: Union[str, Path, None] = None,
                  progress: Optional[bool] = None) -> SweepResult:
    """Sweep error rates over the given bit ranges.

    Args:
        encoded: the clean encoded video.
        reference: the raw original (quality is PSNR against this).
        clean_decoded: error-free decode of ``encoded``.
        ranges: injection targets as (frame, start bit, end bit); None
            targets every payload bit.
        rates: error probabilities to sweep.
        runs: Monte Carlo repetitions per rate.
        rng: randomness source (seeded for reproducibility); per-trial
            streams are spawned from it, so a fixed seed gives bitwise
            identical results at any worker count.
        workers: worker processes (None = ``REPRO_NUM_WORKERS``,
            0 = serial).
        timeout: per-trial wall-clock budget in seconds (None =
            ``REPRO_TRIAL_TIMEOUT``, 0 = no watchdog).
        max_retries: crash-retry budget before a trial is quarantined
            (None = ``REPRO_MAX_RETRIES``).
        journal: checkpoint file path; an interrupted sweep re-invoked
            with the same journal resumes, re-running only missing
            trials and producing bitwise-identical results.
        progress: live terminal status line (None = ``REPRO_PROGRESS``);
            observational only, never changes the numbers.
    """
    del decoder  # retained for API compatibility; workers own decoders
    if runs < 1:
        raise AnalysisError(f"runs must be >= 1, got {runs}")
    rng = rng or np.random.default_rng(0)
    payloads = encoded.frame_payloads()
    if ranges is None:
        ranges = [(index, 0, 8 * len(payload))
                  for index, payload in enumerate(payloads)
                  if len(payload)]
    targeted_bits = sum(end - start for _f, start, end in ranges)
    clean_psnr = video_psnr(reference, clean_decoded)

    context = TrialContext(
        encoded_blob=_without_trace(encoded).serialize(),
        reference=reference,
        clean_psnr=clean_psnr,
        ranges_table=(tuple(ranges),),
    )
    specs = build_sweep_specs(rates, runs, rng, ranges_ref=0,
                              force_at_least_one=True)
    results, stats = run_campaign(context, specs, workers=workers,
                                  timeout=timeout, max_retries=max_retries,
                                  journal=journal, progress=progress)

    points: List[SweepPoint] = []
    for rate_index, rate in enumerate(rates):
        trial_slice = results[rate_index * runs:(rate_index + 1) * runs]
        survivors = [t for t in trial_slice if isinstance(t, TrialResult)]
        failed = len(trial_slice) - len(survivors)
        if not survivors:
            # every run at this rate was quarantined: keep the point so
            # the sweep's shape is preserved, but mark it empty
            points.append(SweepPoint(
                rate=rate, mean_change_db=float("nan"), max_loss_db=0.0,
                mean_flips=0.0, runs=0, forced_fraction=0.0,
                failed=failed))
            continue
        changes: List[float] = []
        flips: List[int] = []
        forced = 0
        for trial in survivors:
            change = trial.value_db
            if trial.forced:
                forced += 1
                change *= rare_event_scale(targeted_bits, rate)
            changes.append(change)
            flips.append(trial.num_flips)
        points.append(SweepPoint(
            rate=rate,
            mean_change_db=float(np.mean(changes)),
            max_loss_db=float(max(0.0, -min(changes))),
            mean_flips=float(np.mean(flips)),
            runs=len(survivors),
            forced_fraction=forced / len(survivors),
            failed=failed,
        ))
    return SweepResult(points=points, targeted_bits=targeted_bits,
                       stats=stats)


def _without_trace(encoded: EncodedVideo) -> EncodedVideo:
    """A trace-free view for shipping to workers (decode ignores it)."""
    if encoded.trace is None:
        return encoded
    return EncodedVideo(header=encoded.header, frames=encoded.frames,
                        trace=None)
