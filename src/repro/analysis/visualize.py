"""Terminal visualization of per-macroblock quantities.

ASCII heat maps for the two spatial stories the paper tells: where a
corrupted decode is damaged (Sections 3 and 7.1), and how VideoApp's
importance is laid out across a frame (Figure 6's strictly decreasing
scan-order structure). One character per macroblock, darker = more.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..video.frame import MACROBLOCK_SIZE, VideoSequence

#: Light-to-dark ramp; index 0 renders "no signal".
SHADES = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    if peak <= 0 or value <= 0:
        return SHADES[0]
    index = 1 + int((value / peak) * (len(SHADES) - 2))
    return SHADES[min(index, len(SHADES) - 1)]


def macroblock_error_map(clean: np.ndarray, damaged: np.ndarray,
                         saturation: float = 36.0) -> str:
    """ASCII heat map of per-MB mean absolute pixel error.

    ``saturation`` is the error level (in pixel values) that maps to the
    darkest shade; anything at or above it renders the same.
    """
    if clean.shape != damaged.shape:
        raise AnalysisError(
            f"frame shapes differ: {clean.shape} vs {damaged.shape}"
        )
    size = MACROBLOCK_SIZE
    rows = clean.shape[0] // size
    cols = clean.shape[1] // size
    lines = []
    for row in range(rows):
        cells = []
        for col in range(cols):
            block_clean = clean[size * row:size * (row + 1),
                                size * col:size * (col + 1)].astype(int)
            block_damaged = damaged[size * row:size * (row + 1),
                                    size * col:size * (col + 1)].astype(int)
            error = float(np.abs(block_clean - block_damaged).mean())
            cells.append(_shade(error, saturation))
        lines.append("".join(cells))
    return "\n".join(lines)


def video_error_maps(clean: VideoSequence, damaged: VideoSequence,
                     frames: Optional[Sequence[int]] = None,
                     saturation: float = 36.0) -> str:
    """Error maps for several frames, labelled and stacked."""
    if frames is None:
        frames = range(len(clean))
    sections = []
    for index in frames:
        sections.append(f"frame {index}:")
        sections.append(macroblock_error_map(clean[index], damaged[index],
                                             saturation))
    return "\n".join(sections)


def importance_map(values: np.ndarray, mb_cols: int,
                   log_scale: bool = True) -> str:
    """ASCII heat map of one frame's per-MB importance.

    ``values`` is a flat array of the frame's MB importances in scan
    order. The log scale matches the paper's logarithmic importance
    classes; importance 1 (a leaf) renders as the lightest non-empty
    shade.
    """
    flat = np.asarray(values, dtype=float).reshape(-1)
    if flat.size % mb_cols:
        raise AnalysisError(
            f"{flat.size} values do not tile into rows of {mb_cols}"
        )
    if np.any(flat < 1.0 - 1e-9):
        raise AnalysisError("importance values must be >= 1")
    scaled = np.log2(flat + 1.0) if log_scale else flat
    peak = float(scaled.max())
    grid = scaled.reshape(-1, mb_cols)
    lines = []
    for row in grid:
        lines.append("".join(_shade(v, peak) for v in row))
    return "\n".join(lines)
