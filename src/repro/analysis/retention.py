"""Retention sweep: quality over the device lifetime, per mitigation.

The paper evaluates storage quality at one read point (the scrub
interval). This exhibit extends the axis: the same stored video is read
back at a grid of retention times, under a grid of *mitigation
configurations* — scrubbing interval, re-read retry depth, and decoder
error concealment — so the lifetime story becomes measurable:

* unmitigated quality degrades monotonically with retention time
  (drift widens, raw BER climbs, uncorrectable blocks multiply);
* each mitigation claws measurable quality back at long retention, and
  the per-mitigation ``storage_*`` / ``decode_*`` counters show *why*
  (how many scrub rewrites were spent, how many re-reads recovered a
  block, how many slices were concealed).

Every (config, t_days, run) cell is an independent
:data:`~repro.runtime.trials.KIND_RETENTION_READ` trial on the campaign
engine, so sweeps inherit the watchdog, crash recovery, journaling, and
parallelism of every other exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..codec.config import EncoderConfig
from ..core.assignment import PAPER_TABLE1, ClassAssignment
from ..core.pipeline import ApproximateVideoStore
from ..errors import AnalysisError
from ..metrics.psnr import video_psnr
from ..obs import metrics as obs_metrics
from ..runtime import (
    KIND_RETENTION_READ,
    RunStats,
    TrialContext,
    TrialResult,
    TrialSpec,
    run_campaign,
    spawn_trial_seeds,
)
from ..storage.ecc import PRECISE_SCHEME, scheme_by_name
from ..storage.mlc import MLCCellModel
from ..video.frame import VideoSequence

#: Retention grid for the headline exhibit: scrub point out to a decade.
DEFAULT_T_GRID: Tuple[float, ...] = (90.0, 365.0, 1000.0, 3650.0)


def lifetime_substrate() -> MLCCellModel:
    """The drift-dominated substrate the retention exhibit runs on.

    The paper's default substrate is write-noise-dominated: drift grows
    only logarithmically, so even a decade of retention barely moves the
    raw BER and BCH blocks essentially never fail. That is the *right*
    model for the paper's single read point, but it makes a lifetime
    exhibit vacuous. This variant lets stochastic drift dominate aging:
    BCH-6 block failures go from ~2e-10 at the 90-day scrub point to
    ~0.12 at a decade — sparse partial damage, exactly the regime where
    scrubbing, re-read retries, and concealment are measurable (total
    damage would drown every mitigation; none would show nothing).
    """
    return MLCCellModel(write_sigma=0.012, drift_sigma=0.022)

#: Counter names whose per-config deltas the sweep reports.
TRACKED_COUNTERS: Tuple[str, ...] = (
    "storage_scrubs_total",
    "storage_scrub_cell_writes_total",
    "storage_read_retries_total",
    "storage_retry_recovered_total",
    "storage_uncorrectable_blocks_total",
    "storage_miscorrected_blocks_total",
    "decode_concealed_slices_total",
    "decode_concealed_mbs_total",
)


@dataclass(frozen=True)
class MitigationConfig:
    """One lifetime-mitigation setting swept against the retention grid."""

    label: str
    scrub_days: Optional[float] = None  #: scrub interval (None = never)
    retries: int = 0                    #: re-read ladder depth
    conceal: bool = False               #: decoder error concealment

    def __post_init__(self) -> None:
        if self.scrub_days is not None and not self.scrub_days > 0:
            raise AnalysisError(
                f"config {self.label!r}: scrub interval must be > 0 days")
        if self.retries < 0:
            raise AnalysisError(
                f"config {self.label!r}: retries must be >= 0")


#: The default mitigation ladder: nothing, then each knob in isolation,
#: then everything at once.
DEFAULT_CONFIGS: Tuple[MitigationConfig, ...] = (
    MitigationConfig(label="unmitigated"),
    MitigationConfig(label="scrub-90d", scrub_days=90.0),
    MitigationConfig(label="retry-3", retries=3),
    MitigationConfig(label="conceal", conceal=True),
    MitigationConfig(label="all", scrub_days=90.0, retries=3, conceal=True),
)


@dataclass(frozen=True)
class RetentionPoint:
    """Aggregated quality of one (config, retention time) cell."""

    config: str
    t_days: float
    psnr_db: float        #: mean over completed runs
    worst_psnr_db: float  #: worst completed run
    runs: int             #: completed runs behind the aggregate
    failed: int = 0       #: quarantined trials at this cell


@dataclass
class RetentionResult:
    """A full retention sweep: curves, counters, and run accounting."""

    points: List[RetentionPoint]
    configs: Tuple[MitigationConfig, ...]
    clean_psnr_db: float
    scheme: Optional[str]  #: single-scheme axis, or None for Table 1
    #: Per-config deltas of :data:`TRACKED_COUNTERS` over the campaign.
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    stats: Dict[str, RunStats] = field(default_factory=dict)

    def series(self, label: str) -> List[RetentionPoint]:
        """One config's quality curve, ordered by retention time."""
        curve = sorted((p for p in self.points if p.config == label),
                       key=lambda p: p.t_days)
        if not curve:
            known = sorted({p.config for p in self.points})
            raise AnalysisError(
                f"unknown mitigation config {label!r}; known: {known}")
        return curve

    def quality_at(self, label: str, t_days: float) -> float:
        for point in self.series(label):
            if point.t_days == t_days:
                return point.psnr_db
        raise AnalysisError(
            f"config {label!r} has no point at t={t_days} days")


def single_scheme_assignment(scheme_name: str) -> ClassAssignment:
    """A uniform assignment storing every stream under one ECC scheme.

    Gives the retention sweep a per-scheme axis: how does BCH-6 age
    versus BCH-16? Headers stay precise, like every design in the paper.
    """
    scheme = scheme_by_name(scheme_name)
    if scheme.t == 0:
        raise AnalysisError(
            "raw (t=0) storage has no uncorrectable-block signal; pick a "
            "BCH scheme for the retention axis")
    return ClassAssignment(boundaries=(0,), schemes=(scheme,),
                           header_scheme=PRECISE_SCHEME)


def _counter_snapshot() -> Dict[str, int]:
    counters = obs_metrics.get_registry().snapshot()["counters"]
    return {name: int(counters.get(name, 0)) for name in TRACKED_COUNTERS}


def run_retention_sweep(
        video: VideoSequence,
        t_days: Sequence[float] = DEFAULT_T_GRID,
        configs: Sequence[MitigationConfig] = DEFAULT_CONFIGS,
        scheme: Optional[str] = None,
        config: Optional[EncoderConfig] = None,
        cell_model: Optional[MLCCellModel] = None,
        runs: int = 3,
        rng: Optional[np.random.Generator] = None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        journal: Union[str, Path, None] = None,
        progress: bool = False,
        exact_ecc: bool = False) -> RetentionResult:
    """Sweep read-back quality over retention time × mitigation config.

    One campaign runs per mitigation config (so the per-config counter
    deltas are attributable); within a campaign, every (t_days, run)
    cell is an independent seeded trial. The seed list is spawned once
    and shared by every config, so each (t_days, run) cell sees the
    same storage noise under every mitigation — a paired comparison,
    not independent samples. ``journal`` is treated as a path
    *prefix*: each config journals to ``<prefix>.<label>.jsonl``,
    because journals are per-campaign. ``cell_model`` defaults to
    :func:`lifetime_substrate` — the drift-dominated variant — rather
    than the paper's write-noise-dominated default.
    """
    grid = [float(t) for t in t_days]
    if not grid:
        raise AnalysisError("retention sweep needs at least one t_days")
    if any(t < 0 for t in grid):
        raise AnalysisError(f"retention times must be >= 0: {grid}")
    labels = [c.label for c in configs]
    if len(set(labels)) != len(labels):
        raise AnalysisError(f"duplicate mitigation labels: {labels}")
    if not labels:
        raise AnalysisError("retention sweep needs at least one config")
    rng = rng or np.random.default_rng(90)
    assignment = (PAPER_TABLE1 if scheme is None
                  else single_scheme_assignment(scheme))
    store = ApproximateVideoStore(config=config, assignment=assignment,
                                  cell_model=cell_model
                                  or lifetime_substrate(),
                                  exact_ecc=exact_ecc)
    stored = store.put(video)
    clean = store.reconstruct(stored)
    clean_psnr = float(video_psnr(video, clean))
    from .experiments import _slim_stored
    context = TrialContext(reference=video, store=store,
                           stored=_slim_stored(stored))
    points: List[RetentionPoint] = []
    counters: Dict[str, Dict[str, int]] = {}
    stats: Dict[str, RunStats] = {}
    seeds = spawn_trial_seeds(rng, len(grid) * runs)
    for cfg in configs:
        specs: List[TrialSpec] = []
        for t_index, t in enumerate(grid):
            for run in range(runs):
                index = t_index * runs + run
                specs.append(TrialSpec(
                    index=index, kind=KIND_RETENTION_READ, seed=seeds[index],
                    t_days=t, scrub_days=cfg.scrub_days, retries=cfg.retries,
                    conceal=cfg.conceal))
        journal_path = (None if journal is None
                        else f"{journal}.{cfg.label}.jsonl")
        before = _counter_snapshot()
        outcomes, run_stats = run_campaign(
            context, specs, workers=workers, timeout=timeout,
            journal=journal_path, progress=progress)
        after = _counter_snapshot()
        counters[cfg.label] = {name: after[name] - before[name]
                               for name in TRACKED_COUNTERS
                               if after[name] != before[name]}
        stats[cfg.label] = run_stats
        for t_index, t in enumerate(grid):
            cell = outcomes[t_index * runs:(t_index + 1) * runs]
            values = [o.value_db for o in cell if isinstance(o, TrialResult)]
            failed = runs - len(values)
            if not values:
                points.append(RetentionPoint(
                    config=cfg.label, t_days=t, psnr_db=float("nan"),
                    worst_psnr_db=float("nan"), runs=0, failed=failed))
                continue
            points.append(RetentionPoint(
                config=cfg.label, t_days=t,
                psnr_db=float(np.mean(values)),
                worst_psnr_db=float(min(values)),
                runs=len(values), failed=failed))
    return RetentionResult(points=points, configs=tuple(configs),
                           clean_psnr_db=clean_psnr, scheme=scheme,
                           counters=counters, stats=stats)
