"""Random-access read exhibit: seek latency × quality × compression.

The paper's evaluation decodes whole clips; serving and dataset-loading
workloads ask for *one frame now*. This exhibit ports the lerobot video
benchmark's metric set (per-seek load time, compression ratio) onto
approximate storage: a grid of (GOP size × CRF × shard age) cells, each
ingesting the clip into a :class:`~repro.service.store.VideoObjectStore`
and serving a seeded schedule of random ``get_frame`` seeks, reporting

* **compression ratio** — raw pixel bits over total container bits;
* **seek latency** — wall-clock p50/p99 over cache-miss seeks, plus
  the measured speedup of a partial-GOP seek over one whole-clip read
  (the number the ``seek-perf-gate`` CI exhibit floors);
* **PSNR under damage** — mean decoded-GOP PSNR against the write-time
  reconstruction, with the four-outcome tally (clean / corrected /
  concealed / refused) showing *how* the quality was served;
* **read economics** — mean fraction of the object's ciphertext the
  seek actually pulled off the shards, and GOP-cache hit counts.

Everything except the wall-clock latencies is deterministic given the
sweep seed, and :meth:`RandomAccessResult.sweep_digest` hashes exactly
that deterministic subset — the ``seek-smoke`` CI job runs the frozen
demo recipe twice and asserts digest equality.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codec.config import EncoderConfig
from ..errors import AnalysisError
from ..obs import trace as obs_trace
from ..service.shards import ShardPool
from ..service.store import VideoObjectStore
from ..storage.mlc import MLCCellModel
from ..video.frame import VideoSequence

#: Default sweep axes for the demo recipe: two GOP regimes the paper's
#: Table 2 brackets, two quality targets, nominal and aged shards.
DEFAULT_GOP_SIZES: Tuple[int, ...] = (4, 12)
DEFAULT_CRFS: Tuple[int, ...] = (24, 32)
DEFAULT_AGES: Tuple[Optional[float], ...] = (None, 3650.0)

#: Tenant the exhibit ingests under.
TENANT = "seek-exhibit"


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class SeekCell:
    """One (GOP size, CRF, shard age) cell of the sweep."""

    gop_size: int
    crf: int
    t_days: Optional[float]
    compression_ratio: float
    psnr_db: float                 #: mean over non-refused seeks
    outcomes: Dict[str, int]
    seeks: int
    cache_hits: int
    frames_decoded_mean: float     #: per cold seek
    bytes_read_fraction: float     #: mean fetched/total per cold seek
    seek_p50_ms: float             #: cold (cache-miss) seeks only
    seek_p99_ms: float
    full_read_ms: float            #: one whole-clip read of the object
    speedup: float                 #: full_read_ms / mean cold seek ms

    def digest_fields(self) -> Dict[str, object]:
        """The deterministic subset (no wall-clock numbers)."""
        return {
            "gop_size": self.gop_size,
            "crf": self.crf,
            "t_days": self.t_days,
            "compression_ratio": round(self.compression_ratio, 6),
            "psnr_db": round(self.psnr_db, 3),
            "outcomes": dict(sorted(self.outcomes.items())),
            "seeks": self.seeks,
            "cache_hits": self.cache_hits,
            "frames_decoded_mean": round(self.frames_decoded_mean, 4),
            "bytes_read_fraction": round(self.bytes_read_fraction, 6),
        }


@dataclass
class RandomAccessResult:
    """A full random-access sweep over the (GOP × CRF × age) grid."""

    cells: List[SeekCell]
    seed: int
    width: int
    height: int
    frames: int

    def sweep_digest(self) -> str:
        """SHA-256 over the deterministic sweep outputs.

        Latency numbers are wall-clock and excluded; two runs of the
        same recipe on any machine must produce the same digest.
        """
        payload = {
            "seed": self.seed, "width": self.width,
            "height": self.height, "frames": self.frames,
            "cells": [cell.digest_fields() for cell in self.cells],
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed, "width": self.width,
            "height": self.height, "frames": self.frames,
            "sweep_digest": self.sweep_digest(),
            "cells": [{**cell.digest_fields(),
                       "seek_p50_ms": cell.seek_p50_ms,
                       "seek_p99_ms": cell.seek_p99_ms,
                       "full_read_ms": cell.full_read_ms,
                       "speedup": cell.speedup}
                      for cell in self.cells],
        }


def run_random_access_sweep(
        video: VideoSequence,
        gop_sizes: Sequence[int] = DEFAULT_GOP_SIZES,
        crfs: Sequence[int] = DEFAULT_CRFS,
        ages: Sequence[Optional[float]] = DEFAULT_AGES,
        seeks: int = 24,
        seed: int = 17,
        shards: int = 3,
        seek_cache: int = 16,
        cell_model: Optional[MLCCellModel] = None,
        bframes: int = 1) -> RandomAccessResult:
    """Sweep random-access reads over GOP size × CRF × shard age.

    Each cell builds a fresh store (so shard ages don't bleed across
    cells), ingests the clip, and serves ``seeks`` frame reads at
    displays drawn from a seed-derived schedule. Per-seek device error
    draws are seeded from the same schedule, so outcomes, PSNR, and
    byte accounting replay exactly; only the latencies are wall-clock.
    """
    if seeks < 1:
        raise AnalysisError(f"need at least one seek, got {seeks}")
    if not gop_sizes or not crfs or not ages:
        raise AnalysisError("every sweep axis needs at least one value")
    cells: List[SeekCell] = []
    raw_bits = 8 * video.total_pixels
    master = np.random.SeedSequence(seed)
    with obs_trace.span("seek.sweep", cells=len(gop_sizes) * len(crfs)
                        * len(ages), seeks=seeks):
        for gop_size in gop_sizes:
            for crf in crfs:
                for age in ages:
                    cell_seed, master = master.spawn(2)
                    cells.append(_run_cell(
                        video, gop_size, crf, age, seeks, cell_seed,
                        shards, seek_cache, cell_model, bframes,
                        raw_bits))
    return RandomAccessResult(cells=cells, seed=seed, width=video.width,
                              height=video.height, frames=len(video))


def _run_cell(video: VideoSequence, gop_size: int, crf: int,
              age: Optional[float], seeks: int,
              cell_seed: np.random.SeedSequence, shards: int,
              seek_cache: int, cell_model: Optional[MLCCellModel],
              bframes: int, raw_bits: int) -> SeekCell:
    config = EncoderConfig(crf=crf, gop_size=gop_size, bframes=bframes)
    pool = ShardPool(count=shards, t_days=age,
                     cell_model=cell_model or MLCCellModel())
    store = VideoObjectStore(pool=pool, config=config,
                             seek_cache=seek_cache)
    object_id = store.put(TENANT, video)
    record = store.record(TENANT, object_id)
    ratio = raw_bits / max(record.protected.encoded.total_bits, 1)
    schedule_rng = np.random.default_rng(cell_seed)
    displays = schedule_rng.integers(0, record.frames, size=seeks)
    draw_seeds = schedule_rng.integers(0, 2**63 - 1, size=seeks + 1)
    outcomes: Dict[str, int] = {}
    psnrs: List[float] = []
    cold_ms: List[float] = []
    cold_frames: List[int] = []
    cold_fraction: List[float] = []
    cache_hits = 0
    for which in range(seeks):
        begin = time.perf_counter()
        result = store.get_frame(
            TENANT, object_id, int(displays[which]),
            rng=np.random.default_rng(int(draw_seeds[which])))
        elapsed_ms = (time.perf_counter() - begin) * 1000.0
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        if result.psnr_db is not None:
            psnrs.append(float(result.psnr_db))
        if result.cache_hit:
            cache_hits += 1
        else:
            cold_ms.append(elapsed_ms)
            cold_frames.append(result.frames_decoded)
            cold_fraction.append(result.bytes_read
                                 / max(result.bytes_total, 1))
    begin = time.perf_counter()
    store.get(TENANT, object_id,
              rng=np.random.default_rng(int(draw_seeds[seeks])))
    full_ms = (time.perf_counter() - begin) * 1000.0
    mean_cold = float(np.mean(cold_ms)) if cold_ms else float("nan")
    return SeekCell(
        gop_size=gop_size, crf=crf, t_days=age,
        compression_ratio=float(ratio),
        psnr_db=float(np.mean(psnrs)) if psnrs else float("nan"),
        outcomes=outcomes, seeks=seeks, cache_hits=cache_hits,
        frames_decoded_mean=(float(np.mean(cold_frames))
                             if cold_frames else 0.0),
        bytes_read_fraction=(float(np.mean(cold_fraction))
                             if cold_fraction else 0.0),
        seek_p50_ms=_percentile(cold_ms, 50.0),
        seek_p99_ms=_percentile(cold_ms, 99.0),
        full_read_ms=full_ms,
        speedup=(full_ms / mean_cold if cold_ms and mean_cold > 0
                 else float("nan")))
