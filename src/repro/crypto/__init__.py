"""Encryption substrate: AES-128, block modes, approximability analysis."""

from .aes import AES128, BLOCK_SIZE, KEY_SIZE, expand_key
from .analysis import (
    AMPLIFICATION_LIMIT,
    ModeVerdict,
    PropagationMeasurement,
    analyze_all_modes,
    analyze_mode,
    check_privacy,
    compatible_modes,
    measure_propagation,
)
from .modes import CBC, CTR, ECB, MODES, OFB, BlockMode, make_mode
from .streams import APPROVED_MODES, StreamEncryptor, derive_stream_iv

__all__ = [
    "AES128",
    "AMPLIFICATION_LIMIT",
    "APPROVED_MODES",
    "BLOCK_SIZE",
    "BlockMode",
    "CBC",
    "CTR",
    "ECB",
    "KEY_SIZE",
    "MODES",
    "ModeVerdict",
    "OFB",
    "PropagationMeasurement",
    "StreamEncryptor",
    "analyze_all_modes",
    "analyze_mode",
    "check_privacy",
    "compatible_modes",
    "derive_stream_iv",
    "expand_key",
    "make_mode",
    "measure_propagation",
]
