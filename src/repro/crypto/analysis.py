"""Approximate-storage compatibility analysis of encryption modes.

Operationalizes the paper's three requirements (Section 5.1):

1. **privacy** — the mapping from plaintext to ciphertext must be
   randomized: equal plaintext blocks must not reveal themselves as
   equal ciphertext blocks (ECB's failure);
2. **no catastrophic propagation** — a single flipped *stored*
   (ciphertext) bit must not damage an unbounded suffix of the video;
3. **approximation-transparency** — flipping ciphertext bits must
   damage the decrypted plaintext no more than flipping plaintext bits
   directly would, i.e. the bit-error amplification factor must be ~1.

Each check is an experiment on the real AES implementation, so the
verdicts are measured, not asserted. Note the paper describes CBC as
propagating "to all subsequent blocks"; measured CBC damage is one full
block plus one bit of the next — still a ~65x amplification that fails
requirements #2/#3, so the verdict matches the paper even though the
mechanism statement is corrected (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .aes import BLOCK_SIZE
from .modes import MODES, make_mode


def _bit_difference(a: bytes, b: bytes) -> int:
    arr_a = np.frombuffer(a, dtype=np.uint8)
    arr_b = np.frombuffer(b, dtype=np.uint8)
    return int(np.unpackbits(arr_a ^ arr_b).sum())


def _blocks_damaged(a: bytes, b: bytes) -> int:
    count = 0
    for offset in range(0, len(a), BLOCK_SIZE):
        if a[offset:offset + BLOCK_SIZE] != b[offset:offset + BLOCK_SIZE]:
            count += 1
    return count


@dataclass
class PropagationMeasurement:
    """Measured effect of single ciphertext bit flips for one mode."""

    mode: str
    mean_plaintext_bits_damaged: float
    max_plaintext_bits_damaged: int
    mean_blocks_damaged: float
    max_suffix_blocks_damaged: int  #: blocks damaged after the flipped one

    @property
    def amplification(self) -> float:
        """Plaintext bits damaged per flipped ciphertext bit."""
        return self.mean_plaintext_bits_damaged


@dataclass
class ModeVerdict:
    """Requirements scorecard for one mode (the paper's Section 5.2)."""

    mode: str
    privacy: bool                  #: requirement 1
    bounded_propagation: bool      #: requirement 2
    approximation_transparent: bool  #: requirement 3
    propagation: PropagationMeasurement

    @property
    def compatible(self) -> bool:
        """Suitable for approximate video storage (all three hold)."""
        return (self.privacy and self.bounded_propagation
                and self.approximation_transparent)


def check_privacy(mode_name: str, key: bytes, iv: bytes,
                  num_blocks: int = 64) -> bool:
    """Requirement 1: identical plaintext blocks must encrypt differently.

    Encrypts a plaintext of repeated identical blocks and checks whether
    the ciphertext blocks collide. ECB is deterministic per block and
    fails; every randomized/chained mode passes.
    """
    mode = make_mode(mode_name, key, iv)
    plaintext = bytes(range(BLOCK_SIZE)) * num_blocks
    ciphertext = mode.encrypt(plaintext)
    blocks = {
        ciphertext[offset:offset + BLOCK_SIZE]
        for offset in range(0, len(ciphertext), BLOCK_SIZE)
    }
    return len(blocks) == num_blocks


def measure_propagation(mode_name: str, key: bytes, iv: bytes,
                        num_blocks: int = 32, trials: int = 48,
                        rng: Optional[np.random.Generator] = None
                        ) -> PropagationMeasurement:
    """Flip single ciphertext bits; measure decrypted plaintext damage."""
    rng = rng or np.random.default_rng(7)
    plaintext = rng.integers(0, 256, num_blocks * BLOCK_SIZE,
                             dtype=np.uint8).tobytes()
    mode = make_mode(mode_name, key, iv)
    ciphertext = mode.encrypt(plaintext)
    reference = make_mode(mode_name, key, iv).decrypt(ciphertext)
    bit_damages: List[int] = []
    block_damages: List[int] = []
    suffix_damages: List[int] = []
    total_bits = 8 * len(ciphertext)
    for position in rng.choice(total_bits, size=trials, replace=False):
        corrupted = bytearray(ciphertext)
        corrupted[position // 8] ^= 0x80 >> (position % 8)
        decrypted = make_mode(mode_name, key, iv).decrypt(bytes(corrupted))
        bit_damages.append(_bit_difference(reference, decrypted))
        block_damages.append(_blocks_damaged(reference, decrypted))
        flipped_block = int(position) // (8 * BLOCK_SIZE)
        suffix = _blocks_damaged(reference[(flipped_block + 1) * BLOCK_SIZE:],
                                 decrypted[(flipped_block + 1) * BLOCK_SIZE:])
        suffix_damages.append(suffix)
    return PropagationMeasurement(
        mode=mode_name,
        mean_plaintext_bits_damaged=float(np.mean(bit_damages)),
        max_plaintext_bits_damaged=int(np.max(bit_damages)),
        mean_blocks_damaged=float(np.mean(block_damages)),
        max_suffix_blocks_damaged=int(np.max(suffix_damages)),
    )


#: Requirement-3 threshold: a compatible mode must not multiply bit
#: errors. Exactly-1 is ideal; small slack covers measurement noise.
AMPLIFICATION_LIMIT = 2.0


def analyze_mode(mode_name: str, key: Optional[bytes] = None,
                 iv: Optional[bytes] = None,
                 rng: Optional[np.random.Generator] = None) -> ModeVerdict:
    """Full scorecard for one mode."""
    key = key or bytes(range(16))
    iv = iv if iv is not None else bytes(range(100, 116))
    privacy = check_privacy(mode_name, key, iv)
    propagation = measure_propagation(mode_name, key, iv, rng=rng)
    bounded = propagation.max_suffix_blocks_damaged <= 1
    transparent = propagation.amplification <= AMPLIFICATION_LIMIT
    return ModeVerdict(
        mode=mode_name,
        privacy=privacy,
        bounded_propagation=bounded,
        approximation_transparent=transparent,
        propagation=propagation,
    )


def analyze_all_modes(key: Optional[bytes] = None,
                      iv: Optional[bytes] = None,
                      rng: Optional[np.random.Generator] = None
                      ) -> Dict[str, ModeVerdict]:
    """Scorecards for ECB, CBC, OFB, CTR — the paper's Figure 7 set."""
    return {name: analyze_mode(name, key, iv, rng) for name in MODES}


def compatible_modes() -> List[str]:
    """Modes meeting all three requirements (the paper's answer: OFB, CTR)."""
    return [name for name, verdict in analyze_all_modes().items()
            if verdict.compatible]
