"""Encrypting the multiple reliability streams (Section 5.3).

Approximate video storage splits a video into one stream per ECC level.
Each stream is encrypted separately with an approximation-compatible
mode. Per the paper, the per-stream IV is derived from a single master
value combined with the stream's identifier, so one secret (key + master
IV) covers the whole video; the derivation here runs the identifier
through the block cipher itself (a standard one-way diversification).

The analysis/partitioning must run *before* encryption — importance is
computed on plaintext bits — so the encryptor is applied to the already
partitioned streams, and decryption happens before merging and decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import CryptoError
from ..obs import trace as obs_trace
from .aes import AES128, BLOCK_SIZE
from .modes import make_mode

#: Modes acceptable for stream encryption (requirements 1-3).
APPROVED_MODES = ("OFB", "CTR")


def derive_stream_iv(master_iv: bytes, stream_id: int, key: bytes) -> bytes:
    """Per-stream IV: encrypt (master_iv XOR stream_id) under the key."""
    if len(master_iv) != BLOCK_SIZE:
        raise CryptoError(f"master IV must be {BLOCK_SIZE} bytes")
    if stream_id < 0:
        raise CryptoError(f"stream id must be non-negative, got {stream_id}")
    mixed = bytearray(master_iv)
    identifier = stream_id.to_bytes(BLOCK_SIZE, "big")
    for index in range(BLOCK_SIZE):
        mixed[index] ^= identifier[index]
    return AES128(key).encrypt_block(bytes(mixed))


@dataclass
class StreamEncryptor:
    """Encrypts/decrypts a set of reliability streams under one secret."""

    key: bytes
    master_iv: bytes
    mode: str = "CTR"

    def __post_init__(self) -> None:
        if self.mode.upper() not in APPROVED_MODES:
            raise CryptoError(
                f"mode {self.mode!r} is not approximation-compatible; "
                f"use one of {APPROVED_MODES}"
            )
        self.mode = self.mode.upper()
        if len(self.key) != BLOCK_SIZE:
            raise CryptoError(f"key must be {BLOCK_SIZE} bytes")
        if len(self.master_iv) != BLOCK_SIZE:
            raise CryptoError(f"master IV must be {BLOCK_SIZE} bytes")

    def _mode_for(self, stream_id: int):
        iv = derive_stream_iv(self.master_iv, stream_id, self.key)
        return make_mode(self.mode, self.key, iv)

    def encrypt_streams(self, streams: Dict[int, bytes]) -> Dict[int, bytes]:
        """Encrypt each stream under its derived IV (sizes preserved)."""
        with obs_trace.span("aes.encrypt", mode=self.mode,
                            streams=len(streams)):
            return {
                stream_id: self._mode_for(stream_id).encrypt(data)
                for stream_id, data in streams.items()
            }

    def decrypt_streams(self, streams: Dict[int, bytes]) -> Dict[int, bytes]:
        """Decrypt each stream under its derived IV."""
        with obs_trace.span("aes.decrypt", mode=self.mode,
                            streams=len(streams)):
            return {
                stream_id: self._mode_for(stream_id).decrypt(data)
                for stream_id, data in streams.items()
            }

    def decrypt_at(self, stream_id: int, data: bytes,
                   byte_offset: int) -> bytes:
        """Decrypt a slice of stream ``stream_id`` that begins
        ``byte_offset`` bytes into the ciphertext.

        This is the random-access primitive the seek path rides: both
        approved modes are keystream XORs, so a slice decrypts without
        its neighbours (CTR jumps the counter; OFB pays an
        ``O(offset)`` keystream walk — see
        :meth:`~repro.crypto.modes.OFB.decrypt_range`).
        """
        with obs_trace.span("aes.decrypt_at", mode=self.mode,
                            offset=byte_offset, size=len(data)):
            return self._mode_for(stream_id).decrypt_range(
                data, byte_offset)

    def encrypt_list(self, payloads: List[bytes]) -> List[bytes]:
        """Encrypt an ordered payload list (ids are list positions)."""
        with obs_trace.span("aes.encrypt", mode=self.mode,
                            streams=len(payloads)):
            return [self._mode_for(index).encrypt(data)
                    for index, data in enumerate(payloads)]

    def decrypt_list(self, payloads: List[bytes]) -> List[bytes]:
        """Decrypt an ordered payload list (ids are list positions)."""
        with obs_trace.span("aes.decrypt", mode=self.mode,
                            streams=len(payloads)):
            return [self._mode_for(index).decrypt(data)
                    for index, data in enumerate(payloads)]
