"""Block cipher modes of operation: ECB, CBC, OFB, CTR (Figure 7).

All four modes share one interface so the paper's requirements analysis
(Section 5) can probe them uniformly. Plaintexts whose length is not a
multiple of 16 bytes are handled the way a video store needs: the
keystream modes (OFB/CTR) natively produce exact-length output, while
the block modes (ECB/CBC) use ciphertext stealing-free zero padding
with the original length restored on decryption — padding never changes
error-propagation behaviour, which is what the analysis measures.
"""

from __future__ import annotations

import abc
from typing import Dict, Type

from ..errors import CryptoError
from .aes import AES128, BLOCK_SIZE


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _pad(data: bytes) -> bytes:
    remainder = len(data) % BLOCK_SIZE
    if remainder == 0:
        return data
    return data + b"\x00" * (BLOCK_SIZE - remainder)


class BlockMode(abc.ABC):
    """A block-cipher mode over AES-128."""

    #: Whether an IV/nonce is required.
    needs_iv = True

    def __init__(self, key: bytes, iv: bytes = b"") -> None:
        self.cipher = AES128(key)
        if self.needs_iv:
            if len(iv) != BLOCK_SIZE:
                raise CryptoError(
                    f"{type(self).__name__} needs a {BLOCK_SIZE}-byte IV"
                )
        self.iv = iv

    @abc.abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        ...

    @abc.abstractmethod
    def decrypt(self, ciphertext: bytes) -> bytes:
        ...

    def decrypt_range(self, ciphertext: bytes, byte_offset: int) -> bytes:
        """Decrypt a slice that starts ``byte_offset`` bytes into the
        full message.

        Only the keystream modes support this (the whole point of the
        paper preferring CTR for a storage system): block modes chain
        ciphertext, so a slice cannot be decrypted without its
        neighbours.
        """
        raise CryptoError(
            f"{type(self).__name__} does not support random-access "
            f"decryption")


class ECB(BlockMode):
    """Electronic codebook: block-wise, stateless.

    Fails the paper's requirement #1: equal plaintext blocks map to
    equal ciphertext blocks, enabling dictionary attacks.
    """

    needs_iv = False

    def encrypt(self, plaintext: bytes) -> bytes:
        padded = _pad(plaintext)
        out = bytearray()
        for offset in range(0, len(padded), BLOCK_SIZE):
            out += self.cipher.encrypt_block(padded[offset:offset + BLOCK_SIZE])
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) % BLOCK_SIZE:
            raise CryptoError("ECB ciphertext must be block-aligned")
        out = bytearray()
        for offset in range(0, len(ciphertext), BLOCK_SIZE):
            out += self.cipher.decrypt_block(
                ciphertext[offset:offset + BLOCK_SIZE])
        return bytes(out)


class CBC(BlockMode):
    """Cipher block chaining.

    Meets requirement #1 but fails #2/#3 for approximate storage: a
    flipped ciphertext bit garbles its whole block and flips one bit of
    the next — a ~65x bit-error amplification.
    """

    def encrypt(self, plaintext: bytes) -> bytes:
        padded = _pad(plaintext)
        previous = self.iv
        out = bytearray()
        for offset in range(0, len(padded), BLOCK_SIZE):
            block = _xor_bytes(padded[offset:offset + BLOCK_SIZE], previous)
            previous = self.cipher.encrypt_block(block)
            out += previous
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) % BLOCK_SIZE:
            raise CryptoError("CBC ciphertext must be block-aligned")
        previous = self.iv
        out = bytearray()
        for offset in range(0, len(ciphertext), BLOCK_SIZE):
            block = ciphertext[offset:offset + BLOCK_SIZE]
            out += _xor_bytes(self.cipher.decrypt_block(block), previous)
            previous = block
        return bytes(out)


class CFB(BlockMode):
    """Cipher feedback (full-block): keystream from the previous
    ciphertext block.

    Like CBC it meets requirement #1, and like CBC it fails #3 for
    approximate storage: a flipped ciphertext bit flips the mirrored
    plaintext bit of its own block *and* garbles the whole next block
    (the flipped ciphertext feeds the next keystream) — ~65x bit-error
    amplification, just ordered the other way around.
    """

    def encrypt(self, plaintext: bytes) -> bytes:
        padded = _pad(plaintext)
        feedback = self.iv
        out = bytearray()
        for offset in range(0, len(padded), BLOCK_SIZE):
            keystream = self.cipher.encrypt_block(feedback)
            block = _xor_bytes(padded[offset:offset + BLOCK_SIZE],
                               keystream)
            out += block
            feedback = block
        return bytes(out)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) % BLOCK_SIZE:
            raise CryptoError("CFB ciphertext must be block-aligned")
        feedback = self.iv
        out = bytearray()
        for offset in range(0, len(ciphertext), BLOCK_SIZE):
            keystream = self.cipher.encrypt_block(feedback)
            block = ciphertext[offset:offset + BLOCK_SIZE]
            out += _xor_bytes(block, keystream)
            feedback = block
        return bytes(out)


class OFB(BlockMode):
    """Output feedback: keystream from iterated encryption of the IV.

    Ciphertext never feeds the chain, so a stored-bit flip corrupts
    exactly that plaintext bit — approximate-storage compatible.
    """

    def _keystream(self, length: int) -> bytes:
        stream = bytearray()
        feedback = self.iv
        while len(stream) < length:
            feedback = self.cipher.encrypt_block(feedback)
            stream += feedback
        return bytes(stream[:length])

    def encrypt(self, plaintext: bytes) -> bytes:
        return _xor_bytes(plaintext, self._keystream(len(plaintext)))

    def decrypt(self, ciphertext: bytes) -> bytes:
        return _xor_bytes(ciphertext, self._keystream(len(ciphertext)))

    def decrypt_range(self, ciphertext: bytes, byte_offset: int) -> bytes:
        """OFB random access: the feedback chain must be iterated from
        the IV, so seeking costs ``O(byte_offset)`` cipher calls — it
        works, but CTR is the mode a random-access store wants."""
        if byte_offset < 0:
            raise CryptoError(f"negative byte offset {byte_offset}")
        stream = self._keystream(byte_offset + len(ciphertext))
        return _xor_bytes(ciphertext, stream[byte_offset:])


class CTR(BlockMode):
    """Counter mode: keystream from encrypting nonce+counter.

    Same approximate-storage compatibility as OFB, plus random access.
    """

    def _keystream(self, length: int) -> bytes:
        stream = bytearray()
        counter = int.from_bytes(self.iv, "big")
        while len(stream) < length:
            stream += self.cipher.encrypt_block(
                counter.to_bytes(BLOCK_SIZE, "big"))
            counter = (counter + 1) % (1 << (8 * BLOCK_SIZE))
        return bytes(stream[:length])

    def encrypt(self, plaintext: bytes) -> bytes:
        return _xor_bytes(plaintext, self._keystream(len(plaintext)))

    def decrypt(self, ciphertext: bytes) -> bytes:
        return _xor_bytes(ciphertext, self._keystream(len(ciphertext)))

    def decrypt_range(self, ciphertext: bytes, byte_offset: int) -> bytes:
        """CTR random access: jump the counter to the slice's block and
        phase into it — ``O(len(ciphertext))`` regardless of offset."""
        if byte_offset < 0:
            raise CryptoError(f"negative byte offset {byte_offset}")
        skip_blocks, phase = divmod(byte_offset, BLOCK_SIZE)
        counter = (int.from_bytes(self.iv, "big")
                   + skip_blocks) % (1 << (8 * BLOCK_SIZE))
        stream = bytearray()
        while len(stream) < phase + len(ciphertext):
            stream += self.cipher.encrypt_block(
                counter.to_bytes(BLOCK_SIZE, "big"))
            counter = (counter + 1) % (1 << (8 * BLOCK_SIZE))
        return _xor_bytes(ciphertext, bytes(stream[phase:]))


#: Mode registry by canonical name.
MODES: Dict[str, Type[BlockMode]] = {
    "ECB": ECB,
    "CBC": CBC,
    "CFB": CFB,
    "OFB": OFB,
    "CTR": CTR,
}


def make_mode(name: str, key: bytes, iv: bytes = b"") -> BlockMode:
    try:
        mode_class = MODES[name.upper()]
    except KeyError:
        raise CryptoError(
            f"unknown mode {name!r}; known: {sorted(MODES)}"
        ) from None
    if mode_class.needs_iv:
        return mode_class(key, iv)
    return mode_class(key)
