"""AES-128 block cipher, from scratch (FIPS-197).

The paper's Section 5 analyzes AES modes of operation for compatibility
with approximate storage; this module provides the underlying
substitution-permutation network (the paper's ``subperm`` box) and its
inverse. Implemented directly from the standard: SubBytes / ShiftRows /
MixColumns / AddRoundKey over 10 rounds with on-the-fly computed tables,
validated against the FIPS-197 appendix vectors in the test suite.

This is an algorithmic reference implementation (it is not constant-time
and must not be used to protect real secrets).
"""

from __future__ import annotations

from typing import List

from ..errors import CryptoError

BLOCK_SIZE = 16  #: bytes
KEY_SIZE = 16    #: bytes (AES-128)
ROUNDS = 10


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_multiply(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple:
    """Compute the AES S-box from the GF(2^8) inverse + affine map."""
    # Multiplicative inverses via exp/log over generator 3.
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value ^= _xtime(value)  # multiply by 3 = x + 1
    exp[255:510] = exp[:255]

    def inverse(byte: int) -> int:
        if byte == 0:
            return 0
        return exp[255 - log[byte]]

    sbox = [0] * 256
    for byte in range(256):
        inv = inverse(byte)
        # Affine transform over GF(2): b ^ rotl(b,1..4) ^ 0x63.
        value = inv
        transformed = value
        for _ in range(4):
            value = ((value << 1) | (value >> 7)) & 0xFF
            transformed ^= value
        sbox[byte] = transformed ^ 0x63
    inv_sbox = [0] * 256
    for byte, mapped in enumerate(sbox):
        inv_sbox[mapped] = byte
    return tuple(sbox), tuple(inv_sbox)


#: All cipher tables are module-level constants computed once at import
#: (not per AES128 instantiation): the S-box pair above plus the GF(2^8)
#: multiplication tables below for every MixColumns coefficient.
SBOX, INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

#: 256-entry multiplication tables for the MixColumns coefficients
#: (2, 3 forward; 9, 11, 13, 14 inverse), replacing per-byte bit-serial
#: GF multiplication on the block hot path.
_MUL_TABLES = {
    coefficient: tuple(_gf_multiply(byte, coefficient)
                       for byte in range(256))
    for coefficient in (1, 2, 3, 9, 11, 13, 14)
}


def expand_key(key: bytes) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != KEY_SIZE:
        raise CryptoError(f"AES-128 key must be {KEY_SIZE} bytes")
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (ROUNDS + 1)):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]
            word = [SBOX[b] for b in word]
            word[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(word, words[i - 4])])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(ROUNDS + 1)]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = INV_SBOX[state[i]]


# State layout: state[4*c + r] is row r, column c (column-major, as in
# the standard's byte ordering of inputs).

_SHIFT_MAP = [4 * ((c + r) % 4) + r for c in range(4) for r in range(4)]
_INV_SHIFT_MAP = [4 * ((c - r) % 4) + r for c in range(4) for r in range(4)]


def _shift_rows(state: List[int]) -> List[int]:
    return [state[i] for i in _SHIFT_MAP]


def _inv_shift_rows(state: List[int]) -> List[int]:
    return [state[i] for i in _INV_SHIFT_MAP]


def _mix_single_column(column: List[int], matrix: tuple) -> List[int]:
    return [
        _MUL_TABLES[matrix[r][0]][column[0]]
        ^ _MUL_TABLES[matrix[r][1]][column[1]]
        ^ _MUL_TABLES[matrix[r][2]][column[2]]
        ^ _MUL_TABLES[matrix[r][3]][column[3]]
        for r in range(4)
    ]


_MIX = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
_INV_MIX = ((14, 11, 13, 9), (9, 14, 11, 13), (13, 9, 14, 11),
            (11, 13, 9, 14))


def _mix_columns(state: List[int], matrix: tuple) -> List[int]:
    out = [0] * 16
    for c in range(4):
        column = state[4 * c:4 * c + 4]
        out[4 * c:4 * c + 4] = _mix_single_column(column, matrix)
    return out


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class AES128:
    """AES-128: the ``subperm`` / ``invsubperm`` boxes of the paper."""

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes")
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, ROUNDS):
            _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state, _MIX)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[ROUNDS])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_SIZE:
            raise CryptoError(f"block must be {BLOCK_SIZE} bytes")
        state = list(ciphertext)
        _add_round_key(state, self._round_keys[ROUNDS])
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        for round_index in range(ROUNDS - 1, 0, -1):
            _add_round_key(state, self._round_keys[round_index])
            state = _mix_columns(state, _INV_MIX)
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)
