"""Macroblock importance: the paper's 8-step algorithm (Section 4.3).

Importance of a macroblock = the total area, in macroblocks, that a bit
flip inside it would damage. Computed in two backward passes over the
dependency graph:

1-4. **compensation pass** — initialize every MB to 1 (itself), then in
     reverse topological order add the weighted importance of every MB
     that references it. Afterwards each MB's value is the area its
     pixel damage reaches through motion compensation and intra
     prediction.
5-8. **coding pass** — seed with the compensation values, then walk each
     slice's scan-order chain backwards adding the successor's (total)
     importance with weight 1. This appends compensation trees to
     coding chains but never the reverse, matching Figure 5: damage
     propagated through compensation cannot cause new coding errors.

Within a slice, total importance is strictly decreasing in scan order
(every MB adds at least its own area on top of its successor's total) —
the property that makes the paper's pivot encoding exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import AnalysisError
from ..codec.types import EncodingTrace
from .graph import DependencyGraph, build_dependency_graph, topological_order


@dataclass
class ImportanceResult:
    """Per-macroblock importance for one encoded video.

    ``values[f, m]`` is the total importance of macroblock ``m`` of
    coded frame ``f``; ``compensation[f, m]`` the compensation-only
    component (steps 1-4).
    """

    values: np.ndarray
    compensation: np.ndarray
    graph: DependencyGraph
    analysis_seconds: float

    @property
    def flat(self) -> np.ndarray:
        return self.values.reshape(-1)

    def max_importance(self) -> float:
        return float(self.values.max())

    def importance_of(self, frame_coded_index: int, mb_index: int) -> float:
        return float(self.values[frame_coded_index, mb_index])


def _compensation_pass(graph: DependencyGraph,
                       order: np.ndarray) -> np.ndarray:
    """Steps 1-4: backward accumulation over compensation edges."""
    importance = np.ones(graph.num_nodes, dtype=np.float64)
    if graph.comp_src.size == 0:
        return importance
    # Process sources in reverse topological order; every destination is
    # later in the order, hence already final.
    position = np.empty(graph.num_nodes, dtype=np.int64)
    position[order] = np.arange(graph.num_nodes)
    edge_order = np.argsort(position[graph.comp_src])[::-1]
    src = graph.comp_src[edge_order]
    dst = graph.comp_dst[edge_order]
    weight = graph.comp_weight[edge_order]
    for s, d, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
        importance[s] += w * importance[d]
    return importance


def _coding_pass(graph: DependencyGraph, seed: np.ndarray) -> np.ndarray:
    """Steps 5-8: backward accumulation along the scan-order chains."""
    importance = seed.copy()
    if graph.coding_src.size == 0:
        return importance
    # Chains are disjoint; edges sorted by descending source position
    # finalize each successor before its predecessor reads it.
    edge_order = np.argsort(graph.coding_src)[::-1]
    for s, d in zip(graph.coding_src[edge_order].tolist(),
                    graph.coding_dst[edge_order].tolist()):
        importance[s] += importance[d]
    return importance


def compute_importance(trace: EncodingTrace,
                       graph: Optional[DependencyGraph] = None
                       ) -> ImportanceResult:
    """Run the full 8-step algorithm on an encoder trace."""
    start = time.perf_counter()
    if graph is None:
        graph = build_dependency_graph(trace)
    comp_order = topological_order(graph.num_nodes, graph.comp_src,
                                   graph.comp_dst)
    compensation = _compensation_pass(graph, comp_order)
    # Steps 5-7: the coding graph's topological order equals scan order
    # within each chain; the edge processing below relies only on that.
    total = _coding_pass(graph, compensation)
    if np.any(total < 1.0 - 1e-9):
        raise AnalysisError("importance fell below 1; the graph is corrupt")
    shape = (graph.num_frames, graph.macroblocks_per_frame)
    elapsed = time.perf_counter() - start
    return ImportanceResult(
        values=total.reshape(shape),
        compensation=compensation.reshape(shape),
        graph=graph,
        analysis_seconds=elapsed,
    )


def compute_importance_streaming(trace: EncodingTrace) -> ImportanceResult:
    """Per-GOP importance computation (Section 4.3.1).

    The paper notes that steps 1-4 need not run on the whole graph:
    compensation dependencies cannot reach backward across a closed GOP
    boundary, so each closed GOP is an independent connected component,
    and steps 5-8 are per-frame anyway. This variant processes one GOP
    at a time — bounded memory, suitable for real-time use — and
    produces results identical to :func:`compute_importance` (the test
    suite asserts equality).

    Cut points are found generally: a coded position k starts a new
    segment when it holds an I-frame *and* no frame at or after k
    references anything before k (open-GOP B-frames extend the previous
    segment past their following I-frame).
    """
    start = time.perf_counter()
    from ..codec.types import FrameType

    # earliest_ref[j]: smallest coded index that frame j depends on.
    earliest_ref = []
    for frame in trace.frames:
        earliest = frame.coded_index
        for mb in frame.macroblocks:
            for dep in mb.dependencies:
                earliest = min(earliest, dep.source[0])
        earliest_ref.append(earliest)
    # suffix_min[k]: earliest reference made by any frame at/after k.
    suffix_min = list(earliest_ref)
    for index in range(len(suffix_min) - 2, -1, -1):
        suffix_min[index] = min(suffix_min[index], suffix_min[index + 1])

    segments: List[List] = []
    for frame in trace.frames:
        k = frame.coded_index
        is_cut = (frame.frame_type == FrameType.I
                  and suffix_min[k] >= k)
        if is_cut or not segments:
            segments.append([])
        segments[-1].append(frame)

    per_frame = trace.macroblocks_per_frame
    values = np.empty((len(trace.frames), per_frame))
    compensation = np.empty_like(values)
    merged_graph = build_dependency_graph(trace)
    for segment in segments:
        sub_trace = EncodingTrace(mb_rows=trace.mb_rows,
                                  mb_cols=trace.mb_cols)
        base = segment[0].coded_index
        # Re-index the segment's frames to 0..n-1.
        for frame in segment:
            from ..codec.types import FrameTrace, MacroblockTrace
            from ..codec.types import DependencyRecord
            remapped = FrameTrace(
                coded_index=frame.coded_index - base,
                display_index=frame.display_index,
                frame_type=frame.frame_type,
                payload_bits=frame.payload_bits,
                slice_starts=frame.slice_starts,
                macroblocks=[
                    MacroblockTrace(
                        frame_coded_index=mb.frame_coded_index - base,
                        mb_index=mb.mb_index,
                        bit_start=mb.bit_start,
                        bit_end=mb.bit_end,
                        dependencies=[
                            DependencyRecord(
                                source=(dep.source[0] - base,
                                        dep.source[1]),
                                pixels=dep.pixels)
                            for dep in mb.dependencies
                        ],
                    ) for mb in frame.macroblocks
                ],
            )
            if any(dep.source[0] < 0
                   for mb in remapped.macroblocks
                   for dep in mb.dependencies):
                raise AnalysisError(
                    f"frame {frame.coded_index} references across an "
                    f"I-frame boundary; the stream is not GOP-closed"
                )
            sub_trace.frames.append(remapped)
        result = compute_importance(sub_trace)
        values[base:base + len(segment)] = result.values
        compensation[base:base + len(segment)] = result.compensation
    elapsed = time.perf_counter() - start
    return ImportanceResult(values=values, compensation=compensation,
                            graph=merged_graph, analysis_seconds=elapsed)


@dataclass(frozen=True)
class MacroblockBits:
    """Bit placement of one MB inside its frame payload."""

    frame_coded_index: int
    mb_index: int
    bit_start: int
    bit_end: int
    importance: float


def macroblock_bits(trace: EncodingTrace,
                    importance: ImportanceResult) -> List[MacroblockBits]:
    """Join the trace's bit ranges with computed importance values."""
    out: List[MacroblockBits] = []
    for frame in trace.frames:
        for mb in frame.macroblocks:
            out.append(MacroblockBits(
                frame_coded_index=frame.coded_index,
                mb_index=mb.mb_index,
                bit_start=mb.bit_start,
                bit_end=mb.bit_end,
                importance=importance.importance_of(frame.coded_index,
                                                    mb.mb_index),
            ))
    return out


def importance_is_scan_monotone(trace: EncodingTrace,
                                importance: ImportanceResult) -> bool:
    """Check the pivot precondition: within every slice of every frame,
    importance strictly decreases in scan order."""
    for frame in trace.frames:
        per_frame = importance.values[frame.coded_index]
        bounds = list(frame.slice_starts) + [len(per_frame)]
        for start, end in zip(bounds[:-1], bounds[1:]):
            window = per_frame[start:end]
            if np.any(np.diff(window) >= 0):
                return False
    return True
