"""Pivot tables: compact per-frame ECC layout (Section 4.4, Figure 6).

Because importance strictly decreases in scan order within a slice, the
ECC scheme assigned to a frame's macroblocks only ever *weakens* along
the payload. The whole per-MB assignment therefore compresses to a few
pivot points per frame — (bit offset, scheme) pairs marking each scheme
change — which live in the precise frame header at a few bytes per
frame instead of a per-MB table as large as the video itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import AnalysisError
from ..codec.encoded import EncodedVideo
from .assignment import ClassAssignment
from .importance import MacroblockBits

#: Header cost per pivot table: segment count byte + first scheme id,
#: then (32-bit offset + 4-bit scheme id) per additional segment.
_BITS_COUNT = 8
_BITS_SCHEME_ID = 4
_BITS_OFFSET = 32


@dataclass(frozen=True)
class Segment:
    """A maximal run of payload bits protected by one scheme."""

    start_bit: int
    end_bit: int
    scheme_name: str

    @property
    def bits(self) -> int:
        return self.end_bit - self.start_bit


@dataclass
class FramePivots:
    """The pivot table of one frame."""

    frame_coded_index: int
    payload_bits: int
    segments: List[Segment] = field(default_factory=list)

    def header_bits(self) -> int:
        """Precise-storage cost of carrying this table in the header."""
        if not self.segments:
            return _BITS_COUNT
        return (_BITS_COUNT + _BITS_SCHEME_ID
                + (len(self.segments) - 1) * (_BITS_OFFSET + _BITS_SCHEME_ID))

    def validate(self) -> None:
        if not self.segments:
            if self.payload_bits:
                raise AnalysisError(
                    f"frame {self.frame_coded_index}: empty pivot table "
                    f"for {self.payload_bits} payload bits"
                )
            return
        if self.segments[0].start_bit != 0:
            raise AnalysisError("first segment must start at bit 0")
        for before, after in zip(self.segments, self.segments[1:]):
            if before.end_bit != after.start_bit:
                raise AnalysisError(
                    f"frame {self.frame_coded_index}: gap between segments "
                    f"{before} and {after}"
                )
        if self.segments[-1].end_bit != self.payload_bits:
            raise AnalysisError(
                f"frame {self.frame_coded_index}: segments cover "
                f"{self.segments[-1].end_bit} of {self.payload_bits} bits"
            )


def build_frame_pivots(encoded: EncodedVideo,
                       mb_bits: Sequence[MacroblockBits],
                       assignment: ClassAssignment) -> List[FramePivots]:
    """Compute every frame's pivot table from importance + assignment.

    Leftover payload bits past the last MB of a slice (the entropy
    coder's flush tail) inherit the last MB's scheme; slice boundaries
    may strengthen the scheme again (each slice restarts the descent).
    """
    if encoded.trace is None:
        raise AnalysisError("encoded video carries no trace")
    by_frame: Dict[int, List[MacroblockBits]] = {}
    for mb in mb_bits:
        by_frame.setdefault(mb.frame_coded_index, []).append(mb)

    tables: List[FramePivots] = []
    for frame, frame_trace in zip(encoded.frames, encoded.trace.frames):
        coded_index = frame.header.coded_index
        payload_bits = frame.payload_bits
        members = sorted(by_frame.get(coded_index, []),
                         key=lambda mb: mb.mb_index)
        table = FramePivots(frame_coded_index=coded_index,
                            payload_bits=payload_bits)
        slice_bit_bounds = []
        cursor = 0
        for length in frame.header.slice_byte_lengths:
            cursor += 8 * length
            slice_bit_bounds.append(cursor)
        slice_index = 0
        for position, mb in enumerate(members):
            scheme = assignment.scheme_for_importance(mb.importance)
            start = mb.bit_start
            end = mb.bit_end
            # Extend across the flush tail when this MB closes a slice.
            is_last_of_slice = (
                position + 1 == len(members)
                or members[position + 1].bit_start
                >= slice_bit_bounds[slice_index]
            )
            if is_last_of_slice:
                end = slice_bit_bounds[slice_index]
                slice_index = min(slice_index + 1,
                                  len(slice_bit_bounds) - 1)
            if end <= start:
                continue
            if table.segments and \
                    table.segments[-1].scheme_name == scheme.name:
                last = table.segments[-1]
                table.segments[-1] = Segment(last.start_bit, end,
                                             last.scheme_name)
            else:
                table.segments.append(Segment(start, end, scheme.name))
        table.validate()
        tables.append(table)
    return tables


def total_pivot_bits(tables: Sequence[FramePivots]) -> int:
    """Precise bits consumed by all pivot tables."""
    return sum(table.header_bits() for table in tables)
