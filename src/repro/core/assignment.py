"""Error-correction assignment to importance classes (Section 7.2, Table 1).

Two routes to an assignment:

* :data:`PAPER_TABLE1` — the paper's published mapping, usable directly;
* :func:`assign_schemes` — the paper's optimization: distribute a global
  quality-loss budget (0.3 dB by default, sized so approximation always
  beats re-compressing for the same savings) across importance classes
  proportionally to the storage they occupy, then give each class the
  weakest scheme whose residual error rate keeps that class's marginal
  quality loss within its share.

Frame headers (and pivot tables) always get the precise scheme.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..storage.ecc import (
    DEFAULT_RAW_BER,
    ECCScheme,
    NONE_SCHEME,
    PRECISE_SCHEME,
    SCHEME_MENU,
    scheme_by_name,
)
from .classes import importance_class

#: The paper's quality-loss budget: strictly below the 0.4-0.6 dB the
#: encoder would lose by compressing away the same storage (Section 7.2).
DEFAULT_QUALITY_BUDGET_DB = 0.3


@dataclass(frozen=True)
class ClassAssignment:
    """Importance-class -> ECC scheme mapping.

    ``boundaries[k]`` is the *last* class index protected by
    ``schemes[k]``; classes beyond the final boundary use the final
    scheme. Schemes must strengthen (t non-decreasing) with class index,
    mirroring Table 1.
    """

    boundaries: Tuple[int, ...]
    schemes: Tuple[ECCScheme, ...]
    header_scheme: ECCScheme = PRECISE_SCHEME

    def __post_init__(self) -> None:
        if len(self.boundaries) != len(self.schemes):
            raise AnalysisError("boundaries and schemes must align")
        if not self.schemes:
            raise AnalysisError("assignment needs at least one scheme")
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise AnalysisError(
                f"class boundaries must strictly increase: {self.boundaries}"
            )
        ts = [scheme.t for scheme in self.schemes]
        if ts != sorted(ts):
            raise AnalysisError(
                "schemes must strengthen with importance: "
                f"{[s.name for s in self.schemes]}"
            )

    def scheme_for_class(self, class_index: int) -> ECCScheme:
        position = bisect.bisect_left(self.boundaries, class_index)
        if position >= len(self.schemes):
            position = len(self.schemes) - 1
        return self.schemes[position]

    def scheme_for_importance(self, importance: float) -> ECCScheme:
        return self.scheme_for_class(importance_class(importance))

    def distinct_schemes(self) -> List[ECCScheme]:
        seen = []
        for scheme in self.schemes:
            if scheme not in seen:
                seen.append(scheme)
        if self.header_scheme not in seen:
            seen.append(self.header_scheme)
        return seen

    def rows(self) -> List[dict]:
        """Table-1-shaped rows for reporting."""
        rows = []
        lower = 0
        for boundary, scheme in zip(self.boundaries, self.schemes):
            rows.append({
                "classes": f"{lower}-{boundary}",
                "scheme": scheme.name,
                "error_rate": scheme.block_failure_rate(),
                "overhead_percent": 100.0 * scheme.overhead,
            })
            lower = boundary + 1
        rows.append({
            "classes": "frame header",
            "scheme": self.header_scheme.name,
            "error_rate": self.header_scheme.block_failure_rate(),
            "overhead_percent": 100.0 * self.header_scheme.overhead,
        })
        return rows


#: The paper's Table 1, verbatim.
PAPER_TABLE1 = ClassAssignment(
    boundaries=(2, 10, 13, 16, 20, 26),
    schemes=(
        NONE_SCHEME,
        scheme_by_name("BCH-6"),
        scheme_by_name("BCH-7"),
        scheme_by_name("BCH-8"),
        scheme_by_name("BCH-9"),
        scheme_by_name("BCH-10"),
    ),
)

#: Everything precise: the uniform-correction baseline of Figure 11.
UNIFORM_ASSIGNMENT = ClassAssignment(
    boundaries=(0,), schemes=(PRECISE_SCHEME,),
)


@dataclass
class QualityCurve:
    """Measured cumulative quality loss for one importance class.

    ``points`` maps injected error rate -> cumulative quality change in
    dB (negative = loss) when all MBs of class <= this one are exposed
    at that rate (Figure 10a).
    """

    class_index: int
    points: Dict[float, float] = field(default_factory=dict)

    def loss_at(self, rate: float) -> float:
        """Loss (positive dB) at ``rate``, log-interpolated."""
        if not self.points:
            raise AnalysisError(f"class {self.class_index} has no points")
        rates = sorted(self.points)
        if rate <= rates[0]:
            # Below the measured range damage scales ~linearly with the
            # expected flip count, i.e. with the rate itself.
            return max(0.0, -self.points[rates[0]]) * (rate / rates[0])
        if rate >= rates[-1]:
            return max(0.0, -self.points[rates[-1]])
        position = bisect.bisect_left(rates, rate)
        low, high = rates[position - 1], rates[position]
        weight = ((math.log10(rate) - math.log10(low))
                  / (math.log10(high) - math.log10(low)))
        loss_low = max(0.0, -self.points[low])
        loss_high = max(0.0, -self.points[high])
        return loss_low + weight * (loss_high - loss_low)


#: Deterministic compression's quality price: the paper cites 0.4-0.6 dB
#: lost per 10-15% storage saved by re-encoding, i.e. ~0.04 dB/%.
COMPRESSION_DB_PER_PERCENT = 0.04


def assign_schemes_conservative(
        curves: Sequence["QualityCurve"],
        storage_fractions: Dict[int, float],
        compression_db_per_percent: float = COMPRESSION_DB_PER_PERCENT,
        menu: Optional[Sequence[ECCScheme]] = None,
        raw_ber: float = DEFAULT_RAW_BER) -> "ClassAssignment":
    """The paper's alternative strategy (Section 7.2.1).

    Instead of spending a pre-allocated quality budget, approximate a
    class only when doing so *clearly beats compression*: the weakest
    scheme is accepted only if its marginal quality loss is below what
    deterministic re-encoding would cost for the same storage saving.
    Where no weaker scheme wins, the class keeps the strongest menu
    scheme — "otherwise we employ further compression."
    """
    if compression_db_per_percent <= 0:
        raise AnalysisError("compression trade rate must be positive")
    menu = sorted(menu or SCHEME_MENU, key=lambda s: s.t)
    strongest = menu[-1]
    curves = sorted(curves, key=lambda c: c.class_index)
    if not curves:
        raise AnalysisError("no quality curves supplied")
    total_fraction = sum(
        storage_fractions.get(curve.class_index, 0.0) for curve in curves)
    if total_fraction <= 0:
        raise AnalysisError("storage fractions sum to zero")

    boundaries: List[int] = []
    schemes: List[ECCScheme] = []
    accepted_loss = 0.0
    minimum_t = 0
    for curve in curves:
        fraction = (storage_fractions.get(curve.class_index, 0.0)
                    / total_fraction)
        chosen = strongest
        for scheme in menu:
            if scheme.t < minimum_t:
                continue
            rate = scheme.block_failure_rate(raw_ber)
            marginal = max(0.0, curve.loss_at(rate) - accepted_loss)
            # Storage saved (percent of all stored bits) by this scheme
            # relative to protecting the class with the strongest one.
            saving_percent = 100.0 * fraction * (
                (strongest.overhead - scheme.overhead)
                / (1.0 + strongest.overhead))
            compression_equivalent = (compression_db_per_percent
                                      * saving_percent)
            if marginal <= compression_equivalent:
                chosen = scheme
                accepted_loss += marginal
                break
        minimum_t = chosen.t
        if schemes and schemes[-1] == chosen:
            boundaries[-1] = curve.class_index
        else:
            boundaries.append(curve.class_index)
            schemes.append(chosen)
    return ClassAssignment(boundaries=tuple(boundaries),
                           schemes=tuple(schemes))


def assign_schemes(curves: Sequence[QualityCurve],
                   storage_fractions: Dict[int, float],
                   budget_db: float = DEFAULT_QUALITY_BUDGET_DB,
                   menu: Optional[Sequence[ECCScheme]] = None,
                   raw_ber: float = DEFAULT_RAW_BER) -> ClassAssignment:
    """The paper's budget-driven optimizer.

    For each importance class (ascending), pick the weakest menu scheme
    whose residual error rate keeps the class's *marginal* loss — its
    cumulative-curve loss minus the loss already accepted for weaker
    classes — within the class's storage-proportional budget share.
    """
    if budget_db <= 0:
        raise AnalysisError(f"budget must be positive, got {budget_db}")
    menu = sorted(menu or SCHEME_MENU, key=lambda s: s.t)
    curves = sorted(curves, key=lambda c: c.class_index)
    if not curves:
        raise AnalysisError("no quality curves supplied")
    total_fraction = sum(
        storage_fractions.get(curve.class_index, 0.0) for curve in curves)
    if total_fraction <= 0:
        raise AnalysisError("storage fractions sum to zero")

    boundaries: List[int] = []
    schemes: List[ECCScheme] = []
    accepted_loss = 0.0
    minimum_t = 0
    for curve in curves:
        share = (storage_fractions.get(curve.class_index, 0.0)
                 / total_fraction) * budget_db
        chosen: Optional[ECCScheme] = None
        for scheme in menu:
            if scheme.t < minimum_t:
                continue  # assignments must strengthen with importance
            rate = scheme.block_failure_rate(raw_ber)
            marginal = max(0.0, curve.loss_at(rate) - accepted_loss)
            if marginal <= share + 1e-12:
                chosen = scheme
                accepted_loss += marginal
                break
        if chosen is None:
            chosen = menu[-1]
        minimum_t = chosen.t
        if schemes and schemes[-1] == chosen:
            boundaries[-1] = curve.class_index
        else:
            boundaries.append(curve.class_index)
            schemes.append(chosen)
    return ClassAssignment(boundaries=tuple(boundaries),
                           schemes=tuple(schemes))
