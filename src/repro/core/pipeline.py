"""End-to-end approximate video store.

The facade tying every substrate together, in the paper's order:

    raw video
      -> encode (H.264-like, with trace)            [repro.codec]
      -> importance analysis (VideoApp)             [repro.core]
      -> partition into reliability streams         [repro.core]
      -> (optional) encrypt each stream             [repro.crypto]
      -> store each stream with its ECC on MLC PCM  [repro.storage]
      -> read back (errors!) -> decrypt -> merge -> decode

``put`` runs everything up to storage; ``read`` simulates the storage
round trip and decodes. Quality is then measured against ``reconstruct``
— the error-free decode — exactly like the paper's PSNR-vs-clean-coded
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import AnalysisError
from ..codec.config import EncoderConfig
from ..codec.decoder import Decoder
from ..codec.encoder import Encoder
from ..crypto.streams import StreamEncryptor
from ..storage.density import DensityReport
from ..storage.device import ApproximateDevice, ScrubPolicy, StorageReport
from ..storage.ecc import scheme_by_name
from ..storage.mlc import MLCCellModel
from ..video.frame import VideoSequence
from .assignment import PAPER_TABLE1, ClassAssignment
from .importance import (
    ImportanceResult,
    compute_importance,
    compute_importance_streaming,
)
from .partition import (
    ProtectedVideo,
    map_stream_damage,
    merge_streams,
    partition_video,
)


@dataclass
class StoredVideo:
    """Everything ``put`` produced for one video."""

    protected: ProtectedVideo
    importance: ImportanceResult
    total_pixels: int
    encrypted: bool
    #: Streams as they sit on the device (ciphertext when encrypted).
    device_streams: Dict[str, bytes]

    def density(self) -> DensityReport:
        return self.protected.density(self.total_pixels)


class ApproximateVideoStore:
    """Store videos approximately; read them back with bounded damage."""

    def __init__(self, config: Optional[EncoderConfig] = None,
                 assignment: ClassAssignment = PAPER_TABLE1,
                 cell_model: Optional[MLCCellModel] = None,
                 encryptor: Optional[StreamEncryptor] = None,
                 exact_ecc: bool = False,
                 streaming_analysis: bool = False) -> None:
        """Args:
            config: encoder settings.
            assignment: importance-class -> ECC mapping (Table 1).
            cell_model: the MLC substrate to simulate.
            encryptor: optional per-stream encryption (CTR/OFB only).
            exact_ecc: run real BCH + cell Monte Carlo instead of the
                analytic failure model (slow; used for validation).
            streaming_analysis: compute importance GOP by GOP
                (Section 4.3.1's bounded-memory mode) instead of over
                the whole video at once; results are identical.
        """
        self.config = config or EncoderConfig()
        self.assignment = assignment
        self.cell_model = cell_model or MLCCellModel()
        self.encryptor = encryptor
        self.exact_ecc = exact_ecc
        self.streaming_analysis = streaming_analysis
        self._encoder = Encoder(self.config)
        self._decoder = Decoder()
        self._concealing_decoder: Optional[Decoder] = None
        self._last_storage_reports: Dict[str, StorageReport] = {}

    def __getstate__(self) -> dict:
        """Pickle only the store's identity, not its volatile state.

        The campaign journal hashes this pickle into the context digest
        (and workers deserialize it once per process), so the last
        read's diagnostic reports and the lazily built concealing
        decoder must not travel: they change after any read and would
        silently orphan a campaign journal on resume.
        """
        state = self.__dict__.copy()
        state["_last_storage_reports"] = {}
        state["_concealing_decoder"] = None
        return state

    @property
    def last_storage_reports(self) -> Dict[str, StorageReport]:
        """Per-stream :class:`StorageReport` of the most recent read.

        Empty before the first error-injecting read. Diagnostic only:
        never shipped to workers or folded into campaign digests.
        """
        return self._last_storage_reports

    # -- write path -------------------------------------------------------

    def put(self, video: VideoSequence) -> StoredVideo:
        """Encode, analyze, partition, and (optionally) encrypt."""
        encoded = self._encoder.encode(video)
        assert encoded.trace is not None
        if self.streaming_analysis:
            importance = compute_importance_streaming(encoded.trace)
        else:
            importance = compute_importance(encoded.trace)
        protected = partition_video(encoded, importance, self.assignment)
        device_streams = dict(protected.streams)
        if self.encryptor is not None:
            # Encryption happens after partitioning (the analysis must
            # see plaintext) and before the approximate device.
            ordered = sorted(device_streams)
            encrypted = self.encryptor.encrypt_streams(
                {index: device_streams[name]
                 for index, name in enumerate(ordered)})
            device_streams = {name: encrypted[index]
                              for index, name in enumerate(ordered)}
        return StoredVideo(
            protected=protected,
            importance=importance,
            total_pixels=video.total_pixels,
            encrypted=self.encryptor is not None,
            device_streams=device_streams,
        )

    # -- read path ---------------------------------------------------------

    def read(self, stored: StoredVideo,
             rng: Optional[np.random.Generator] = None,
             inject_errors: bool = True,
             t_days: Optional[float] = None,
             scrub: Optional[ScrubPolicy] = None,
             read_retries: Optional[int] = None,
             conceal: bool = False) -> VideoSequence:
        """Simulate the storage round trip and decode.

        The lifetime knobs all default to the paper-faithful read:
        ``t_days`` reads the cells at a given retention time, ``scrub``
        applies a periodic-rewrite policy, ``read_retries`` arms the
        re-read ladder for detected-uncorrectable blocks, and
        ``conceal`` routes the surviving uncorrectable ranges into the
        decoder's error-concealment path instead of letting it entropy-
        decode known-garbage slices.
        """
        streams = stored.device_streams
        reports: Dict[str, StorageReport] = {}
        if inject_errors:
            device = ApproximateDevice(cell_model=self.cell_model,
                                       rng=rng or np.random.default_rng(),
                                       exact=self.exact_ecc,
                                       scrub=scrub,
                                       read_retries=read_retries)
            read_back: Dict[str, bytes] = {}
            # Iterate in sorted-name order so a seeded rng produces the
            # same flip pattern regardless of dict insertion order
            # (e.g. encrypted vs plaintext stores).
            for name in sorted(streams):
                scheme = scheme_by_name(name)
                read_back[name], reports[name] = device.store_and_read(
                    streams[name], scheme, t_days=t_days)
            streams = read_back
        if stored.encrypted:
            if self.encryptor is None:
                raise AnalysisError(
                    "stored video is encrypted but the store has no key")
            ordered = sorted(stored.protected.streams)
            decrypted = self.encryptor.decrypt_streams(
                {index: streams[name] for index, name in enumerate(ordered)})
            streams = {name: decrypted[index][:len(stored.protected.streams[name])]
                       for index, name in enumerate(ordered)}
        payloads = merge_streams(stored.protected, streams)
        corrupted = stored.protected.encoded.with_payloads(payloads)
        self._last_storage_reports = reports
        if not conceal:
            return self._decoder.decode(corrupted)
        # Escalated uncorrectable blocks arrive in stream data-bit
        # coordinates; the stream ciphers (CTR/OFB) are positional, so
        # the same coordinates hold for the plaintext streams. Clamp to
        # the real (pre-padding) stream length before projection.
        damage = {
            name: [(min(block.bit_start, stored.protected.stream_bits[name]),
                    min(block.bit_end, stored.protected.stream_bits[name]))
                   for block in report.uncorrectable]
            for name, report in reports.items()
            if report.uncorrectable and name in stored.protected.stream_bits
        }
        frame_damage = map_stream_damage(stored.protected, damage) \
            if damage else {}
        if self._concealing_decoder is None:
            self._concealing_decoder = Decoder(conceal_uncorrectable=True)
        return self._concealing_decoder.decode(corrupted, frame_damage)

    # -- baselines -----------------------------------------------------------

    def reconstruct(self, stored: StoredVideo) -> VideoSequence:
        """Error-free decode (the paper's quality reference)."""
        return self._decoder.decode(stored.protected.encoded)
