"""Bitstream partitioning into reliability streams (Sections 4.4, 5.3).

``partition_video`` splits an encoded video's frame payloads, segment by
segment (per the pivot tables), into one stream per ECC scheme; each
stream is later stored with exactly its scheme's protection.
``merge_streams`` is the exact inverse, reassembling frame payloads from
(possibly corrupted) streams — split followed by merge is the identity.

Streams are bit-granular: segments need not align to bytes, so payloads
are unpacked to bit arrays for slicing and packed back afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..codec.encoded import EncodedVideo
from ..storage.density import DEFAULT_BITS_PER_CELL, DensityReport, density_report
from ..storage.ecc import ECCScheme, scheme_by_name
from .assignment import ClassAssignment
from .importance import ImportanceResult, macroblock_bits
from .pivots import FramePivots, build_frame_pivots, total_pivot_bits


def _unpack(payload: bytes) -> np.ndarray:
    return np.unpackbits(np.frombuffer(payload, dtype=np.uint8))


def _pack(bits: np.ndarray) -> bytes:
    return np.packbits(bits).tobytes()


@dataclass
class ProtectedVideo:
    """An encoded video partitioned into per-scheme reliability streams.

    ``streams[name]`` holds the concatenated payload segments assigned
    to scheme ``name``, zero-padded to a whole number of bytes;
    ``stream_bits[name]`` is the exact (pre-padding) bit count.
    """

    encoded: EncodedVideo
    pivots: List[FramePivots]
    assignment: ClassAssignment
    streams: Dict[str, bytes]
    stream_bits: Dict[str, int]

    @property
    def precise_bits(self) -> int:
        """All precise storage: container headers + pivot tables."""
        return self.encoded.header_bits + total_pivot_bits(self.pivots)

    def scheme_bit_map(self) -> Dict[ECCScheme, int]:
        return {scheme_by_name(name): bits
                for name, bits in self.stream_bits.items()}

    def density(self, total_pixels: int,
                bits_per_cell: int = DEFAULT_BITS_PER_CELL) -> DensityReport:
        """Cells/pixel accounting for this partitioned video."""
        return density_report(self.scheme_bit_map(), self.precise_bits,
                              total_pixels, bits_per_cell,
                              header_scheme=self.assignment.header_scheme)


def partition_video(encoded: EncodedVideo,
                    importance: ImportanceResult,
                    assignment: ClassAssignment,
                    pivots: Optional[List[FramePivots]] = None
                    ) -> ProtectedVideo:
    """Split an analyzed video into reliability streams."""
    if encoded.trace is None:
        raise AnalysisError("partitioning requires the encoder trace")
    mb_bits = macroblock_bits(encoded.trace, importance)
    if pivots is None:
        pivots = build_frame_pivots(encoded, mb_bits, assignment)
    collected: Dict[str, List[np.ndarray]] = {}
    for frame, table in zip(encoded.frames, pivots):
        bits = _unpack(frame.payload)
        for segment in table.segments:
            collected.setdefault(segment.scheme_name, []).append(
                bits[segment.start_bit:segment.end_bit])
    streams: Dict[str, bytes] = {}
    stream_bits: Dict[str, int] = {}
    for name, pieces in collected.items():
        joined = (np.concatenate(pieces) if pieces
                  else np.empty(0, dtype=np.uint8))
        stream_bits[name] = int(joined.size)
        streams[name] = _pack(joined)
    return ProtectedVideo(
        encoded=encoded, pivots=pivots, assignment=assignment,
        streams=streams, stream_bits=stream_bits,
    )


def merge_streams(protected: ProtectedVideo,
                  streams: Optional[Dict[str, bytes]] = None
                  ) -> List[bytes]:
    """Reassemble frame payloads from (possibly corrupted) streams.

    ``streams`` defaults to the protected video's own (clean) streams;
    pass the read-back streams from an approximate device to rebuild the
    corrupted payload set. Stream lengths must be unchanged — the
    device flips bits, it never resizes.
    """
    if streams is None:
        streams = protected.streams
    unpacked: Dict[str, np.ndarray] = {}
    cursors: Dict[str, int] = {}
    for name, clean in protected.streams.items():
        corrupted = streams.get(name)
        if corrupted is None or len(corrupted) != len(clean):
            raise AnalysisError(
                f"stream {name!r} missing or resized on read-back"
            )
        unpacked[name] = _unpack(corrupted)
        cursors[name] = 0
    payloads: List[bytes] = []
    for frame, table in zip(protected.encoded.frames, protected.pivots):
        bits = np.zeros(frame.payload_bits, dtype=np.uint8)
        for segment in table.segments:
            cursor = cursors[segment.scheme_name]
            piece = unpacked[segment.scheme_name][
                cursor:cursor + segment.bits]
            if piece.size != segment.bits:
                raise AnalysisError(
                    f"stream {segment.scheme_name!r} exhausted mid-merge"
                )
            bits[segment.start_bit:segment.end_bit] = piece
            cursors[segment.scheme_name] = cursor + segment.bits
        payloads.append(_pack(bits)[:len(frame.payload)])
    return payloads


def stream_ranges_for_frames(protected: ProtectedVideo,
                             frame_positions: Sequence[int]
                             ) -> Dict[str, Tuple[int, int]]:
    """Per-stream bit extents a set of frames' payloads live in.

    ``frame_positions`` are container positions (coded order). The
    return value maps each stream name to the half-open ``(bit_start,
    bit_end)`` range — in *stream* bit coordinates, the same coordinates
    :func:`map_stream_damage` consumes — covering every payload segment
    those frames contributed to the stream; streams the frames never
    touch are absent. The walk mirrors :func:`merge_streams`'s cursor
    sweep, so fetching exactly these ranges (padded to whatever block
    granularity the device needs) is sufficient to reassemble the
    requested frames' payloads.

    Positions need not be contiguous; the range per stream is the
    convex hull of the touched segments, which over-fetches only when
    the requested set skips frames — the random-access path requests
    dependency closures, which are nearly contiguous GOP spans.
    """
    wanted = set(int(p) for p in frame_positions)
    if not wanted:
        return {}
    for position in wanted:
        if not 0 <= position < len(protected.pivots):
            raise AnalysisError(
                f"frame position {position} outside the container")
    ranges: Dict[str, Tuple[int, int]] = {}
    cursors: Dict[str, int] = {name: 0 for name in protected.streams}
    for frame_index, table in enumerate(protected.pivots):
        for segment in table.segments:
            cursor = cursors[segment.scheme_name]
            cursors[segment.scheme_name] = cursor + segment.bits
            if frame_index not in wanted or segment.bits == 0:
                continue
            lo, hi = ranges.get(segment.scheme_name,
                                (cursor, cursor + segment.bits))
            ranges[segment.scheme_name] = (min(lo, cursor),
                                           max(hi, cursor + segment.bits))
    return ranges


def map_stream_damage(protected: ProtectedVideo,
                      damage: Dict[str, Sequence[Tuple[int, int]]]
                      ) -> Dict[int, List[Tuple[int, int]]]:
    """Project per-stream damage intervals onto frame payloads.

    ``damage`` maps scheme name to half-open ``(bit_start, bit_end)``
    intervals in *stream* bit coordinates — exactly what the device's
    :class:`~repro.storage.device.UncorrectableBlock` reports describe.
    The return value maps frame index to sorted, coalesced half-open bit
    ranges in that frame's *payload* coordinates: the slices of the
    bitstream the decoder must treat as unreadable.

    The walk mirrors :func:`merge_streams`'s cursor sweep, so the
    mapping is consistent with how payloads are actually reassembled.
    """
    per_stream: Dict[str, List[Tuple[int, int]]] = {}
    for name, intervals in damage.items():
        if name not in protected.streams:
            raise AnalysisError(
                f"damage names unknown stream {name!r}")
        cleaned = sorted((int(a), int(b)) for a, b in intervals if b > a)
        if cleaned:
            per_stream[name] = cleaned
    hit: Dict[int, List[Tuple[int, int]]] = {}
    cursors: Dict[str, int] = {name: 0 for name in protected.streams}
    for frame_index, table in enumerate(protected.pivots):
        for segment in table.segments:
            cursor = cursors[segment.scheme_name]
            cursors[segment.scheme_name] = cursor + segment.bits
            for start, end in per_stream.get(segment.scheme_name, ()):
                lo = max(start, cursor)
                hi = min(end, cursor + segment.bits)
                if lo < hi:
                    hit.setdefault(frame_index, []).append(
                        (segment.start_bit + lo - cursor,
                         segment.start_bit + hi - cursor))
    merged: Dict[int, List[Tuple[int, int]]] = {}
    for frame_index, ranges in hit.items():
        ranges.sort()
        coalesced: List[Tuple[int, int]] = [ranges[0]]
        for start, end in ranges[1:]:
            last_start, last_end = coalesced[-1]
            if start <= last_end:
                coalesced[-1] = (last_start, max(last_end, end))
            else:
                coalesced.append((start, end))
        merged[frame_index] = coalesced
    return merged
