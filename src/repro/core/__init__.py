"""VideoApp: the paper's primary contribution.

Dependency-graph importance analysis over encoded videos, pivot-based
frame partitioning, quality-budget ECC assignment, and the end-to-end
approximate video store.
"""

from .assignment import (
    COMPRESSION_DB_PER_PERCENT,
    DEFAULT_QUALITY_BUDGET_DB,
    PAPER_TABLE1,
    UNIFORM_ASSIGNMENT,
    ClassAssignment,
    QualityCurve,
    assign_schemes,
    assign_schemes_conservative,
)
from .classes import (
    ClassStorage,
    class_bit_ranges,
    class_storage_distribution,
    cumulative_storage_fractions,
    importance_class,
    storage_fraction_by_class,
)
from .graph import (
    MB_PIXELS,
    DependencyGraph,
    build_dependency_graph,
    topological_order,
)
from .importance import (
    ImportanceResult,
    MacroblockBits,
    compute_importance,
    compute_importance_streaming,
    importance_is_scan_monotone,
    macroblock_bits,
)
from .partition import (
    ProtectedVideo,
    map_stream_damage,
    merge_streams,
    partition_video,
    stream_ranges_for_frames,
)
from .pipeline import ApproximateVideoStore, StoredVideo
from .pivots import FramePivots, Segment, build_frame_pivots, total_pivot_bits

__all__ = [
    "ApproximateVideoStore",
    "COMPRESSION_DB_PER_PERCENT",
    "ClassAssignment",
    "ClassStorage",
    "DEFAULT_QUALITY_BUDGET_DB",
    "DependencyGraph",
    "FramePivots",
    "ImportanceResult",
    "MB_PIXELS",
    "MacroblockBits",
    "PAPER_TABLE1",
    "ProtectedVideo",
    "QualityCurve",
    "Segment",
    "StoredVideo",
    "UNIFORM_ASSIGNMENT",
    "assign_schemes",
    "assign_schemes_conservative",
    "build_dependency_graph",
    "build_frame_pivots",
    "class_bit_ranges",
    "class_storage_distribution",
    "compute_importance",
    "compute_importance_streaming",
    "cumulative_storage_fractions",
    "importance_class",
    "importance_is_scan_monotone",
    "macroblock_bits",
    "map_stream_damage",
    "merge_streams",
    "partition_video",
    "stream_ranges_for_frames",
    "storage_fraction_by_class",
    "topological_order",
    "total_pivot_bits",
]
