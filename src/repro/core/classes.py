"""Importance classes: the paper's logarithmic grouping (Section 7.2).

Class ``i`` contains every macroblock whose importance is at most
``2**i`` (and greater than ``2**(i-1)``). Classes are the unit at which
error-correction schemes are assigned; this module computes class
membership and the per-class storage distribution (Figure 10b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import AnalysisError
from .importance import MacroblockBits


def importance_class(importance: float) -> int:
    """Smallest i with importance <= 2**i (importance >= 1 -> i >= 0)."""
    if importance < 1.0 - 1e-9:
        raise AnalysisError(f"importance {importance} below the minimum of 1")
    return max(0, math.ceil(math.log2(max(importance, 1.0)) - 1e-12))


@dataclass(frozen=True)
class ClassStorage:
    """Bits occupied by one importance class."""

    class_index: int
    bits: int
    macroblocks: int


def class_storage_distribution(mb_bits: Sequence[MacroblockBits]
                               ) -> List[ClassStorage]:
    """Bits and MB counts per importance class, ascending class index."""
    bits: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for mb in mb_bits:
        index = importance_class(mb.importance)
        bits[index] = bits.get(index, 0) + (mb.bit_end - mb.bit_start)
        counts[index] = counts.get(index, 0) + 1
    return [
        ClassStorage(class_index=i, bits=bits[i], macroblocks=counts[i])
        for i in sorted(bits)
    ]


def cumulative_storage_fractions(distribution: Sequence[ClassStorage]
                                 ) -> List[float]:
    """Figure 10(b): cumulative fraction of storage up to each class."""
    total = sum(entry.bits for entry in distribution)
    if total == 0:
        raise AnalysisError("no storage in any class")
    running = 0
    fractions = []
    for entry in distribution:
        running += entry.bits
        fractions.append(running / total)
    return fractions


def class_bit_ranges(mb_bits: Sequence[MacroblockBits],
                     max_class: int) -> List:
    """Bit ranges (frame, start, end) of every MB in classes <= max_class.

    These are the injection targets for Figure 10(a)'s cumulative
    quality-loss curves.
    """
    ranges = []
    for mb in mb_bits:
        if importance_class(mb.importance) <= max_class and \
                mb.bit_end > mb.bit_start:
            ranges.append((mb.frame_coded_index, mb.bit_start, mb.bit_end))
    return ranges


def storage_fraction_by_class(mb_bits: Sequence[MacroblockBits]
                              ) -> Dict[int, float]:
    """Non-cumulative per-class storage fraction."""
    distribution = class_storage_distribution(mb_bits)
    total = sum(entry.bits for entry in distribution)
    if total == 0:
        raise AnalysisError("no storage in any class")
    return {entry.class_index: entry.bits / total for entry in distribution}
