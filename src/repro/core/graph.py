"""The VideoApp macroblock dependency graph (Section 4).

Nodes are macroblocks, identified by ``frame_coded_index *
macroblocks_per_frame + mb_index``. Two edge families:

* **compensation edges** (Section 4.1): pixel-domain dependencies from a
  source MB to every MB that references its pixels — motion-compensated
  inter prediction across frames and directional intra prediction within
  a frame. The weight of edge X->Y is the fraction of Y's 256 predicted
  pixels supplied by X, so the incoming weights of any predicted MB sum
  to 1.
* **coding edges** (Section 4.2): the static scan-order chain within
  each slice — entropy-coder desynchronization and predictive metadata
  coding damage every subsequent MB of the slice — with weight 1.

Both graphs are DAGs: compensation edges point forward in coded order
(references are always coded before their dependents) and coding edges
forward in scan order. The natural (coded frame, scan) order is
therefore a topological order; :func:`topological_order` computes one
from scratch anyway (Kahn), and the test suite asserts the two agree.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import AnalysisError
from ..codec.types import MB_SIZE, EncodingTrace

#: Pixels per macroblock; compensation weights are pixels / this.
MB_PIXELS = MB_SIZE * MB_SIZE


@dataclass
class DependencyGraph:
    """Weighted MB dependency graph for one encoded video."""

    num_frames: int
    macroblocks_per_frame: int
    #: Parallel arrays: compensation edge source/dest node ids + weights.
    comp_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    comp_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    comp_weight: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64))
    #: Coding chain edges (weight 1): source/dest node ids.
    coding_src: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64))
    coding_dst: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64))

    @property
    def num_nodes(self) -> int:
        return self.num_frames * self.macroblocks_per_frame

    def node_id(self, frame_coded_index: int, mb_index: int) -> int:
        return frame_coded_index * self.macroblocks_per_frame + mb_index

    def incoming_compensation_weight(self) -> np.ndarray:
        """Sum of incoming compensation weights per node.

        The paper's invariant: 1.0 for every MB that is predicted from
        other MBs, 0 for MBs with no pixel-domain dependencies.
        """
        totals = np.zeros(self.num_nodes)
        np.add.at(totals, self.comp_dst, self.comp_weight)
        return totals


def build_dependency_graph(trace: EncodingTrace) -> DependencyGraph:
    """Construct the graph from an encoder trace."""
    per_frame = trace.macroblocks_per_frame
    num_frames = len(trace.frames)
    aggregated: Dict[Tuple[int, int], float] = defaultdict(float)
    coding_src: List[int] = []
    coding_dst: List[int] = []

    for frame in trace.frames:
        if len(frame.macroblocks) != per_frame:
            raise AnalysisError(
                f"frame {frame.coded_index} traces {len(frame.macroblocks)} "
                f"MBs, expected {per_frame}"
            )
        # Compensation edges.
        for mb in frame.macroblocks:
            dst = frame.coded_index * per_frame + mb.mb_index
            for dep in mb.dependencies:
                src_frame, src_mb = dep.source
                src = src_frame * per_frame + src_mb
                if src == dst:
                    raise AnalysisError(
                        f"self-dependency at frame {frame.coded_index} "
                        f"mb {mb.mb_index}"
                    )
                aggregated[(src, dst)] += dep.pixels / MB_PIXELS
        # Coding chain per slice.
        slice_bounds = list(frame.slice_starts) + [per_frame]
        for start, end in zip(slice_bounds[:-1], slice_bounds[1:]):
            for mb_index in range(start, end - 1):
                coding_src.append(frame.coded_index * per_frame + mb_index)
                coding_dst.append(frame.coded_index * per_frame + mb_index + 1)

    if aggregated:
        pairs = np.array(sorted(aggregated), dtype=np.int64)
        weights = np.array([aggregated[tuple(p)] for p in pairs])
        comp_src, comp_dst = pairs[:, 0], pairs[:, 1]
    else:
        comp_src = np.empty(0, np.int64)
        comp_dst = np.empty(0, np.int64)
        weights = np.empty(0, np.float64)
    return DependencyGraph(
        num_frames=num_frames,
        macroblocks_per_frame=per_frame,
        comp_src=comp_src,
        comp_dst=comp_dst,
        comp_weight=weights,
        coding_src=np.array(coding_src, dtype=np.int64),
        coding_dst=np.array(coding_dst, dtype=np.int64),
    )


def topological_order(num_nodes: int, src: np.ndarray,
                      dst: np.ndarray) -> np.ndarray:
    """Kahn's algorithm with a min-heap (smallest ready node first), so
    the result is deterministic and — because every edge in these graphs
    points from a smaller to a larger node id — equals the natural
    (coded frame, scan) order.

    Raises :class:`AnalysisError` on cycles — a cycle would mean the
    encoder traced an impossible dependency.
    """
    indegree = np.zeros(num_nodes, dtype=np.int64)
    np.add.at(indegree, dst, 1)
    adjacency: Dict[int, List[int]] = defaultdict(list)
    for s, d in zip(src.tolist(), dst.tolist()):
        adjacency[s].append(d)
    ready = [int(n) for n in np.nonzero(indegree == 0)[0]]
    heapq.heapify(ready)
    order = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for neighbor in adjacency.get(node, ()):
            indegree[neighbor] -= 1
            if indegree[neighbor] == 0:
                heapq.heappush(ready, neighbor)
    if len(order) != num_nodes:
        raise AnalysisError("dependency graph contains a cycle")
    return np.array(order, dtype=np.int64)
