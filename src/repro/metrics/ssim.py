"""Structural similarity (SSIM), single scale.

Follows Wang et al. 2004 with an 11x11 Gaussian window (sigma 1.5) and
the standard stabilizers C1, C2 for 8-bit content. Implemented with
separable convolution via numpy only.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import VideoFormatError
from ..obs import trace as obs_trace
from ..video.frame import VideoSequence, require_comparable

_C1 = (0.01 * 255.0) ** 2
_C2 = (0.03 * 255.0) ** 2


def gaussian_kernel(size: int = 11, sigma: float = 1.5) -> np.ndarray:
    """1-D normalized Gaussian kernel."""
    if size < 1 or size % 2 == 0:
        raise VideoFormatError(f"kernel size must be odd and >= 1, got {size}")
    half = size // 2
    xs = np.arange(-half, half + 1, dtype=np.float64)
    kernel = np.exp(-(xs ** 2) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def _filter2(img: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Separable 'valid' convolution with a 1-D kernel on both axes."""
    size = kernel.shape[0]
    out_rows = img.shape[0] - size + 1
    out_cols = img.shape[1] - size + 1
    if out_rows <= 0 or out_cols <= 0:
        raise VideoFormatError(
            f"frame {img.shape} smaller than SSIM window {size}"
        )
    # Convolve rows.
    tmp = np.empty((img.shape[0], out_cols), dtype=np.float64)
    for offset, weight in enumerate(kernel):
        block = img[:, offset:offset + out_cols]
        if offset == 0:
            np.multiply(block, weight, out=tmp)
        else:
            tmp += weight * block
    # Convolve columns.
    out = np.empty((out_rows, out_cols), dtype=np.float64)
    for offset, weight in enumerate(kernel):
        block = tmp[offset:offset + out_rows, :]
        if offset == 0:
            np.multiply(block, weight, out=out)
        else:
            out += weight * block
    return out


def ssim_map(reference: np.ndarray, test: np.ndarray,
             window: int = 11, sigma: float = 1.5) -> np.ndarray:
    """Per-pixel SSIM index map (valid region only)."""
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise VideoFormatError(f"shape mismatch {ref.shape} vs {tst.shape}")
    kernel = gaussian_kernel(window, sigma)
    mu_x = _filter2(ref, kernel)
    mu_y = _filter2(tst, kernel)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_xx = _filter2(ref * ref, kernel) - mu_xx
    sigma_yy = _filter2(tst * tst, kernel) - mu_yy
    sigma_xy = _filter2(ref * tst, kernel) - mu_xy
    numerator = (2.0 * mu_xy + _C1) * (2.0 * sigma_xy + _C2)
    denominator = (mu_xx + mu_yy + _C1) * (sigma_xx + sigma_yy + _C2)
    return numerator / denominator


def ssim(reference: np.ndarray, test: np.ndarray,
         window: int = 11, sigma: float = 1.5) -> float:
    """Mean SSIM of one frame pair, in [-1, 1]."""
    return float(np.mean(ssim_map(reference, test, window, sigma)))


def frame_ssims(reference: VideoSequence, test: VideoSequence) -> List[float]:
    require_comparable(reference, test)
    return [ssim(r, t) for r, t in zip(reference, test)]


def video_ssim(reference: VideoSequence, test: VideoSequence) -> float:
    """Frame-averaged SSIM."""
    with obs_trace.span("metric.ssim", frames=len(reference)):
        return float(np.mean(frame_ssims(reference, test)))
