"""Multi-scale structural similarity (MS-SSIM).

Follows Wang, Simoncelli & Bovik 2003: the image pair is evaluated at a
pyramid of scales produced by 2x2 mean downsampling. Contrast/structure
terms contribute at every scale, luminance only at the coarsest, with the
standard per-scale exponents.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import VideoFormatError
from ..obs import trace as obs_trace
from ..video.frame import VideoSequence, require_comparable
from .ssim import _C1, _C2, _filter2, gaussian_kernel

#: Standard MS-SSIM scale weights (5 scales).
DEFAULT_WEIGHTS = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)


def _downsample(img: np.ndarray) -> np.ndarray:
    """2x2 mean downsampling, truncating odd rows/columns."""
    rows = img.shape[0] // 2 * 2
    cols = img.shape[1] // 2 * 2
    trimmed = img[:rows, :cols]
    return 0.25 * (trimmed[0::2, 0::2] + trimmed[1::2, 0::2]
                   + trimmed[0::2, 1::2] + trimmed[1::2, 1::2])


def _luminance_and_cs(ref: np.ndarray, tst: np.ndarray, window: int,
                      sigma: float) -> tuple:
    kernel = gaussian_kernel(window, sigma)
    mu_x = _filter2(ref, kernel)
    mu_y = _filter2(tst, kernel)
    sigma_xx = _filter2(ref * ref, kernel) - mu_x * mu_x
    sigma_yy = _filter2(tst * tst, kernel) - mu_y * mu_y
    sigma_xy = _filter2(ref * tst, kernel) - mu_x * mu_y
    luminance = ((2.0 * mu_x * mu_y + _C1)
                 / (mu_x * mu_x + mu_y * mu_y + _C1))
    cs = (2.0 * sigma_xy + _C2) / (sigma_xx + sigma_yy + _C2)
    return float(np.mean(luminance * cs)), float(np.mean(cs))


def ms_ssim(reference: np.ndarray, test: np.ndarray,
            weights: Sequence[float] = DEFAULT_WEIGHTS,
            window: int = 11, sigma: float = 1.5) -> float:
    """MS-SSIM index of one frame pair.

    Scales whose downsampled frame would be smaller than the window are
    dropped (with weights renormalized), so small test frames remain
    measurable.
    """
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise VideoFormatError(f"shape mismatch {ref.shape} vs {tst.shape}")
    if not weights:
        raise VideoFormatError("weights must be non-empty")

    usable_weights: List[float] = []
    cs_values: List[float] = []
    final_ssim = 1.0
    for level, weight in enumerate(weights):
        if min(ref.shape) < window:
            break
        ssim_full, cs = _luminance_and_cs(ref, tst, window, sigma)
        usable_weights.append(float(weight))
        cs_values.append(cs)
        final_ssim = ssim_full
        if level != len(weights) - 1:
            ref = _downsample(ref)
            tst = _downsample(tst)
    if not usable_weights:
        raise VideoFormatError(
            f"frame {reference.shape} too small for MS-SSIM window {window}"
        )
    total = sum(usable_weights)
    usable_weights = [w / total for w in usable_weights]
    # Contrast/structure at all scales but the last; full SSIM at the last.
    result = 1.0
    for weight, cs in zip(usable_weights[:-1], cs_values[:-1]):
        result *= max(cs, 0.0) ** weight
    result *= max(final_ssim, 0.0) ** usable_weights[-1]
    return float(result)


def video_ms_ssim(reference: VideoSequence, test: VideoSequence) -> float:
    """Frame-averaged MS-SSIM."""
    require_comparable(reference, test)
    with obs_trace.span("metric.ms_ssim", frames=len(reference)):
        return float(np.mean([ms_ssim(r, t)
                              for r, t in zip(reference, test)]))
