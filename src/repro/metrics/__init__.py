"""Video quality metrics: PSNR (primary), SSIM, MS-SSIM, VIFP."""

from .msssim import ms_ssim, video_ms_ssim
from .psnr import (
    PEAK,
    PSNR_CAP,
    frame_psnrs,
    mse,
    psnr,
    quality_change_db,
    video_psnr,
)
from .ssim import frame_ssims, gaussian_kernel, ssim, ssim_map, video_ssim
from .vif import video_vifp, vifp

__all__ = [
    "PEAK",
    "PSNR_CAP",
    "frame_psnrs",
    "frame_ssims",
    "gaussian_kernel",
    "ms_ssim",
    "mse",
    "psnr",
    "quality_change_db",
    "ssim",
    "ssim_map",
    "video_ms_ssim",
    "video_psnr",
    "video_ssim",
    "video_vifp",
    "vifp",
]
