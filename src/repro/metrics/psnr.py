"""Peak signal-to-noise ratio.

The paper's primary quality metric: PSNR per frame, averaged across
frames ("following the established practice", Section 6.1). Identical
frames have infinite PSNR; we cap at :data:`PSNR_CAP` dB so averages and
quality *deltas* stay finite, matching how VQMT-style tools report
lossless frames.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..errors import VideoFormatError
from ..obs import trace as obs_trace
from ..video.frame import VideoSequence, require_comparable

#: PSNR reported for bit-exact frames (dB). 100 dB is far above any lossy
#: operating point, so caps never distort comparisons of damaged content.
PSNR_CAP = 100.0

#: Peak signal value for 8-bit content.
PEAK = 255.0


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two equally shaped frames."""
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise VideoFormatError(f"shape mismatch {ref.shape} vs {tst.shape}")
    return float(np.mean((ref - tst) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray) -> float:
    """PSNR (dB) of ``test`` against ``reference`` for one frame."""
    err = mse(reference, test)
    if err == 0.0:
        return PSNR_CAP
    return min(PSNR_CAP, 10.0 * math.log10(PEAK * PEAK / err))


def frame_psnrs(reference: VideoSequence, test: VideoSequence) -> List[float]:
    """Per-frame PSNR list."""
    require_comparable(reference, test)
    return [psnr(r, t) for r, t in zip(reference, test)]


def video_psnr(reference: VideoSequence, test: VideoSequence) -> float:
    """Frame-averaged PSNR (dB), the paper's headline quality number."""
    with obs_trace.span("metric.psnr", frames=len(reference)):
        values = frame_psnrs(reference, test)
        return float(np.mean(values))


def quality_change_db(reference: VideoSequence,
                      clean: VideoSequence,
                      damaged: VideoSequence) -> float:
    """Quality *change* of ``damaged`` relative to ``clean``, both
    measured against the raw ``reference``.

    Negative values mean quality loss, mirroring the y-axes of the
    paper's Figures 9 and 10.
    """
    return video_psnr(reference, damaged) - video_psnr(reference, clean)
