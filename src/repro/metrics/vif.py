"""Visual information fidelity, pixel domain (VIFP).

A multi-scale, pixel-domain variant of Sheikh & Bovik's VIF, as used by
the VQMT tool the paper references. At each scale the reference is
modelled as a Gaussian source observed through a gain+noise channel; the
index is the ratio of the information the test image preserves to the
information in the reference.
"""

from __future__ import annotations

import numpy as np

from ..errors import VideoFormatError
from ..obs import trace as obs_trace
from ..video.frame import VideoSequence, require_comparable
from .ssim import _filter2, gaussian_kernel

_SIGMA_NSQ = 2.0  # HVS internal neuronal noise variance.
_EPS = 1e-10


def _vif_scale(ref: np.ndarray, tst: np.ndarray, window: int,
               sigma: float) -> tuple:
    kernel = gaussian_kernel(window, sigma)
    mu_x = _filter2(ref, kernel)
    mu_y = _filter2(tst, kernel)
    sigma_xx = np.maximum(_filter2(ref * ref, kernel) - mu_x * mu_x, 0.0)
    sigma_yy = np.maximum(_filter2(tst * tst, kernel) - mu_y * mu_y, 0.0)
    sigma_xy = _filter2(ref * tst, kernel) - mu_x * mu_y

    gain = sigma_xy / (sigma_xx + _EPS)
    noise_var = sigma_yy - gain * sigma_xy
    # Guard degenerate regions as in the reference implementation.
    gain = np.where(sigma_xx < _EPS, 0.0, gain)
    noise_var = np.where(sigma_xx < _EPS, sigma_yy, noise_var)
    gain = np.maximum(gain, 0.0)
    noise_var = np.maximum(noise_var, _EPS)

    numerator = np.sum(
        np.log2(1.0 + gain * gain * sigma_xx / (noise_var + _SIGMA_NSQ))
    )
    denominator = np.sum(np.log2(1.0 + sigma_xx / _SIGMA_NSQ))
    return float(numerator), float(denominator)


def _downsample(img: np.ndarray) -> np.ndarray:
    rows = img.shape[0] // 2 * 2
    cols = img.shape[1] // 2 * 2
    trimmed = img[:rows, :cols]
    return 0.25 * (trimmed[0::2, 0::2] + trimmed[1::2, 0::2]
                   + trimmed[0::2, 1::2] + trimmed[1::2, 1::2])


def vifp(reference: np.ndarray, test: np.ndarray, scales: int = 4) -> float:
    """VIFP index of one frame pair; 1.0 means perfect fidelity."""
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise VideoFormatError(f"shape mismatch {ref.shape} vs {tst.shape}")
    if scales < 1:
        raise VideoFormatError("scales must be >= 1")
    numerator_total = 0.0
    denominator_total = 0.0
    for scale in range(scales):
        # Window shrinks with scale as in the canonical implementation.
        size = max(3, 2 ** (scales - scale) + 1)
        if size % 2 == 0:
            size += 1
        if min(ref.shape) < size:
            break
        num, den = _vif_scale(ref, tst, size, size / 5.0)
        numerator_total += num
        denominator_total += den
        ref = _downsample(ref)
        tst = _downsample(tst)
    if denominator_total <= 0.0:
        return 1.0
    return float(numerator_total / denominator_total)


def video_vifp(reference: VideoSequence, test: VideoSequence) -> float:
    """Frame-averaged VIFP."""
    require_comparable(reference, test)
    with obs_trace.span("metric.vifp", frames=len(reference)):
        return float(np.mean([vifp(r, t) for r, t in zip(reference, test)]))
