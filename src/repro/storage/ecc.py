"""Error-correction scheme registry and analytic rates.

Reproduces the paper's Figure 8: BCH-X codes over 512-bit data blocks on
a substrate with raw bit error rate 1e-3, listing storage overhead
(10*X/512) and correction capability (the uncorrectable-block rate from
the binomial tail). The registry also carries the "no correction"
scheme (raw cells) and answers the per-importance-class lookups that
Table 1 and the density accounting need.

The codes are self-correcting: a BCH-X block protects its 512 data bits
*and* its own 10*X parity bits, so the binomial tail is taken over the
full block length — matching the paper's "which include both the data
block and the code metadata".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import StorageError

#: Raw bit error rate of the paper's 8-level PCM substrate.
DEFAULT_RAW_BER = 1e-3

#: Data block size the paper protects (bits).
DEFAULT_BLOCK_DATA_BITS = 512

#: Parity bits per corrected error for the GF(2^10) BCH family.
PARITY_BITS_PER_T = 10


def binomial_tail(n: int, p: float, t: int) -> float:
    """P[Binomial(n, p) > t], computed stably in log space."""
    if not 0.0 <= p <= 1.0:
        raise StorageError(f"probability {p} out of range")
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0 if t < n else 0.0
    # Sum the lower tail and subtract; for small p the upper tail is tiny,
    # so sum the upper tail directly instead (fewer, dominant terms).
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for k in range(t + 1, n + 1):
        log_term = (math.lgamma(n + 1) - math.lgamma(k + 1)
                    - math.lgamma(n - k + 1) + k * log_p + (n - k) * log_q)
        term = math.exp(log_term)
        total += term
        if term < total * 1e-18:
            break
    return min(total, 1.0)


def conditional_error_count(n: int, p: float, t: int, u: float) -> int:
    """Sample ``K ~ Binomial(n, p)`` conditioned on ``K > t`` by inverse
    CDF, driven by the uniform variate ``u`` in ``[0, 1)``.

    This is the surviving-raw-error count of a failed ECC block: the
    analytic device already knows the block failed (that is what
    conditioning on ``K > t`` encodes), and ``u`` tells it *how badly*.
    At low raw BER the answer is almost surely ``t + 1`` (the dominant
    failure pattern); at high BER the conditional mass shifts upward —
    matching what the exact mode's physical round trip produces.

    Driving this from an externally supplied ``u`` (rather than drawing
    internally) lets the device reuse the same uniform that decided the
    failure event, keeping its RNG stream layout unchanged.
    """
    if not 0.0 <= u < 1.0:
        raise StorageError(f"conditional variate {u} out of [0, 1)")
    if not 0 <= t < n:
        raise StorageError(f"threshold t={t} out of range for n={n}")
    tail = binomial_tail(n, p, t)
    if tail <= 0.0:
        return t + 1
    log_p = math.log(p)
    log_q = math.log1p(-p)
    cumulative = 0.0
    for k in range(t + 1, n + 1):
        log_term = (math.lgamma(n + 1) - math.lgamma(k + 1)
                    - math.lgamma(n - k + 1) + k * log_p + (n - k) * log_q)
        cumulative += math.exp(log_term) / tail
        if cumulative > u:
            return k
    return n


@dataclass(frozen=True)
class ECCScheme:
    """One row of the paper's error-correction menu.

    ``t = 0`` denotes raw, uncorrected storage.
    """

    name: str
    t: int
    data_bits: int = DEFAULT_BLOCK_DATA_BITS

    @property
    def parity_bits(self) -> int:
        return PARITY_BITS_PER_T * self.t

    @property
    def block_bits(self) -> int:
        return self.data_bits + self.parity_bits

    @property
    def overhead(self) -> float:
        """Storage overhead: parity bits per data bit (Figure 8 left axis)."""
        return self.parity_bits / self.data_bits

    def block_failure_rate(self, raw_ber: float = DEFAULT_RAW_BER) -> float:
        """Probability a protected block ends up uncorrectable.

        This is the paper's "correction capability" (Figure 8 right
        axis) and the "error rate" column of Table 1: raw cells fail per
        bit at ``raw_ber``; coded blocks fail when more than ``t`` of
        their ``block_bits`` cells flip.
        """
        if self.t == 0:
            return raw_ber
        return binomial_tail(self.block_bits, raw_ber, self.t)

    def residual_bit_error_rate(self, raw_ber: float = DEFAULT_RAW_BER
                                ) -> float:
        """Expected uncorrected bit errors per stored data bit.

        Finer-grained than :meth:`block_failure_rate`: conditioned on a
        block failing, about ``t + 1`` raw errors survive.
        """
        if self.t == 0:
            return raw_ber
        return (self.block_failure_rate(raw_ber) * (self.t + 1)
                / self.block_bits)


#: The "no protection" scheme (raw substrate error rate).
NONE_SCHEME = ECCScheme(name="None", t=0)

#: Strongest scheme: the paper's precise storage (10^-16 with BCH-16).
PRECISE_SCHEME = ECCScheme(name="BCH-16", t=16)

#: The menu of Figure 8, plus raw storage.
SCHEME_MENU: List[ECCScheme] = [
    NONE_SCHEME,
    ECCScheme(name="BCH-6", t=6),
    ECCScheme(name="BCH-7", t=7),
    ECCScheme(name="BCH-8", t=8),
    ECCScheme(name="BCH-9", t=9),
    ECCScheme(name="BCH-10", t=10),
    ECCScheme(name="BCH-11", t=11),
    PRECISE_SCHEME,
]

_SCHEMES_BY_NAME: Dict[str, ECCScheme] = {s.name: s for s in SCHEME_MENU}


def scheme_by_name(name: str) -> ECCScheme:
    try:
        return _SCHEMES_BY_NAME[name]
    except KeyError:
        raise StorageError(
            f"unknown ECC scheme {name!r}; known: {sorted(_SCHEMES_BY_NAME)}"
        ) from None


def scheme_for_target_rate(target_rate: float,
                           raw_ber: float = DEFAULT_RAW_BER,
                           menu: Optional[List[ECCScheme]] = None
                           ) -> ECCScheme:
    """Weakest menu scheme achieving at most ``target_rate`` failures."""
    candidates = sorted(menu or SCHEME_MENU, key=lambda s: s.t)
    for scheme in candidates:
        if scheme.block_failure_rate(raw_ber) <= target_rate:
            return scheme
    raise StorageError(
        f"no scheme in the menu reaches failure rate {target_rate} "
        f"at raw BER {raw_ber}"
    )


def figure8_table(raw_ber: float = DEFAULT_RAW_BER) -> List[dict]:
    """The rows of the paper's Figure 8 (overhead and capability)."""
    rows = []
    for scheme in SCHEME_MENU:
        if scheme.t == 0:
            continue
        rows.append({
            "scheme": scheme.name,
            "t": scheme.t,
            "overhead_percent": 100.0 * scheme.overhead,
            "uncorrectable_rate": scheme.block_failure_rate(raw_ber),
        })
    return rows
