"""Monte Carlo bit-flip injection.

Implements the paper's simulation methodology (Section 6.4):

* errors land at independent uniform positions, with the per-run count
  drawn from the binomial distribution;
* for very low error rates, where a video would typically see *zero*
  flips, at least one flip is forced and the measured quality loss is
  later scaled down by the probability that any flip occurs at all
  (:func:`rare_event_scale`).

Injection can target whole payloads or arbitrary bit-range subsets of
them (the equal-storage importance bins of Figure 9 and the importance
classes of Figure 10).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StorageError
from ..obs import trace as obs_trace

#: One injectable region: (payload index, start bit, end bit).
BitRange = Tuple[int, int, int]


def flip_bit(payload: bytearray, bit_index: int) -> None:
    """Flip one bit (MSB-first indexing) of a byte buffer in place."""
    if not payload:
        raise StorageError("cannot flip a bit in an empty payload")
    if bit_index < 0:
        raise StorageError(f"negative bit index {bit_index}")
    byte_index, bit_offset = divmod(bit_index, 8)
    if byte_index >= len(payload):
        raise StorageError(
            f"bit {bit_index} outside payload of {len(payload)} bytes"
        )
    payload[byte_index] ^= 0x80 >> bit_offset


@dataclass
class InjectionResult:
    """Outcome of one injection pass."""

    payloads: List[bytes]
    num_flips: int
    forced: bool  #: True when the >=1-flip rule overrode a zero draw


def sample_flip_count(total_bits: int, error_rate: float,
                      rng: np.random.Generator,
                      force_at_least_one: bool = False) -> Tuple[int, bool]:
    """Binomial flip count; optionally forced to be >= 1 (Section 6.4)."""
    if total_bits < 0:
        raise StorageError(f"negative bit count {total_bits}")
    if not 0.0 <= error_rate <= 1.0:
        raise StorageError(f"error rate {error_rate} out of range")
    count = int(rng.binomial(total_bits, error_rate)) if total_bits else 0
    if count == 0 and force_at_least_one and total_bits > 0:
        return 1, True
    return count, False


def occurrence_probability(total_bits: int, error_rate: float) -> float:
    """P[at least one flip lands in ``total_bits``]."""
    if total_bits <= 0 or error_rate <= 0.0:
        return 0.0
    if error_rate >= 1.0:
        return 1.0
    return float(-np.expm1(total_bits * np.log1p(-error_rate)))


def rare_event_scale(total_bits: int, error_rate: float) -> float:
    """Quality-loss scale factor for forced-flip measurements.

    When a flip was forced, the measured loss is multiplied by the
    probability that the video of this size would see any flip at all —
    the paper's low-rate scaling rule.
    """
    return occurrence_probability(total_bits, error_rate)


def inject_into_payloads(payloads: Sequence[bytes], error_rate: float,
                         rng: np.random.Generator,
                         ranges: Optional[Sequence[BitRange]] = None,
                         force_at_least_one: bool = False
                         ) -> InjectionResult:
    """Flip bits at ``error_rate`` within the given bit ranges.

    ``ranges`` defaults to the entirety of every (non-empty) payload.
    Returns new payload byte strings (inputs are never mutated) plus the
    flip count. Empty payload lists, empty range lists (including the
    default ranges when every payload is zero-length), and
    degenerate/inverted spans (``start >= end``) are rejected rather
    than silently injecting zero flips — a zero-flip "injection" would
    corrupt campaign statistics without any visible symptom.
    """
    if not payloads:
        raise StorageError("no payloads to inject into")
    if ranges is None:
        ranges = [(index, 0, 8 * len(payload))
                  for index, payload in enumerate(payloads)
                  if len(payload)]
    if not ranges:
        raise StorageError(
            "no injectable bits: the bit-range list is empty (every "
            "payload is zero-length?)")
    lengths = []
    for payload_index, start, end in ranges:
        if not 0 <= payload_index < len(payloads):
            raise StorageError(f"range names payload {payload_index}")
        if start >= end:
            raise StorageError(
                f"inverted or empty bit range ({start}, {end}) on payload "
                f"{payload_index}: start must be < end"
            )
        if not 0 <= start <= end <= 8 * len(payloads[payload_index]):
            raise StorageError(
                f"range ({start}, {end}) outside payload "
                f"{payload_index} of {8 * len(payloads[payload_index])} bits"
            )
        lengths.append(end - start)
    cumulative = np.concatenate([[0], np.cumsum(lengths)])
    total_bits = int(cumulative[-1])

    with obs_trace.span("inject", total_bits=total_bits,
                        rate=error_rate) as live:
        count, forced = sample_flip_count(total_bits, error_rate, rng,
                                          force_at_least_one)
        buffers = [bytearray(p) for p in payloads]
        if count > total_bits:
            count = total_bits
        if count:
            positions = rng.choice(total_bits, size=count, replace=False)
            for position in positions:
                range_index = bisect_right(cumulative, int(position)) - 1
                payload_index, start, _end = ranges[range_index]
                offset = int(position) - int(cumulative[range_index])
                flip_bit(buffers[payload_index], start + offset)
        if live is not None:
            live.attrs["flips"] = int(count)
            live.attrs["forced"] = forced
        return InjectionResult(
            payloads=[bytes(b) for b in buffers],
            num_flips=int(count),
            forced=forced,
        )


def inject_correlated_burst(payloads: Sequence[bytes], burst_bits: int,
                            rng: np.random.Generator,
                            ranges: Optional[Sequence[BitRange]] = None
                            ) -> InjectionResult:
    """Flip one *contiguous* span of ``burst_bits`` bits.

    The independent-uniform model of :func:`inject_into_payloads`
    understates real device failure modes where damage clusters — a
    worn cell neighbourhood, a disturbed wordline — so this injector
    places a single burst: a start position uniform over the
    injectable bit space (clamped so the span fits), then every bit in
    the span flipped. Spans are measured in the *cumulative* range
    space, so a burst can straddle two adjacent ranges exactly like
    physical damage straddling a partition boundary. Validation
    mirrors :func:`inject_into_payloads`.
    """
    if not payloads:
        raise StorageError("no payloads to inject into")
    if burst_bits < 1:
        raise StorageError(f"burst_bits must be >= 1, got {burst_bits}")
    if ranges is None:
        ranges = [(index, 0, 8 * len(payload))
                  for index, payload in enumerate(payloads)
                  if len(payload)]
    if not ranges:
        raise StorageError(
            "no injectable bits: the bit-range list is empty (every "
            "payload is zero-length?)")
    lengths = []
    for payload_index, start, end in ranges:
        if not 0 <= payload_index < len(payloads):
            raise StorageError(f"range names payload {payload_index}")
        if start >= end:
            raise StorageError(
                f"inverted or empty bit range ({start}, {end}) on "
                f"payload {payload_index}: start must be < end")
        if not 0 <= start <= end <= 8 * len(payloads[payload_index]):
            raise StorageError(
                f"range ({start}, {end}) outside payload "
                f"{payload_index} of "
                f"{8 * len(payloads[payload_index])} bits")
        lengths.append(end - start)
    cumulative = np.concatenate([[0], np.cumsum(lengths)])
    total_bits = int(cumulative[-1])
    burst = min(int(burst_bits), total_bits)
    with obs_trace.span("inject", total_bits=total_bits,
                        burst_bits=burst) as live:
        start_at = (int(rng.integers(total_bits - burst + 1))
                    if total_bits > burst else 0)
        buffers = [bytearray(p) for p in payloads]
        for position in range(start_at, start_at + burst):
            range_index = bisect_right(cumulative, position) - 1
            payload_index, start, _end = ranges[range_index]
            offset = position - int(cumulative[range_index])
            flip_bit(buffers[payload_index], start + offset)
        if live is not None:
            live.attrs["flips"] = burst
            live.attrs["burst_start"] = start_at
        return InjectionResult(
            payloads=[bytes(b) for b in buffers],
            num_flips=burst,
            forced=False,
        )


def inject_single_flip(payloads: Sequence[bytes], payload_index: int,
                       bit_index: int) -> List[bytes]:
    """Deterministically flip exactly one bit (Figure 3's probe)."""
    if not payloads:
        raise StorageError("no payloads to inject into")
    if not 0 <= payload_index < len(payloads):
        raise StorageError(
            f"payload index {payload_index} outside 0..{len(payloads) - 1}")
    with obs_trace.span("inject", flips=1, single=True):
        buffers = [bytearray(p) for p in payloads]
        flip_bit(buffers[payload_index], bit_index)
        return [bytes(b) for b in buffers]
