"""Galois field GF(2^m) arithmetic.

Log/antilog-table arithmetic over GF(2^m), the algebra under the BCH
codes the paper's storage substrate uses (Section 6.2). The default
field GF(2^10) hosts length-1023 codes, which shortened to 512 data bits
give exactly the 10*t parity-bit overheads of the paper's Figure 8.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import StorageError

#: Primitive polynomials (bit masks, including the x^m term) per m.
PRIMITIVE_POLYS = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,  # x^10 + x^3 + 1
    11: 0b100000000101,
    12: 0b1000001010011,
}


class GF2m:
    """GF(2^m) with exp/log tables and vectorized helpers."""

    def __init__(self, m: int) -> None:
        if m not in PRIMITIVE_POLYS:
            raise StorageError(
                f"no primitive polynomial configured for m={m}"
            )
        self.m = m
        self.order = (1 << m) - 1  # multiplicative group order
        poly = PRIMITIVE_POLYS[m]
        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.order + 1, dtype=np.int64)
        value = 1
        for power in range(self.order):
            exp[power] = value
            log[value] = power
            value <<= 1
            if value & (1 << m):
                value ^= poly
        exp[self.order:2 * self.order] = exp[:self.order]
        self._exp = exp
        self._log = log

    # -- scalar operations ----------------------------------------------

    def multiply(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, a: int) -> int:
        if a == 0:
            raise StorageError("zero has no inverse in GF(2^m)")
        return int(self._exp[self.order - self._log[a]])

    def divide(self, a: int, b: int) -> int:
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, exponent: int) -> int:
        """a**exponent with exponent of any sign."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise StorageError("0 cannot be raised to a negative power")
            return 0
        log_a = int(self._log[a])
        return int(self._exp[(log_a * exponent) % self.order])

    def alpha_power(self, exponent: int) -> int:
        """alpha**exponent for the field's primitive element alpha."""
        return int(self._exp[exponent % self.order])

    # -- vectorized operations -------------------------------------------

    def alpha_powers(self, exponents: np.ndarray) -> np.ndarray:
        """Vectorized alpha**e for an integer exponent array."""
        return self._exp[np.mod(exponents, self.order)]

    def poly_eval(self, coefficients: List[int], x: int) -> int:
        """Evaluate a polynomial (coefficients[i] is the x^i term) at x."""
        if x == 0:
            return coefficients[0] if coefficients else 0
        log_x = int(self._log[x])
        result = 0
        for degree, coefficient in enumerate(coefficients):
            if coefficient:
                term = self._exp[(int(self._log[coefficient])
                                  + degree * log_x) % self.order]
                result ^= int(term)
        return result

    # -- polynomial arithmetic over GF(2^m) ---------------------------------

    def poly_multiply(self, a: List[int], b: List[int]) -> List[int]:
        """Product of two polynomials with GF(2^m) coefficients."""
        result = [0] * (len(a) + len(b) - 1)
        for i, coeff_a in enumerate(a):
            if not coeff_a:
                continue
            for j, coeff_b in enumerate(b):
                if coeff_b:
                    result[i + j] ^= self.multiply(coeff_a, coeff_b)
        return result

    def minimal_polynomial(self, exponent: int) -> List[int]:
        """Minimal polynomial (over GF(2)) of alpha**exponent.

        Returned as a coefficient list over GF(2) (values 0/1),
        lowest-degree first.
        """
        # Cyclotomic coset of the exponent under doubling.
        coset = []
        current = exponent % self.order
        while current not in coset:
            coset.append(current)
            current = (current * 2) % self.order
        poly = [1]
        for member in coset:
            poly = self.poly_multiply(poly, [self.alpha_power(member), 1])
        if any(c not in (0, 1) for c in poly):
            raise StorageError(
                f"minimal polynomial of alpha^{exponent} is not binary: {poly}"
            )
        return poly
