"""Binary BCH codes: real encode/decode.

Systematic, shortened binary BCH codes over GF(2^10) (native length
1023). With 512 data bits, BCH-t adds exactly ``10*t`` parity bits —
reproducing the storage overheads of the paper's Figure 8 (BCH-6:
60/512 = 11.7% ... BCH-16: 160/512 = 31.3%).

Decoding is the textbook chain: syndromes -> Berlekamp–Massey ->
Chien search; errors are bit flips at the located positions (binary
code, no Forney magnitudes needed). ``decode`` reports failure when more
than ``t`` errors corrupted the block (detected by an inconsistent
locator), in which case the received bits are returned uncorrected —
modelling the paper's "uncorrectable error" events.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..errors import StorageError
from ..obs import trace as obs_trace
from .gf import GF2m


def _polynomial_remainder_bits(dividend: int, dividend_bits: int,
                               divisor: int, divisor_degree: int) -> int:
    """Remainder of GF(2) polynomial division, operands as Python ints.

    Bit i of an operand is the x^i coefficient.
    """
    remainder = dividend
    for shift in range(dividend_bits - 1, divisor_degree - 1, -1):
        if (remainder >> shift) & 1:
            remainder ^= divisor << (shift - divisor_degree)
    return remainder


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of one block decode.

    Three outcomes are distinguishable:

    * ``success`` and the data is right — a clean or corrected block;
    * ``detected_uncorrectable`` — the decoder *knows* it failed (the
      locator was inconsistent: degree above ``t``, Chien search found
      fewer roots than the locator degree, or the residual syndromes
      did not vanish after correction) and returned the received data
      bits untouched, never a partial correction;
    * ``success`` but the data is wrong — a *silent miscorrection*
      (2t+1 or more raw errors landed on another codeword's correction
      sphere). Only a caller with ground truth can observe this; the
      exact-mode device counts them.
    """

    data: np.ndarray          #: corrected data bits (uint8 array)
    corrected_errors: int     #: number of bit flips undone
    success: bool             #: False when the error count exceeded t
    #: True when the decoder itself detected the failure and returned
    #: the received bits uncorrected (always equals ``not success`` for
    #: this decoder: every failure path is a detected one).
    detected_uncorrectable: bool = False


class BCHCode:
    """A shortened binary BCH code correcting up to ``t`` errors."""

    def __init__(self, t: int, data_bits: int = 512, m: int = 10) -> None:
        if t < 1:
            raise StorageError(f"t must be >= 1, got {t}")
        self.t = t
        self.data_bits = data_bits
        self.field = _shared_field(m)
        self.n_native = self.field.order  # 2^m - 1
        generator_int, degree = _build_generator(t, m)
        self.parity_bits = degree
        self._generator_int = generator_int
        if data_bits + self.parity_bits > self.n_native:
            raise StorageError(
                f"data_bits={data_bits} with t={t} exceeds native length "
                f"{self.n_native}"
            )

    @property
    def block_bits(self) -> int:
        """Total codeword size (data + parity)."""
        return self.data_bits + self.parity_bits

    @property
    def overhead(self) -> float:
        """Parity bits per data bit (the paper's 'storage overhead')."""
        return self.parity_bits / self.data_bits

    # -- encoding ------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic encode: returns ``data || parity`` as a bit array."""
        with obs_trace.span("bch.encode", t=self.t):
            return self._encode(data)

    def _encode(self, data: np.ndarray) -> np.ndarray:
        bits = np.asarray(data, dtype=np.uint8)
        if bits.shape != (self.data_bits,):
            raise StorageError(
                f"expected {self.data_bits} data bits, got {bits.shape}"
            )
        # Codeword c(x) = d(x) * x^parity + (d(x) * x^parity mod g(x)).
        # Bit order: data bit j is the coefficient of x^(block-1-j), so
        # the first data bit is the highest power (conventional layout).
        data_int = 0
        for bit in bits:
            data_int = (data_int << 1) | int(bit)
        shifted = data_int << self.parity_bits
        remainder = _polynomial_remainder_bits(
            shifted, self.block_bits, self._generator_int, self.parity_bits)
        parity = np.zeros(self.parity_bits, dtype=np.uint8)
        for j in range(self.parity_bits):
            parity[j] = (remainder >> (self.parity_bits - 1 - j)) & 1
        return np.concatenate([bits, parity])

    # -- decoding ------------------------------------------------------------

    def _syndromes(self, received: np.ndarray) -> List[int]:
        """S_j = r(alpha^j) for j = 1..2t, via the set bit positions."""
        positions = np.nonzero(received)[0]
        # Bit at array index i is the coefficient of x^(block-1-i).
        exponents_base = self.block_bits - 1 - positions
        syndromes = []
        for j in range(1, 2 * self.t + 1):
            if positions.size == 0:
                syndromes.append(0)
                continue
            terms = self.field.alpha_powers(exponents_base * j)
            value = 0
            for term in terms:
                value ^= int(term)
            syndromes.append(value)
        return syndromes

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial sigma(x) from the syndrome sequence."""
        field = self.field
        sigma = [1]
        previous = [1]
        length = 0
        shift = 1
        previous_discrepancy = 1
        for step in range(2 * self.t):
            discrepancy = syndromes[step]
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i]:
                    discrepancy ^= field.multiply(sigma[i],
                                                  syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.divide(discrepancy, previous_discrepancy)
            candidate = list(sigma)
            needed = len(previous) + shift
            if needed > len(candidate):
                candidate.extend([0] * (needed - len(candidate)))
            for i, coefficient in enumerate(previous):
                if coefficient:
                    candidate[i + shift] ^= field.multiply(scale, coefficient)
            if 2 * length <= step:
                previous = list(sigma)
                previous_discrepancy = discrepancy
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            sigma = candidate
        return sigma

    def _chien_search(self, sigma: List[int]) -> List[int]:
        """All codeword bit positions whose inversion sigma locates."""
        degree = len(sigma) - 1
        field = self.field
        # Roots of sigma are alpha^(-e) for error exponents e; find all
        # j with sigma(alpha^j) == 0, then e = order - j. Evaluate
        # sigma at every alpha^j at once, one vector op per coefficient:
        # sigma_k * alpha^(j*k) = alpha^(log(sigma_k) + j*k).
        exponents = np.arange(field.order, dtype=np.int64)
        values = np.full(field.order, sigma[0], dtype=np.int64)
        for k in range(1, degree + 1):
            coefficient = sigma[k]
            if not coefficient:
                continue
            values ^= field.alpha_powers(
                exponents * k + _log_of(field, coefficient))
        roots = np.nonzero(values == 0)[0]
        positions = []
        for j in roots:
            error_exponent = (field.order - int(j)) % field.order
            position = self.block_bits - 1 - error_exponent
            if 0 <= position < self.block_bits:
                positions.append(position)
        return positions

    def decode(self, received: np.ndarray) -> DecodeResult:
        """Correct up to ``t`` bit errors in a received codeword."""
        with obs_trace.span("bch.decode", t=self.t):
            return self._decode(received)

    def _decode(self, received: np.ndarray) -> DecodeResult:
        bits = np.asarray(received, dtype=np.uint8).copy()
        if bits.shape != (self.block_bits,):
            raise StorageError(
                f"expected {self.block_bits} bits, got {bits.shape}"
            )
        syndromes = self._syndromes(bits)
        if not any(syndromes):
            return DecodeResult(bits[:self.data_bits], 0, True)
        sigma = self._berlekamp_massey(syndromes)
        degree = len(sigma) - 1
        while degree > 0 and sigma[degree] == 0:
            degree -= 1
        sigma = sigma[:degree + 1]
        positions = self._chien_search(sigma)
        if degree == 0 or degree > self.t or len(positions) != degree:
            # More than t errors, detected: a locator of impossible
            # degree, or a Chien search finding fewer roots than the
            # locator degree (sigma does not split over the field).
            # Never apply a partial correction — return bits unchanged.
            return DecodeResult(bits[:self.data_bits], 0, False,
                                detected_uncorrectable=True)
        for position in positions:
            bits[position] ^= 1
        # Verify: residual syndromes must vanish, otherwise the applied
        # correction was wrong — undo it and report detected failure.
        if any(self._syndromes(bits)):
            return DecodeResult(
                np.asarray(received, dtype=np.uint8)[:self.data_bits],
                0, False, detected_uncorrectable=True)
        return DecodeResult(bits[:self.data_bits], len(positions), True)


def _gf2_poly_multiply(a: List[int], b: List[int]) -> List[int]:
    """Multiply two binary polynomials (coefficient lists over GF(2))."""
    result = [0] * (len(a) + len(b) - 1)
    for i, coeff_a in enumerate(a):
        if coeff_a:
            for j, coeff_b in enumerate(b):
                if coeff_b:
                    result[i + j] ^= 1
    return result


def _log_of(field: GF2m, value: int) -> int:
    return int(field._log[value])  # noqa: SLF001 - intra-package helper


def _logs_of(field: GF2m, values: np.ndarray) -> np.ndarray:
    return field._log[values]  # noqa: SLF001 - intra-package helper


@lru_cache(maxsize=None)
def _shared_field(m: int) -> GF2m:
    return GF2m(m)


def _coset_representative(exponent: int, order: int) -> int:
    members = []
    current = exponent % order
    while current not in members:
        members.append(current)
        current = (current * 2) % order
    return min(members)


@lru_cache(maxsize=None)
def _build_generator(t: int, m: int) -> Tuple[int, int]:
    """LCM of minimal polynomials of alpha^1, alpha^3, ... alpha^(2t-1).

    Returns (bit-packed polynomial, degree). Cached per ``(t, m)`` — the
    generator does not depend on ``data_bits`` (shortening only drops
    leading data positions), so every ``BCHCode`` instantiation with the
    same field and correction strength reuses one construction.
    """
    field = _shared_field(m)
    seen = set()
    generator = [1]
    for i in range(1, 2 * t, 2):
        coset_rep = _coset_representative(i, field.order)
        if coset_rep in seen:
            continue
        seen.add(coset_rep)
        minimal = field.minimal_polynomial(i)
        generator = _gf2_poly_multiply(generator, minimal)
    generator_int = 0
    for degree, coefficient in enumerate(generator):
        if coefficient:
            generator_int |= 1 << degree
    return generator_int, len(generator) - 1


@lru_cache(maxsize=None)
def get_bch_code(t: int, data_bits: int = 512, m: int = 10) -> BCHCode:
    """Shared BCH codec instances (generator construction is costly)."""
    return BCHCode(t, data_bits=data_bits, m=m)
