"""The approximate storage device: MLC cells + per-stream ECC.

Bytes go in; bytes come back, possibly with uncorrectable errors. Two
fidelity modes:

* **analytic** (default): per protected 512-bit block, draw an
  uncorrectable-failure event at the scheme's binomial-tail rate; failed
  blocks keep the conditional surviving-error count (``t + 1`` is the
  dominant pattern, but high raw BER shifts the mass upward, matching
  the exact mode). Raw streams flip bits at the substrate BER directly.
  This is what the paper's Monte Carlo does and it is fast enough for
  whole-video sweeps at any error rate.
* **exact**: every block physically round-trips — BCH-encode, write each
  bit group into the MLC cell model with noise and drift, read back,
  BCH-decode. Slow, but end-to-end real; used by tests to validate the
  analytic mode.

Both modes share the lifetime machinery:

* reads may happen at any retention time (``t_days``);
* a :class:`ScrubPolicy` models periodic rewrites that reset drift (the
  read sees only the drift accumulated since the last scrub) and are
  charged against a cell-write budget;
* blocks whose decode reports *detected-uncorrectable* enter a re-read
  **retry ladder** (fresh sense noise, up to ``read_retries`` attempts,
  ``REPRO_READ_RETRIES`` by default); blocks that exhaust it are
  escalated as :class:`UncorrectableBlock` ranges in the report — the
  device never silently returns corrected-looking data for them, the
  caller gets the raw received bits plus the damage map.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError, StorageError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .bch import get_bch_code
from .ecc import ECCScheme, conditional_error_count
from .mlc import MLCCellModel

#: Environment knob: default re-read attempts for detected-uncorrectable
#: blocks. ``0`` or unset disables the retry ladder.
RETRIES_ENV = "REPRO_READ_RETRIES"

#: Chaos seam: :func:`repro.runtime.chaos.arm` installs a fault decider
#: here (and :func:`~repro.runtime.chaos.disarm` clears it) so the
#: storage layer never imports the runtime. ``None`` — the production
#: state — costs one identity check per coded read; armed, a faulted
#: read corrupts one extra block *and escalates it* (see
#: ``_chaos_damage``), so chaos can never make the device lie.
_CHAOS_READ_FAULT = None


def resolve_read_retries(retries: Optional[int] = None) -> int:
    """Resolve the effective re-read retry depth.

    Explicit ``retries`` wins; otherwise ``REPRO_READ_RETRIES`` is
    consulted; otherwise ``0`` (no retries). Negative or non-integer
    depths are rejected with a clear :class:`AnalysisError`.
    """
    if retries is None:
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if not raw:
            return 0
        try:
            retries = int(raw)
        except ValueError:
            raise AnalysisError(
                f"{RETRIES_ENV}={raw!r} is not an integer retry depth"
            ) from None
        if retries < 0:
            raise AnalysisError(f"{RETRIES_ENV}={raw!r} must be >= 0")
        return retries
    retries = int(retries)
    if retries < 0:
        raise AnalysisError(
            f"read retries must be >= 0, got {retries}")
    return retries


@dataclass(frozen=True)
class ScrubPolicy:
    """Periodic rewrite policy bounding drift accumulation.

    Every ``interval_days`` the device rewrites all cells, which resets
    drift to zero (a fresh write) at the cost of one cell-write per
    cell. A read at retention time ``t`` therefore sees only
    ``t mod interval_days`` of drift, and ``floor(t / interval_days)``
    scrub rewrites have been charged to the write budget.
    """

    interval_days: float

    def __post_init__(self) -> None:
        if not (self.interval_days > 0
                and math.isfinite(self.interval_days)):
            raise StorageError(
                f"scrub interval must be a finite number of days > 0, "
                f"got {self.interval_days}")

    def drift_age(self, t_days: float) -> float:
        """Drift the cells carry when read at retention time ``t_days``."""
        return float(t_days) % self.interval_days

    def scrub_count(self, t_days: float) -> int:
        """Rewrites performed by retention time ``t_days``."""
        return int(float(t_days) // self.interval_days)


@dataclass(frozen=True)
class UncorrectableBlock:
    """One ECC block that stayed uncorrectable after the retry ladder.

    Coordinates are *data-bit* offsets into the byte string handed to
    ``store_and_read`` (parity bits are device-internal), so callers
    can map the damage into whatever the bytes encode.
    """

    block: int      #: block index within this store-and-read call
    bit_start: int  #: first damaged data bit (inclusive)
    bit_end: int    #: one past the last damaged data bit


@dataclass
class StorageReport:
    """Accounting of one store-and-read round trip."""

    data_bits: int
    stored_bits: int          #: data + parity actually written to cells
    cells_used: int
    blocks: int
    failed_blocks: int        #: blocks still uncorrectable after retries
    flipped_bits: int         #: uncorrected bit errors in returned data
    #: Retention time of the read in days (None = the model's nominal
    #: scrub-point read, the pre-lifetime-subsystem behaviour).
    retention_days: Optional[float] = None
    #: Drift the cells actually carried at read time (after scrubbing).
    drift_days: Optional[float] = None
    scrub_count: int = 0        #: scrub rewrites performed by read time
    scrub_cell_writes: int = 0  #: cell writes those scrubs cost
    retried_blocks: int = 0     #: blocks that entered the retry ladder
    retry_attempts: int = 0     #: total re-reads performed
    retry_successes: int = 0    #: blocks recovered by a re-read
    miscorrected_blocks: int = 0  #: silent miscorrections (exact mode)
    #: Blocks escalated after the retry ladder, as data-bit ranges.
    uncorrectable: Tuple[UncorrectableBlock, ...] = field(
        default_factory=tuple)


@dataclass
class _BlockStats:
    """Mutable per-call tally shared by the analytic and exact paths."""

    failed: int = 0
    flipped: int = 0
    retried: int = 0
    attempts: int = 0
    recovered: int = 0
    miscorrected: int = 0
    uncorrectable: List[UncorrectableBlock] = field(default_factory=list)


class ApproximateDevice:
    """MLC PCM array with selectable per-write ECC."""

    def __init__(self, cell_model: Optional[MLCCellModel] = None,
                 rng: Optional[np.random.Generator] = None,
                 exact: bool = False,
                 scrub: Optional[ScrubPolicy] = None,
                 read_retries: Optional[int] = None) -> None:
        self.cell_model = cell_model or MLCCellModel()
        self.rng = rng or np.random.default_rng()
        self.exact = exact
        self.scrub = scrub
        self.read_retries = resolve_read_retries(read_retries)

    @property
    def raw_ber(self) -> float:
        return self.cell_model.raw_bit_error_rate()

    # -- accounting ----------------------------------------------------------

    def stored_bits(self, data_bits: int, scheme: ECCScheme) -> int:
        """Bits written to cells for ``data_bits`` of payload."""
        if scheme.t == 0:
            return data_bits
        blocks = -(-data_bits // scheme.data_bits)
        return data_bits + blocks * scheme.parity_bits

    def cells_used(self, data_bits: int, scheme: ECCScheme) -> int:
        return self.cell_model.cells_for_bits(
            self.stored_bits(data_bits, scheme))

    # -- retention -----------------------------------------------------------

    def _resolve_retention(self, t_days: Optional[float]
                           ) -> Tuple[Optional[float], float, int]:
        """(requested retention, drift age at read, scrubs performed).

        ``t_days=None`` is the legacy one-shot read at the cell model's
        nominal scrub age: no scrub accounting, bitwise identical to the
        pre-lifetime device.
        """
        if t_days is None:
            return None, self.cell_model.scrub_interval_days, 0
        t_days = float(t_days)
        if t_days < 0 or not math.isfinite(t_days):
            raise StorageError(
                f"retention time must be a finite number of days >= 0, "
                f"got {t_days}")
        if self.scrub is None:
            return t_days, t_days, 0
        return (t_days, self.scrub.drift_age(t_days),
                self.scrub.scrub_count(t_days))

    # -- the round trip -------------------------------------------------------

    def store_and_read(self, data: bytes, scheme: ECCScheme,
                       t_days: Optional[float] = None) -> tuple:
        """Write ``data`` under ``scheme`` and read it back at ``t_days``.

        Returns ``(read_back_bytes, StorageReport)``.
        """
        with obs_trace.span("ecc.store_read", scheme=scheme.name,
                            exact=self.exact, data_bytes=len(data),
                            t_days=t_days):
            return self._store_and_read(data, scheme, t_days)

    def _store_and_read(self, data: bytes, scheme: ECCScheme,
                        t_days: Optional[float]) -> tuple:
        retention, age, scrubs = self._resolve_retention(t_days)
        bits = bytes_to_bits(data)
        if scheme.t == 0:
            out_bits, flipped = self._raw_round_trip(bits, age)
            report = StorageReport(
                data_bits=bits.size, stored_bits=bits.size,
                cells_used=self.cell_model.cells_for_bits(bits.size),
                blocks=0, failed_blocks=0, flipped_bits=flipped,
                retention_days=retention, drift_days=age,
                scrub_count=scrubs,
                scrub_cell_writes=scrubs
                * self.cell_model.cells_for_bits(bits.size),
            )
            self._publish_metrics(report)
            return bits_to_bytes(out_bits), report
        if self.exact:
            out_bits, stats, blocks = self._exact_ecc(bits, scheme, age)
        else:
            out_bits, stats, blocks = self._analytic_ecc(bits, scheme, age)
        if _CHAOS_READ_FAULT is not None:
            self._chaos_damage(data, out_bits, stats, scheme, blocks)
        report = StorageReport(
            data_bits=bits.size,
            stored_bits=self.stored_bits(bits.size, scheme),
            cells_used=self.cells_used(bits.size, scheme),
            blocks=blocks, failed_blocks=stats.failed,
            flipped_bits=stats.flipped,
            retention_days=retention, drift_days=age,
            scrub_count=scrubs,
            scrub_cell_writes=scrubs * self.cells_used(bits.size, scheme),
            retried_blocks=stats.retried,
            retry_attempts=stats.attempts,
            retry_successes=stats.recovered,
            miscorrected_blocks=stats.miscorrected,
            uncorrectable=tuple(stats.uncorrectable),
        )
        self._publish_metrics(report)
        return bits_to_bytes(out_bits), report

    def _chaos_damage(self, data: bytes, out_bits: np.ndarray,
                      stats: _BlockStats, scheme: ECCScheme,
                      blocks: int) -> None:
        """Out-of-model read failure injected by an armed chaos policy.

        Extra blocks are corrupted with flips the ECC model never
        drew — and immediately escalated as uncorrectable, exactly like
        blocks that exhausted the retry ladder. A decision may span
        ``burst_blocks`` *contiguous* blocks (correlated damage: a worn
        region, a row-hammered neighbourhood), every one of which is
        escalated. The damage is therefore always visible in the
        report: chaos widens the failure surface but cannot produce
        silently corrected-looking data.
        """
        fault = _CHAOS_READ_FAULT
        if fault is None or blocks <= 0 or out_bits.size == 0:
            return
        decision = fault(data)
        if decision is None:
            return
        rng, flip_bits, burst_blocks = decision
        burst_blocks = max(1, min(int(burst_blocks), blocks))
        first = int(rng.integers(blocks))
        if first + burst_blocks > blocks:
            first = blocks - burst_blocks
        for block_index in range(first, first + burst_blocks):
            start = block_index * scheme.data_bits
            end = min(start + scheme.data_bits, out_bits.size)
            if end <= start:
                # Padding-only final block: damage the last real block.
                block_index = max(0,
                                  (out_bits.size - 1) // scheme.data_bits)
                start = block_index * scheme.data_bits
                end = out_bits.size
            flips = min(flip_bits, end - start)
            positions = start + rng.choice(end - start, size=flips,
                                           replace=False)
            out_bits[positions] ^= 1
            stats.flipped += int(flips)
            if all(u.block != block_index for u in stats.uncorrectable):
                self._escalate(stats, scheme, block_index, out_bits.size)

    @staticmethod
    def _publish_metrics(report: StorageReport) -> None:
        """Per-mitigation lifetime counters (exactly mergeable)."""
        if report.scrub_count:
            obs_metrics.counter("storage_scrubs_total").inc(
                report.scrub_count)
            obs_metrics.counter("storage_scrub_cell_writes_total").inc(
                report.scrub_cell_writes)
        if report.retry_attempts:
            obs_metrics.counter("storage_read_retries_total").inc(
                report.retry_attempts)
            obs_metrics.counter("storage_retry_recovered_total").inc(
                report.retry_successes)
        if report.failed_blocks:
            obs_metrics.counter("storage_uncorrectable_blocks_total").inc(
                report.failed_blocks)
        if report.miscorrected_blocks:
            obs_metrics.counter("storage_miscorrected_blocks_total").inc(
                report.miscorrected_blocks)

    # -- raw cells ------------------------------------------------------------

    def _raw_round_trip(self, bits: np.ndarray, age: float) -> tuple:
        if self.exact:
            per_cell = self.cell_model.bits_per_cell
            padding = (-bits.size) % per_cell
            padded = np.concatenate(
                [bits, np.zeros(padding, dtype=np.uint8)])
            read = self.cell_model.write_and_read(padded, self.rng,
                                                  t_days=age)
            out = read[:bits.size]
            return out, int(np.count_nonzero(out != bits))
        flips = self.rng.random(bits.size) \
            < self.cell_model.raw_bit_error_rate(age)
        out = bits ^ flips.astype(np.uint8)
        return out, int(np.count_nonzero(flips))

    # -- coded blocks ----------------------------------------------------------

    def _block_views(self, bits: np.ndarray, scheme: ECCScheme):
        blocks = -(-bits.size // scheme.data_bits)
        padded = np.concatenate([
            bits,
            np.zeros(blocks * scheme.data_bits - bits.size, dtype=np.uint8),
        ])
        return blocks, padded.reshape(blocks, scheme.data_bits)

    def _escalate(self, stats: _BlockStats, scheme: ECCScheme,
                  block_index: int, data_bits: int) -> None:
        """Record a block the retry ladder could not recover."""
        start = int(block_index) * scheme.data_bits
        end = min(start + scheme.data_bits, data_bits)
        stats.failed += 1
        stats.uncorrectable.append(
            UncorrectableBlock(block=int(block_index), bit_start=start,
                               bit_end=end))

    def _analytic_ecc(self, bits: np.ndarray, scheme: ECCScheme,
                      age: float) -> tuple:
        blocks, data = self._block_views(bits, scheme)
        raw_ber = self.cell_model.raw_bit_error_rate(age)
        failure_rate = scheme.block_failure_rate(raw_ber)
        uniforms = self.rng.random(blocks)
        failures = np.nonzero(uniforms < failure_rate)[0]
        out = data.copy()
        stats = _BlockStats()
        for block_index in failures:
            if self.read_retries > 0:
                # Re-read ladder: each re-sense is an independent draw
                # against the same failure rate.
                stats.retried += 1
                recovered = False
                for _attempt in range(self.read_retries):
                    stats.attempts += 1
                    if self.rng.random() >= failure_rate:
                        recovered = True
                        break
                if recovered:
                    stats.recovered += 1
                    continue
            # Conditioned on failure, the surviving raw-error count
            # follows Binomial(block_bits, raw_ber) given > t; reuse the
            # uniform that decided the failure (u / rate is Uniform(0,1)
            # conditionally) so the stream layout is unchanged. Only the
            # flips landing in the data portion are visible to the
            # caller.
            conditional_u = float(uniforms[block_index]) / failure_rate
            surviving = conditional_error_count(
                scheme.block_bits, raw_ber, scheme.t, conditional_u)
            error_positions = self.rng.choice(scheme.block_bits,
                                              size=surviving,
                                              replace=False)
            data_hits = error_positions[error_positions < scheme.data_bits]
            out[block_index, data_hits] ^= 1
            stats.flipped += data_hits.size
            self._escalate(stats, scheme, block_index, bits.size)
        return out.reshape(-1)[:bits.size], stats, blocks

    def _exact_ecc(self, bits: np.ndarray, scheme: ECCScheme,
                   age: float) -> tuple:
        code = get_bch_code(scheme.t, data_bits=scheme.data_bits)
        blocks, data = self._block_views(bits, scheme)
        per_cell = self.cell_model.bits_per_cell
        out = np.empty_like(data)
        stats = _BlockStats()
        for block_index in range(blocks):
            codeword = code.encode(data[block_index])
            padding = (-codeword.size) % per_cell
            padded = np.concatenate(
                [codeword, np.zeros(padding, dtype=np.uint8)])
            read = self.cell_model.write_and_read(padded, self.rng,
                                                  t_days=age)
            result = code.decode(read[:codeword.size])
            if result.detected_uncorrectable and self.read_retries > 0:
                stats.retried += 1
                for _attempt in range(self.read_retries):
                    stats.attempts += 1
                    reread = self.cell_model.write_and_read(
                        padded, self.rng, t_days=age)
                    retry = code.decode(reread[:codeword.size])
                    if not retry.detected_uncorrectable:
                        result = retry
                        stats.recovered += 1
                        break
            out[block_index] = result.data
            if result.detected_uncorrectable:
                self._escalate(stats, scheme, block_index, bits.size)
            elif not np.array_equal(result.data, data[block_index]):
                # Decode claimed success but the data is wrong: a
                # silent miscorrection, observable only with ground
                # truth.
                stats.miscorrected += 1
            stats.flipped += int(np.count_nonzero(
                result.data != data[block_index]))
        return out.reshape(-1)[:bits.size], stats, blocks


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Byte string -> uint8 bit array, MSB-first."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """uint8 bit array (multiple of 8) -> byte string."""
    if bits.size % 8:
        raise StorageError(f"bit count {bits.size} not a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()
