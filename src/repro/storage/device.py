"""The approximate storage device: MLC cells + per-stream ECC.

Bytes go in; bytes come back, possibly with uncorrectable errors. Two
fidelity modes:

* **analytic** (default): per protected 512-bit block, draw an
  uncorrectable-failure event at the scheme's binomial-tail rate; failed
  blocks keep ``t + 1`` surviving raw flips (the dominant failure
  pattern). Raw streams flip bits at the substrate BER directly. This is
  what the paper's Monte Carlo does and it is fast enough for
  whole-video sweeps at any error rate.
* **exact**: every block physically round-trips — BCH-encode, write each
  bit group into the MLC cell model with noise and drift, read back,
  BCH-decode. Slow, but end-to-end real; used by tests to validate the
  analytic mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import StorageError
from ..obs import trace as obs_trace
from .bch import get_bch_code
from .ecc import ECCScheme
from .mlc import MLCCellModel


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Byte string -> uint8 bit array, MSB-first."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """uint8 bit array (multiple of 8) -> byte string."""
    if bits.size % 8:
        raise StorageError(f"bit count {bits.size} not a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


@dataclass
class StorageReport:
    """Accounting of one store-and-read round trip."""

    data_bits: int
    stored_bits: int          #: data + parity actually written to cells
    cells_used: int
    blocks: int
    failed_blocks: int
    flipped_bits: int         #: uncorrected bit errors in returned data


class ApproximateDevice:
    """MLC PCM array with selectable per-write ECC."""

    def __init__(self, cell_model: Optional[MLCCellModel] = None,
                 rng: Optional[np.random.Generator] = None,
                 exact: bool = False) -> None:
        self.cell_model = cell_model or MLCCellModel()
        self.rng = rng or np.random.default_rng()
        self.exact = exact

    @property
    def raw_ber(self) -> float:
        return self.cell_model.raw_bit_error_rate()

    # -- accounting ----------------------------------------------------------

    def stored_bits(self, data_bits: int, scheme: ECCScheme) -> int:
        """Bits written to cells for ``data_bits`` of payload."""
        if scheme.t == 0:
            return data_bits
        blocks = -(-data_bits // scheme.data_bits)
        return data_bits + blocks * scheme.parity_bits

    def cells_used(self, data_bits: int, scheme: ECCScheme) -> int:
        return self.cell_model.cells_for_bits(
            self.stored_bits(data_bits, scheme))

    # -- the round trip -------------------------------------------------------

    def store_and_read(self, data: bytes, scheme: ECCScheme
                       ) -> tuple:
        """Write ``data`` under ``scheme`` and read it back.

        Returns ``(read_back_bytes, StorageReport)``.
        """
        with obs_trace.span("ecc.store_read", scheme=scheme.name,
                            exact=self.exact, data_bytes=len(data)):
            return self._store_and_read(data, scheme)

    def _store_and_read(self, data: bytes, scheme: ECCScheme) -> tuple:
        bits = bytes_to_bits(data)
        if scheme.t == 0:
            out_bits, flipped = self._raw_round_trip(bits)
            report = StorageReport(
                data_bits=bits.size, stored_bits=bits.size,
                cells_used=self.cell_model.cells_for_bits(bits.size),
                blocks=0, failed_blocks=0, flipped_bits=flipped,
            )
            return bits_to_bytes(out_bits), report
        if self.exact:
            out_bits, failed, flipped, blocks = self._exact_ecc(bits, scheme)
        else:
            out_bits, failed, flipped, blocks = self._analytic_ecc(bits,
                                                                   scheme)
        report = StorageReport(
            data_bits=bits.size,
            stored_bits=self.stored_bits(bits.size, scheme),
            cells_used=self.cells_used(bits.size, scheme),
            blocks=blocks, failed_blocks=failed, flipped_bits=flipped,
        )
        return bits_to_bytes(out_bits), report

    # -- raw cells ------------------------------------------------------------

    def _raw_round_trip(self, bits: np.ndarray) -> tuple:
        if self.exact:
            per_cell = self.cell_model.bits_per_cell
            padding = (-bits.size) % per_cell
            padded = np.concatenate(
                [bits, np.zeros(padding, dtype=np.uint8)])
            read = self.cell_model.write_and_read(padded, self.rng)
            out = read[:bits.size]
            return out, int(np.count_nonzero(out != bits))
        flips = self.rng.random(bits.size) < self.raw_ber
        out = bits ^ flips.astype(np.uint8)
        return out, int(np.count_nonzero(flips))

    # -- coded blocks ----------------------------------------------------------

    def _block_views(self, bits: np.ndarray, scheme: ECCScheme):
        blocks = -(-bits.size // scheme.data_bits)
        padded = np.concatenate([
            bits,
            np.zeros(blocks * scheme.data_bits - bits.size, dtype=np.uint8),
        ])
        return blocks, padded.reshape(blocks, scheme.data_bits)

    def _analytic_ecc(self, bits: np.ndarray, scheme: ECCScheme) -> tuple:
        blocks, data = self._block_views(bits, scheme)
        failure_rate = scheme.block_failure_rate(self.raw_ber)
        failures = np.nonzero(self.rng.random(blocks) < failure_rate)[0]
        out = data.copy()
        flipped = 0
        for block_index in failures:
            # Dominant failure: exactly t + 1 raw errors. Only the flips
            # landing in the data portion are visible to the caller.
            error_positions = self.rng.choice(scheme.block_bits,
                                              size=scheme.t + 1,
                                              replace=False)
            data_hits = error_positions[error_positions < scheme.data_bits]
            out[block_index, data_hits] ^= 1
            flipped += data_hits.size
        return out.reshape(-1)[:bits.size], len(failures), flipped, blocks

    def _exact_ecc(self, bits: np.ndarray, scheme: ECCScheme) -> tuple:
        code = get_bch_code(scheme.t, data_bits=scheme.data_bits)
        blocks, data = self._block_views(bits, scheme)
        per_cell = self.cell_model.bits_per_cell
        out = np.empty_like(data)
        failed = 0
        flipped = 0
        for block_index in range(blocks):
            codeword = code.encode(data[block_index])
            padding = (-codeword.size) % per_cell
            padded = np.concatenate(
                [codeword, np.zeros(padding, dtype=np.uint8)])
            read = self.cell_model.write_and_read(padded, self.rng)
            result = code.decode(read[:codeword.size])
            out[block_index] = result.data
            if not result.success:
                failed += 1
            flipped += int(np.count_nonzero(
                result.data != data[block_index]))
        return out.reshape(-1)[:bits.size], failed, flipped, blocks
