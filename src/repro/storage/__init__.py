"""Approximate storage substrate: MLC PCM cells, BCH codes, injection."""

from .bch import BCHCode, DecodeResult, get_bch_code
from .device import (
    ApproximateDevice,
    StorageReport,
    bits_to_bytes,
    bytes_to_bits,
)
from .density import (
    DEFAULT_BITS_PER_CELL,
    DensityReport,
    density_report,
    ideal_density,
    slc_density,
    uniform_density,
)
from .ecc import (
    DEFAULT_BLOCK_DATA_BITS,
    DEFAULT_RAW_BER,
    ECCScheme,
    NONE_SCHEME,
    PRECISE_SCHEME,
    SCHEME_MENU,
    binomial_tail,
    figure8_table,
    scheme_by_name,
    scheme_for_target_rate,
)
from .gf import GF2m
from .injection import (
    InjectionResult,
    flip_bit,
    inject_into_payloads,
    inject_single_flip,
    occurrence_probability,
    rare_event_scale,
    sample_flip_count,
)
from .mlc import MLCCellModel, calibrated_model, gray_code, gray_decode

__all__ = [
    "ApproximateDevice",
    "BCHCode",
    "DEFAULT_BITS_PER_CELL",
    "DEFAULT_BLOCK_DATA_BITS",
    "DEFAULT_RAW_BER",
    "DecodeResult",
    "DensityReport",
    "ECCScheme",
    "GF2m",
    "InjectionResult",
    "MLCCellModel",
    "NONE_SCHEME",
    "PRECISE_SCHEME",
    "SCHEME_MENU",
    "StorageReport",
    "binomial_tail",
    "bits_to_bytes",
    "bytes_to_bits",
    "calibrated_model",
    "density_report",
    "figure8_table",
    "flip_bit",
    "get_bch_code",
    "gray_code",
    "gray_decode",
    "ideal_density",
    "inject_into_payloads",
    "inject_single_flip",
    "occurrence_probability",
    "rare_event_scale",
    "sample_flip_count",
    "scheme_by_name",
    "scheme_for_target_rate",
    "slc_density",
    "uniform_density",
]
