"""Storage density accounting.

The paper's density metric (Section 6.1) is *pixels per cell* — and its
Figure 11 plots the inverse, cells per encoded pixel — for a video of
``P`` total pixels whose bits are protected by per-class ECC schemes on
an L-level MLC substrate. Headers are always protected by the precise
scheme (BCH-16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import StorageError
from .ecc import ECCScheme, PRECISE_SCHEME

#: Bits stored per cell by the paper's 8-level substrate.
DEFAULT_BITS_PER_CELL = 3


@dataclass(frozen=True)
class DensityReport:
    """Density accounting for one stored video."""

    payload_bits: int          #: approximable bits
    header_bits: int           #: precise bits (frame headers, pivots)
    stored_bits: int           #: bits written to cells incl. all parity
    cells: float               #: MLC cells used
    total_pixels: int

    @property
    def cells_per_pixel(self) -> float:
        """Figure 11's x-axis."""
        return self.cells / self.total_pixels

    @property
    def pixels_per_cell(self) -> float:
        """The paper's headline density metric."""
        return self.total_pixels / self.cells

    @property
    def ecc_overhead(self) -> float:
        """Parity bits per payload+header bit (what the 47% saving cuts)."""
        data_bits = self.payload_bits + self.header_bits
        return (self.stored_bits - data_bits) / data_bits


def _stored_bits(data_bits: int, scheme: ECCScheme) -> int:
    if data_bits < 0:
        raise StorageError(f"negative bit count {data_bits}")
    if scheme.t == 0 or data_bits == 0:
        return data_bits
    blocks = -(-data_bits // scheme.data_bits)
    return data_bits + blocks * scheme.parity_bits


def density_report(bits_by_scheme: Mapping[ECCScheme, int],
                   header_bits: int, total_pixels: int,
                   bits_per_cell: int = DEFAULT_BITS_PER_CELL,
                   header_scheme: ECCScheme = PRECISE_SCHEME
                   ) -> DensityReport:
    """Density of a video stored with per-class ECC assignments."""
    if total_pixels <= 0:
        raise StorageError(f"total_pixels must be positive, got {total_pixels}")
    payload_bits = sum(bits_by_scheme.values())
    stored = sum(_stored_bits(bits, scheme)
                 for scheme, bits in bits_by_scheme.items())
    stored += _stored_bits(header_bits, header_scheme)
    cells = stored / bits_per_cell
    return DensityReport(
        payload_bits=payload_bits, header_bits=header_bits,
        stored_bits=stored, cells=cells, total_pixels=total_pixels,
    )


def uniform_density(total_data_bits: int, total_pixels: int,
                    scheme: ECCScheme = PRECISE_SCHEME,
                    bits_per_cell: int = DEFAULT_BITS_PER_CELL
                    ) -> DensityReport:
    """Baseline design: one ECC scheme over all bits (Figure 11's
    "Uniform Correction")."""
    return density_report({scheme: total_data_bits}, 0, total_pixels,
                          bits_per_cell, header_scheme=scheme)


def ideal_density(total_data_bits: int, total_pixels: int,
                  bits_per_cell: int = DEFAULT_BITS_PER_CELL
                  ) -> DensityReport:
    """Hypothetical perfect, overhead-free correction (Figure 11's
    "Ideal")."""
    cells = total_data_bits / bits_per_cell
    return DensityReport(
        payload_bits=total_data_bits, header_bits=0,
        stored_bits=total_data_bits, cells=cells, total_pixels=total_pixels,
    )


def slc_density(total_data_bits: int, total_pixels: int) -> DensityReport:
    """Reliable single-level-cell baseline: 1 bit/cell, no ECC needed.

    The paper's 2.57x headline compares variable-ECC MLC to this."""
    return DensityReport(
        payload_bits=total_data_bits, header_bits=0,
        stored_bits=total_data_bits, cells=float(total_data_bits),
        total_pixels=total_pixels,
    )
