"""Multi-level cell (MLC) phase-change memory model.

Models the substrate of Guo et al. that the paper adopts (Sections 2.2
and 6.2): PCM cells whose resistance range is divided into 8 levels
(3 bits/cell, 3x the density of SLC), written with Gaussian programming
noise, and subject to upward resistance drift that grows
logarithmically with time. Drift is multiplicative on the stored analog
value — ``v(t) = v(0) * (1 + (c + delta) * log10(1 + t))`` — so it has
a deterministic component (mean drift, proportionally stronger for
higher-resistance levels) and a stochastic component (per-cell
drift-coefficient variation ``delta``), and it carries the programming
noise along with the signal. The read-time uncertainty of a cell
therefore grows with both its level and the time since it was written.

Three mitigations are modelled:

* **non-uniform level placement**: written levels are positioned so
  that (a) the *mean* drift is compensated exactly — drifted means land
  on the intended read-time targets at scrub time — and (b) read-time
  targets are spaced proportionally to each level's read-time noise,
  equalizing per-level error rates (the paper's "biasing the level
  ranges ... to equalize write/read error rates with drift error
  rates");
* **drift-aware read references**: reads at an arbitrary retention time
  use :meth:`MLCCellModel.thresholds_at`, which re-centers the decision
  thresholds on the drifted level means for that time, so
  :meth:`MLCCellModel.raw_bit_error_rate` is monotone non-decreasing in
  retention time (fresh cells read better, aged cells worse — never the
  other way around);
* **scrubbing**: cells are rewritten every ``scrub_interval_days``,
  bounding the accumulated stochastic drift (the rewrite cadence itself
  is enforced by the device layer's scrub policy; here the interval
  anchors the level placement).

With the default parameters the analytic raw bit error rate at the
3-month scrub point is ~1e-3, the paper's headline substrate figure.
Gray-coded level labels make a one-level misread cost exactly one bit
flip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import StorageError


def gray_code(index: int) -> int:
    """Binary-reflected Gray code of ``index``."""
    return index ^ (index >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_code`."""
    value = code
    shift = 1
    while (code >> shift) > 0:
        value ^= code >> shift
        shift += 1
    return value


def _phi(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


@dataclass
class MLCCellModel:
    """An L-level PCM cell population.

    The normalized resistance range is [0, 1]. A write targets a level
    position and lands at ``position + N(0, write_sigma / drift_gain)``.
    Between write and read (``t`` days apart) the stored analog value is
    multiplied by ``1 + (drift_coefficient + N(0, drift_sigma)) *
    log10(1+t)`` — deterministic mean drift plus per-cell variation,
    both proportionally stronger for higher-resistance levels, and both
    amplifying the programming noise along with the signal.

    ``write_sigma`` is parameterized in *scrub-read-time* units: the
    drift-amplified programming noise equals exactly ``write_sigma`` at
    the scrub read point, which anchors the historical calibration (the
    default model's raw BER at 90 days is bit-identical to the
    pre-retention-timeline model) while keeping the error rate monotone
    in retention time.

    Attributes:
        levels: number of resistance levels (8 in the paper).
        write_sigma: programming noise std-dev at the scrub read point
            (normalized units), calibrated so the default 8-level cell
            hits ~1e-3 raw BER at the 3-month scrub point (see
            :func:`calibrated_model`).
        drift_coefficient: mean log-time drift strength.
        drift_sigma: per-cell drift-coefficient spread; this is what
            makes longer scrub intervals costlier.
        scrub_interval_days: rewrite period bounding drift.
    """

    levels: int = 8
    write_sigma: float = 0.0229
    drift_coefficient: float = 0.02
    drift_sigma: float = 0.008
    scrub_interval_days: float = 90.0

    #: Target (written) level positions, optimized in __post_init__.
    level_positions: np.ndarray = field(init=False)
    #: Level means at scrub-time read (after deterministic drift).
    read_targets: np.ndarray = field(init=False)
    #: Read-time decision thresholds.
    read_thresholds: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.levels < 2 or self.levels & (self.levels - 1):
            raise StorageError(
                f"levels must be a power of two >= 2, got {self.levels}"
            )
        if self.write_sigma <= 0:
            raise StorageError("write_sigma must be positive")
        if self.drift_sigma < 0:
            raise StorageError("drift_sigma must be non-negative")
        self._optimize_levels()

    # -- placement ---------------------------------------------------------

    @property
    def bits_per_cell(self) -> int:
        return int(math.log2(self.levels))

    def _log_time(self, t_days: float) -> float:
        return math.log10(1.0 + max(t_days, 0.0))

    def _drift_gain(self) -> float:
        """Mean multiplicative drift at the scrub read point."""
        return 1.0 + self.drift_coefficient * self._log_time(
            self.scrub_interval_days)

    def _sigma_at(self, write_positions: np.ndarray,
                  t_days: float) -> np.ndarray:
        """Read-time std-dev per level after ``t_days`` of drift.

        Two terms: the programming noise, amplified multiplicatively by
        the mean drift (normalized so it equals ``write_sigma`` exactly
        at the scrub read point), and the stochastic drift spread from
        per-cell drift-coefficient variation.
        """
        log_t = self._log_time(t_days)
        amplified = (self.write_sigma
                     * (1.0 + self.drift_coefficient * log_t)
                     / self._drift_gain())
        spread = self.drift_sigma * write_positions * log_t
        return np.sqrt(amplified ** 2 + spread ** 2)

    def thresholds_at(self, t_days: Optional[float] = None) -> np.ndarray:
        """Drift-aware read thresholds for a read after ``t_days``.

        Re-centers the decision thresholds on the drifted level means at
        the requested retention time, splitting each gap in proportion
        to the two levels' read-time noise (the same rule the scrub-time
        placement uses). At the scrub point this returns the placement's
        own ``read_thresholds`` verbatim, so default reads are
        bit-identical to the fixed-threshold model.
        """
        if t_days is None:
            return self.read_thresholds
        t_days = float(t_days)
        if t_days == self.scrub_interval_days:
            return self.read_thresholds
        log_t = self._log_time(t_days)
        means = self.level_positions * (1.0
                                        + self.drift_coefficient * log_t)
        sigmas = self._sigma_at(self.level_positions, t_days)
        return (means[:-1] + (means[1:] - means[:-1])
                * sigmas[:-1] / (sigmas[:-1] + sigmas[1:]))

    def _optimize_levels(self) -> None:
        """Error-equalizing placement (Guo et al.'s biasing).

        Read-time targets are spaced proportionally to the sum of
        adjacent levels' read-time noise (fixed-point iteration), then
        written positions divide out the deterministic drift so the
        drifted means land exactly on the targets at scrub time.
        Thresholds split each gap in proportion to the two levels'
        noise, equalizing the two-sided tail probabilities.
        """
        gain = self._drift_gain()
        targets = np.linspace(0.0, 1.0, self.levels)
        for _ in range(25):
            write_positions = targets / gain
            sigmas = self._sigma_at(write_positions,
                                    self.scrub_interval_days)
            gaps = sigmas[:-1] + sigmas[1:]
            cumulative = np.concatenate([[0.0], np.cumsum(gaps)])
            targets = cumulative / cumulative[-1]
        self.read_targets = targets
        self.level_positions = targets / gain
        sigmas = self._sigma_at(self.level_positions,
                                self.scrub_interval_days)
        self.read_thresholds = (
            targets[:-1] + (targets[1:] - targets[:-1])
            * sigmas[:-1] / (sigmas[:-1] + sigmas[1:])
        )

    # -- analytic error rates -----------------------------------------------

    def level_error_rates(self, t_days: Optional[float] = None) -> np.ndarray:
        """Per-level misread probability after ``t_days`` of drift.

        Reads are drift-aware (see :meth:`thresholds_at`), so the rates
        are monotone non-decreasing in retention time.
        """
        if t_days is None:
            t_days = self.scrub_interval_days
        log_t = self._log_time(t_days)
        means = self.level_positions * (1.0 + self.drift_coefficient * log_t)
        sigmas = self._sigma_at(self.level_positions, t_days)
        thresholds = self.thresholds_at(t_days)
        rates = np.empty(self.levels)
        for index in range(self.levels):
            low = (thresholds[index - 1]
                   if index > 0 else -math.inf)
            high = (thresholds[index]
                    if index < self.levels - 1 else math.inf)
            sigma = sigmas[index]
            below = (0.0 if low == -math.inf else
                     float(_phi(np.array([(low - means[index]) / sigma]))[0]))
            above = (0.0 if high == math.inf else
                     1.0 - float(_phi(np.array([(high - means[index])
                                                / sigma]))[0]))
            rates[index] = below + above
        return rates

    def cell_error_rate(self, t_days: Optional[float] = None) -> float:
        """Mean misread probability across levels (uniform level usage)."""
        return float(np.mean(self.level_error_rates(t_days)))

    def raw_bit_error_rate(self, t_days: Optional[float] = None) -> float:
        """Bit error rate, assuming Gray coding (1 flip per misread)."""
        return self.cell_error_rate(t_days) / self.bits_per_cell

    # -- Monte Carlo write/read ------------------------------------------------

    def write_and_read(self, bits: np.ndarray, rng: np.random.Generator,
                       t_days: Optional[float] = None) -> np.ndarray:
        """Store a bit array in cells and read it back with errors.

        ``bits`` length must be a multiple of ``bits_per_cell``.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        per_cell = self.bits_per_cell
        if bits.size % per_cell:
            raise StorageError(
                f"bit count {bits.size} not a multiple of {per_cell}"
            )
        if t_days is None:
            t_days = self.scrub_interval_days
        log_t = self._log_time(t_days)
        groups = bits.reshape(-1, per_cell)
        weights = 1 << np.arange(per_cell - 1, -1, -1)
        values = groups @ weights
        gray_to_level = np.array(
            [gray_decode(v) for v in range(self.levels)])
        level_to_gray = np.array(
            [gray_code(v) for v in range(self.levels)])
        levels = gray_to_level[values]
        positions = self.level_positions[levels]
        # write_sigma is in scrub-read-time units; divide out the mean
        # drift gain to get the physical write-time magnitude.
        analog = positions + rng.normal(
            0.0, self.write_sigma / self._drift_gain(), size=levels.shape)
        drift_coeffs = self.drift_coefficient
        if self.drift_sigma > 0:
            drift_coeffs = rng.normal(self.drift_coefficient,
                                      self.drift_sigma, size=levels.shape)
        analog = analog * (1.0 + drift_coeffs * log_t)
        read_levels = np.searchsorted(self.thresholds_at(t_days), analog)
        read_values = level_to_gray[read_levels]
        out = ((read_values[:, None] >> np.arange(per_cell - 1, -1, -1))
               & 1).astype(np.uint8)
        return out.reshape(-1)

    # -- density -----------------------------------------------------------------

    def cells_for_bits(self, num_bits: int) -> int:
        """Cells needed to store ``num_bits`` raw bits."""
        return -(-num_bits // self.bits_per_cell)


def calibrated_model(target_raw_ber: float = 1e-3, levels: int = 8,
                     scrub_interval_days: float = 90.0,
                     drift_coefficient: float = 0.02,
                     drift_sigma: float = 0.008) -> MLCCellModel:
    """Binary-search ``write_sigma`` to hit a target raw BER at scrub time.

    This is the tuning loop a substrate designer runs: fix the scrub
    interval and density, then find the programming-noise level the
    error budget tolerates.
    """
    low, high = 1e-5, 0.5
    model = MLCCellModel(levels=levels,
                         scrub_interval_days=scrub_interval_days,
                         drift_coefficient=drift_coefficient,
                         drift_sigma=drift_sigma)
    for _ in range(80):
        mid = 0.5 * (low + high)
        model = MLCCellModel(levels=levels, write_sigma=mid,
                             drift_coefficient=drift_coefficient,
                             drift_sigma=drift_sigma,
                             scrub_interval_days=scrub_interval_days)
        if model.raw_bit_error_rate() > target_raw_ber:
            high = mid
        else:
            low = mid
    return model
