"""Decoder no-crash fuzz harness.

The paper's whole premise is that payload bits may be stored
approximately, so the decoder will routinely be handed corrupted input.
That gives :meth:`~repro.codec.decoder.Decoder.decode` a hard contract:

* **payload damage** (bit flips, byte noise, zeroed tails — sizes
  preserved, precise headers intact): decode must return a video.
  Any exception, of any type, is a bug.
* **container damage** (truncation or byte noise over the serialized
  stream, precise headers included): ``deserialize``/``decode`` may
  reject the stream, but only ever with :class:`BitstreamError` —
  internal ``KeyError``/``ValueError`` artifacts are bugs.
* **seek-index damage** (the v1 container's index block truncated or
  scribbled over, body intact): same ``BitstreamError``-only rule for
  ``deserialize``, and any container that *does* parse must still serve
  :meth:`~repro.codec.decoder.Decoder.decode_frame_at` — a damaged
  index degrades random access to a full-decode fallback, never a
  crash.
* **concealment** (payload damage plus a randomized uncorrectable-range
  damage map, decoded with ``conceal_uncorrectable=True``): decode must
  neither raise nor drop pixels — it must return a video with exactly
  the declared frame count and frame geometry, no matter how the damage
  ranges land relative to slice boundaries.
* **either way, under a deadline**: a decode that hangs is as much a
  contract violation as one that crashes.

:func:`fuzz_decoder` hammers randomized corruptions through that
contract and persists every counterexample bitstream (plus a JSON
reproduction recipe) to a crash corpus directory, so a failing CI fuzz
run leaves behind exactly the artifact needed to replay the bug:

    blob = Path("fuzz-corpus/<name>.rvap").read_bytes()
    Decoder().decode(EncodedVideo.deserialize(blob))

Trials are seeded independently (one spawned ``SeedSequence`` child per
trial), so a failure reproduces from ``(seed, trial)`` alone, no matter
which strategies or trial counts surrounded it.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .codec import DamageMap, Decoder, EncodedVideo
from .errors import AnalysisError, BitstreamError, TrialTimeout
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .runtime.watchdog import trial_deadline
from .storage.injection import flip_bit

#: Payload strategies: headers stay intact, payload sizes are preserved.
STRATEGY_BITFLIP = "bitflip"          #: random bit flips across payloads
STRATEGY_BYTESWAP = "byteswap"        #: random bytes overwritten
STRATEGY_ZERO_TAIL = "zero_tail"      #: tail of one payload zeroed
STRATEGY_RANDOM_PAYLOAD = "random_payload"  #: one payload fully random

#: Container strategies: the serialized stream itself is damaged, so
#: ``BitstreamError`` is an acceptable (expected) outcome.
STRATEGY_TRUNCATE = "truncate"        #: stream cut short at a random point
STRATEGY_CONTAINER = "container"      #: random bytes anywhere in the stream
STRATEGY_SEEK_INDEX = "seek_index"    #: v1 seek-index block damaged/truncated

#: Concealment strategy: payload bit flips *plus* a randomized damage
#: map, decoded with ``conceal_uncorrectable=True``. Same zero-exception
#: rule as payload strategies, with an extra geometry obligation: the
#: decode must return every declared frame at the declared resolution.
STRATEGY_CONCEAL = "conceal"

PAYLOAD_STRATEGIES = (STRATEGY_BITFLIP, STRATEGY_BYTESWAP,
                      STRATEGY_ZERO_TAIL, STRATEGY_RANDOM_PAYLOAD)
CONTAINER_STRATEGIES = (STRATEGY_TRUNCATE, STRATEGY_CONTAINER,
                        STRATEGY_SEEK_INDEX)
ALL_STRATEGIES = PAYLOAD_STRATEGIES + CONTAINER_STRATEGIES + \
    (STRATEGY_CONCEAL,)

#: Default per-trial wall-clock budget (seconds). 0 disables the
#: watchdog (and it is silently absent off the main thread / off POSIX).
DEFAULT_FUZZ_TIMEOUT = 5.0

#: Decode work scales with the *declared* frame geometry, so a corrupted
#: header that claims a gigantic resolution makes decode legitimately
#: slow, not buggy. The decoder itself rejects absurd declarations
#: outright (:data:`repro.codec.decoder.MAX_DECLARED_PIXELS` — the
#: resource guard that used to live only here); this *relative* cap
#: additionally skips containers that are merely slow rather than
#: absurd: corrupted containers declaring more than this many times the
#: clean clip's pixel volume are deserialized but not decoded, and the
#: deadline stays armed as the backstop for everything else.
GEOMETRY_CAP = 8


@dataclass(frozen=True)
class FuzzFailure:
    """One decode() contract violation."""

    trial: int
    strategy: str
    exception: str  #: exception type name; ``TrialTimeout`` for hangs
    message: str
    corpus_path: str = ""  #: persisted .rvap path ("" if no corpus dir)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    trials: int
    elapsed_seconds: float
    by_strategy: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)
    hangs: int = 0  #: failures that were deadline breaches
    oversized: int = 0  #: corrupted containers skipped by GEOMETRY_CAP

    @property
    def ok(self) -> bool:
        return not self.failures


def _corrupt_payloads(payloads: List[bytes], strategy: str,
                      rng: np.random.Generator) -> List[bytes]:
    """Damage payload bytes only; every length is preserved."""
    buffers = [bytearray(p) for p in payloads]
    candidates = [i for i, p in enumerate(payloads) if len(p)]
    if strategy == STRATEGY_BITFLIP:
        flips = int(rng.integers(1, 129))
        for _ in range(flips):
            index = int(rng.choice(candidates))
            flip_bit(buffers[index],
                     int(rng.integers(0, 8 * len(buffers[index]))))
    elif strategy == STRATEGY_BYTESWAP:
        swaps = int(rng.integers(1, 33))
        for _ in range(swaps):
            index = int(rng.choice(candidates))
            position = int(rng.integers(0, len(buffers[index])))
            buffers[index][position] = int(rng.integers(0, 256))
    elif strategy == STRATEGY_ZERO_TAIL:
        index = int(rng.choice(candidates))
        tail = int(rng.integers(1, len(buffers[index]) + 1))
        buffers[index][-tail:] = bytes(tail)
    elif strategy == STRATEGY_RANDOM_PAYLOAD:
        index = int(rng.choice(candidates))
        buffers[index] = bytearray(
            rng.integers(0, 256, size=len(buffers[index]), dtype=np.uint8)
            .tobytes())
    else:
        raise AnalysisError(f"unknown payload strategy {strategy!r}")
    return [bytes(b) for b in buffers]


def _random_damage(payloads: List[bytes],
                   rng: np.random.Generator) -> Dict[int, List[Tuple[int, int]]]:
    """Randomized uncorrectable damage: a few bit ranges on a few frames.

    Ranges are half-open ``(bit_start, bit_end)`` within each frame's
    payload, the coordinate system
    :func:`repro.core.partition.map_stream_damage` produces. They land
    anywhere — straddling slice boundaries, overlapping each other,
    covering a whole payload — because the concealment contract must
    hold regardless.
    """
    candidates = [i for i, p in enumerate(payloads) if len(p)]
    count = int(rng.integers(1, min(3, len(candidates)) + 1))
    frames = rng.choice(len(candidates), size=count, replace=False)
    damage: Dict[int, List[Tuple[int, int]]] = {}
    for pick in frames:
        index = candidates[int(pick)]
        payload_bits = 8 * len(payloads[index])
        ranges = []
        for _ in range(int(rng.integers(1, 3))):
            start = int(rng.integers(0, payload_bits))
            end = int(rng.integers(start + 1, payload_bits + 1))
            ranges.append((start, end))
        damage[index] = ranges
    return damage


def _check_full_geometry(decoded, encoded: EncodedVideo) -> None:
    """Concealment obligation: every declared frame, at full size."""
    header = encoded.header
    if len(decoded) != header.num_frames:
        raise AnalysisError(
            f"concealing decode returned {len(decoded)} frames, header "
            f"declares {header.num_frames}")
    expected = (header.height, header.width)
    for position, frame in enumerate(decoded.frames):
        if frame.shape != expected:
            raise AnalysisError(
                f"concealing decode frame {position} has shape "
                f"{frame.shape}, expected {expected}")


def _corrupt_blob(blob: bytes, strategy: str,
                  rng: np.random.Generator) -> bytes:
    """Damage the serialized container itself (headers included)."""
    if strategy == STRATEGY_TRUNCATE:
        return blob[:int(rng.integers(0, len(blob)))]
    if strategy == STRATEGY_CONTAINER:
        buffer = bytearray(blob)
        for _ in range(int(rng.integers(1, 17))):
            position = int(rng.integers(0, len(buffer)))
            buffer[position] = int(rng.integers(0, 256))
        return bytes(buffer)
    raise AnalysisError(f"unknown container strategy {strategy!r}")


def _corrupt_seek_index(blob_v1: bytes,
                        rng: np.random.Generator) -> bytes:
    """Damage only the v1 index framing/bytes; the v0 body stays intact.

    v1 layout: 4-byte magic, big-endian u32 index length, index block,
    body. One of three damage shapes per trial: truncate inside the
    index region, scribble over the length field (desyncing the body
    offset), or scribble inside the index block itself (which the CRC
    or the header cross-validation must catch).
    """
    index_len = int.from_bytes(blob_v1[4:8], "big")
    index_end = 8 + index_len
    choice = int(rng.integers(0, 3))
    if choice == 0:
        return blob_v1[:int(rng.integers(4, index_end))]
    buffer = bytearray(blob_v1)
    if choice == 1:
        buffer[int(rng.integers(4, 8))] = int(rng.integers(0, 256))
    else:
        for _ in range(int(rng.integers(1, 9))):
            position = int(rng.integers(8, index_end))
            buffer[position] = int(rng.integers(0, 256))
    return bytes(buffer)


def _persist_counterexample(corpus_dir: Path, blob: bytes, trial: int,
                            strategy: str, seed: int, exception: str,
                            message: str,
                            damage: Optional[DamageMap] = None) -> str:
    """Write the failing bitstream + a JSON repro recipe; return the path."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    digest = hashlib.sha256(blob).hexdigest()[:16]
    stem = f"{strategy}-{digest}"
    blob_path = corpus_dir / f"{stem}.rvap"
    blob_path.write_bytes(blob)
    recipe = {
        "trial": trial,
        "strategy": strategy,
        "seed": seed,
        "exception": exception,
        "message": message,
        "sha256": hashlib.sha256(blob).hexdigest(),
    }
    if damage is not None:
        # JSON keys must be strings; replay converts them back to ints.
        recipe["damage"] = {
            str(frame): [[int(s), int(e)] for s, e in ranges]
            for frame, ranges in sorted(damage.items())}
    (corpus_dir / f"{stem}.json").write_text(
        json.dumps(recipe, indent=2, sort_keys=True) + "\n")
    return str(blob_path)


def fuzz_decoder(encoded: EncodedVideo,
                 trials: int = 500,
                 seed: int = 0,
                 timeout: float = DEFAULT_FUZZ_TIMEOUT,
                 corpus_dir: Union[str, Path, None] = None,
                 strategies: Sequence[str] = ALL_STRATEGIES,
                 decoder: Optional[Decoder] = None) -> FuzzReport:
    """Fuzz ``decode()`` with randomized corruptions under a deadline.

    Args:
        encoded: a clean encoded video to corrupt (its trace is ignored).
        trials: number of corrupted decodes to attempt.
        seed: campaign seed; a failure reproduces from (seed, trial).
        timeout: per-trial wall-clock budget in seconds; 0 disables.
        corpus_dir: where counterexample bitstreams are persisted; None
            keeps failures in the report only.
        strategies: corruption strategies, applied round-robin so even a
            short run exercises all of them.
        decoder: decoder instance (mainly a test seam).

    Returns a :class:`FuzzReport`; ``report.ok`` is the no-crash verdict.
    """
    if trials < 1:
        raise AnalysisError(f"trials must be >= 1, got {trials}")
    if not strategies:
        raise AnalysisError("no fuzz strategies selected")
    unknown = set(strategies) - set(ALL_STRATEGIES)
    if unknown:
        raise AnalysisError(f"unknown fuzz strategies {sorted(unknown)}")
    payloads = encoded.frame_payloads()
    if not any(len(p) for p in payloads):
        raise AnalysisError("nothing to fuzz: every payload is empty")
    decoder = decoder or Decoder()
    concealer = Decoder(conceal_uncorrectable=True)
    clean_blob = encoded.serialize()
    clean_blob_v1 = encoded.serialize(include_index=True)
    children = np.random.SeedSequence(seed).spawn(trials)
    report = FuzzReport(trials=trials, elapsed_seconds=0.0,
                        by_strategy={name: 0 for name in strategies})
    corpus = Path(corpus_dir) if corpus_dir is not None else None
    started = time.monotonic()
    with obs_trace.span("fuzz", trials=trials):
        for trial in range(trials):
            strategy = strategies[trial % len(strategies)]
            report.by_strategy[strategy] += 1
            rng = np.random.default_rng(children[trial])
            damage: Optional[DamageMap] = None
            if strategy == STRATEGY_CONCEAL:
                blob = None
                victim = encoded.with_payloads(
                    _corrupt_payloads(payloads, STRATEGY_BITFLIP, rng))
                damage = _random_damage(payloads, rng)
                allowed: Tuple[type, ...] = ()
            elif strategy in PAYLOAD_STRATEGIES:
                blob = None  # serialized lazily, only for the corpus
                victim = encoded.with_payloads(
                    _corrupt_payloads(payloads, strategy, rng))
                allowed = ()
            elif strategy == STRATEGY_SEEK_INDEX:
                blob = _corrupt_seek_index(clean_blob_v1, rng)
                victim = None
                allowed = (BitstreamError,)
            else:
                blob = _corrupt_blob(clean_blob, strategy, rng)
                victim = None
                allowed = (BitstreamError,)
            try:
                with obs_trace.span("fuzz.trial", trial=trial,
                                    strategy=strategy):
                    with trial_deadline(timeout, f"fuzz trial {trial}"):
                        if victim is None:
                            victim = EncodedVideo.deserialize(blob)
                            if _declared_pixels(victim) > GEOMETRY_CAP * \
                                    _declared_pixels(encoded):
                                report.oversized += 1
                                continue
                        if strategy == STRATEGY_CONCEAL:
                            _check_full_geometry(
                                concealer.decode(victim, damage), victim)
                        elif strategy == STRATEGY_SEEK_INDEX and \
                                victim.header.num_frames:
                            # A container that parses must still serve
                            # random access; a dropped index means the
                            # seek falls back to a full decode.
                            decoder.decode_frame_at(victim, int(
                                rng.integers(0, victim.header.num_frames)))
                        else:
                            decoder.decode(victim)
            except allowed:
                pass  # the codec's own, documented rejection path
            except TrialTimeout as exc:
                report.hangs += 1
                _record(report, corpus, victim, blob, trial, strategy, seed,
                        exc, damage)
            except Exception as exc:  # noqa: BLE001 - the contract is "never"
                _record(report, corpus, victim, blob, trial, strategy, seed,
                        exc, damage)
    report.elapsed_seconds = time.monotonic() - started
    _publish_fuzz_metrics(report)
    return report


def _publish_fuzz_metrics(report: FuzzReport) -> None:
    """Publish one fuzz campaign's totals into the metrics registry."""
    registry = obs_metrics.get_registry()
    registry.counter("fuzz_trials_total").inc(report.trials)
    registry.counter("fuzz_failures_total").inc(len(report.failures))
    registry.counter("fuzz_hangs_total").inc(report.hangs)
    registry.counter("fuzz_oversized_total").inc(report.oversized)


def replay_corpus(corpus_dir: Union[str, Path],
                  timeout: float = DEFAULT_FUZZ_TIMEOUT,
                  decoder: Optional[Decoder] = None) -> FuzzReport:
    """Re-run every persisted counterexample through the decode contract.

    Each ``<strategy>-<digest>.rvap`` bitstream in ``corpus_dir`` (as
    written by :func:`fuzz_decoder`) is deserialized and decoded under
    the same rules as a live fuzz trial: payload-strategy
    counterexamples must decode without any exception, container ones
    may only raise :class:`BitstreamError`, concealment ones are decoded
    with ``conceal_uncorrectable=True`` and the damage map persisted in
    their recipe (and must still return full-geometry frames), and any
    of them must finish within ``timeout`` seconds. The strategy is read
    from the sidecar ``.json`` recipe; a counterexample without one is
    treated as container damage (the lenient rule), so a stale corpus
    never produces false alarms.

    Returns a :class:`FuzzReport`; ``report.ok`` means every historical
    crash is fixed.
    """
    corpus = Path(corpus_dir)
    if not corpus.is_dir():
        raise AnalysisError(f"corpus directory {corpus} does not exist")
    blob_paths = sorted(corpus.glob("*.rvap"))
    if not blob_paths:
        raise AnalysisError(f"no .rvap counterexamples in {corpus}")
    decoder = decoder or Decoder()
    concealer = Decoder(conceal_uncorrectable=True)
    report = FuzzReport(trials=len(blob_paths), elapsed_seconds=0.0)
    started = time.monotonic()
    with obs_trace.span("fuzz.replay", counterexamples=len(blob_paths)):
        for trial, blob_path in enumerate(blob_paths):
            strategy, damage = _load_recipe(blob_path)
            report.by_strategy[strategy] = (
                report.by_strategy.get(strategy, 0) + 1)
            strict = (strategy in PAYLOAD_STRATEGIES
                      or strategy == STRATEGY_CONCEAL)
            allowed: Tuple[type, ...] = (
                () if strict else (BitstreamError,))
            blob = blob_path.read_bytes()
            try:
                with obs_trace.span("fuzz.trial", strategy=strategy,
                                    replay=True):
                    with trial_deadline(timeout,
                                        f"replay {blob_path.name}"):
                        victim = EncodedVideo.deserialize(blob)
                        if strategy == STRATEGY_CONCEAL:
                            _check_full_geometry(
                                concealer.decode(victim, damage), victim)
                        elif strategy == STRATEGY_SEEK_INDEX and \
                                victim.header.num_frames:
                            decoder.decode_frame_at(victim, 0)
                        else:
                            decoder.decode(victim)
            except allowed:
                pass
            except TrialTimeout as exc:
                report.hangs += 1
                report.failures.append(FuzzFailure(
                    trial=trial, strategy=strategy,
                    exception=type(exc).__name__, message=str(exc),
                    corpus_path=str(blob_path)))
            except Exception as exc:  # noqa: BLE001 - contract is "never"
                report.failures.append(FuzzFailure(
                    trial=trial, strategy=strategy,
                    exception=type(exc).__name__, message=str(exc),
                    corpus_path=str(blob_path)))
    report.elapsed_seconds = time.monotonic() - started
    _publish_fuzz_metrics(report)
    return report


def _load_recipe(blob_path: Path) -> Tuple[str, Optional[DamageMap]]:
    """Strategy + damage map recorded in a counterexample's recipe."""
    recipe_path = blob_path.with_suffix(".json")
    if recipe_path.exists():
        try:
            recipe = json.loads(recipe_path.read_text())
            strategy = str(recipe.get("strategy", "unknown"))
            damage = None
            if isinstance(recipe.get("damage"), dict):
                damage = {int(frame): [(int(s), int(e)) for s, e in ranges]
                          for frame, ranges in recipe["damage"].items()}
            return strategy, damage
        except ValueError:
            pass
    return "unknown", None


def _declared_pixels(encoded: EncodedVideo) -> int:
    """Pixel volume a container's header claims (decode work bound)."""
    header = encoded.header
    return header.width * header.height * max(1, header.num_frames)


def _record(report: FuzzReport, corpus: Optional[Path],
            victim: Optional[EncodedVideo], blob: Optional[bytes],
            trial: int, strategy: str, seed: int, exc: BaseException,
            damage: Optional[DamageMap] = None) -> None:
    """Append one failure, persisting its bitstream when possible."""
    if blob is None and victim is not None:
        blob = victim.serialize()
    corpus_path = ""
    if corpus is not None and blob is not None:
        corpus_path = _persist_counterexample(
            corpus, blob, trial, strategy, seed,
            type(exc).__name__, str(exc), damage)
    report.failures.append(FuzzFailure(
        trial=trial, strategy=strategy, exception=type(exc).__name__,
        message=str(exc), corpus_path=corpus_path))
