"""Entropy-coding interface shared by the CABAC and CAVLC backends.

The syntax layer speaks three symbol kinds: context-coded flags,
context-coded unsigned integers (truncated-unary prefix + Exp-Golomb
bypass suffix, H.264's UEGk shape), and raw bypass bits (signs). Both
backends implement this interface; the CABAC backend uses the contexts
for adaptive probability modelling, the CAVLC backend ignores them and
emits static variable-length codes.

Decoders are hardened for corrupted input: every decoded integer is
clamped to its syntax element's legal range and every variable-length
loop is bounded, so decoding garbage terminates and yields in-range
values — exactly the "misinterpretation, not failure" behaviour the
paper's error study relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import BitstreamError

#: Longest Exp-Golomb prefix a decoder will follow before giving up and
#: clamping. Bounds worst-case work on corrupted streams.
MAX_EG_PREFIX = 24

#: Largest value with a precomputed ``encode_bins`` op string in
#: :meth:`ContextGroup.uint_op_table`; larger values are planned on the
#: fly (they are rare: quantized levels are overwhelmingly small).
UINT_OP_TABLE_LIMIT = 128


def uint_bin_ops(value: int, ladder, tu_cap: int) -> tuple:
    """The ``encode_bins`` op string for one unsigned value.

    Same TU + EG0 binarization as :meth:`EntropyEncoder.encode_uint`:
    context bins are ``(ctx << 1) | bit``, bypass bins ``-1 - bit``.
    The op string depends only on the value and the group's ladder —
    never on coder state — which is what makes it precomputable.
    """
    if value < tu_cap:
        ops = [(ladder[position] << 1) | 1 for position in range(value)]
        ops.append(ladder[value] << 1)
        return tuple(ops)
    ops = [(ladder[position] << 1) | 1 for position in range(tu_cap)]
    shifted = value - tu_cap + 1
    length = shifted.bit_length() - 1
    if length > MAX_EG_PREFIX:
        raise BitstreamError(
            f"value {value - tu_cap} too large for EG0 suffix")
    pattern = ((((1 << length) - 1) << 1) << length) \
        | (shifted - (1 << length))
    ops.extend(-1 - ((pattern >> shift) & 1)
               for shift in range(2 * length, -1, -1))
    return tuple(ops)


@dataclass(frozen=True)
class ContextGroup:
    """A named block of adaptive contexts for one syntax element.

    Attributes:
        base: index of the group's first context in the backend's table.
        variants: number of alternative contexts for the *first* bin,
            selected from neighboring macroblock state (this is what
            makes the coder "context adaptive" across MBs and what
            propagates misinterpretation when state diverges).
        tail: contexts shared by subsequent truncated-unary bins.
        tu_cap: truncated-unary cap; magnitudes beyond it continue in a
            bypass Exp-Golomb suffix.
        max_value: decoder-side clamp for the element's legal range.
    """

    base: int
    variants: int = 1
    tail: int = 0
    tu_cap: int = 1
    max_value: int = 1

    @property
    def size(self) -> int:
        return self.variants + self.tail

    def __getstate__(self) -> dict:
        """Pickle only the layout fields, never the lazy memo tables.

        ``_ladders`` / ``_uint_op_tables`` are derived purely from the
        layout but populated on demand per *used* variant, so which
        entries exist depends on what has been coded in this process.
        A pickle that carried them would make encoder/decoder (and
        store) identity depend on coding history — and campaign
        journals hash those pickles, so resumes would break.
        """
        return {field: getattr(self, field)
                for field in ("base", "variants", "tail", "tu_cap",
                              "max_value")}

    def first_bin_context(self, variant: int) -> int:
        if not 0 <= variant < self.variants:
            raise BitstreamError(
                f"context variant {variant} out of range 0..{self.variants - 1}"
            )
        return self.base + variant

    def tail_context(self, bin_index: int) -> int:
        """Context for unary bin ``bin_index`` (>= 1)."""
        if self.tail == 0:
            # Groups without tail contexts reuse the variant-0 context.
            return self.base
        return self.base + self.variants + min(bin_index - 1, self.tail - 1)

    def unary_ladder(self, variant: int) -> tuple:
        """Context index per truncated-unary bin position 0..tu_cap-1.

        The TU binarization selects contexts purely from the bin
        position — never from coder state — so the whole ladder is
        computed once per variant and indexed in the backends' hot
        loops. ``ladder[b]`` serves both the ``1`` bin at position
        ``b`` and the terminating ``0`` bin of value ``b``. Cached on
        the instance (via ``object.__setattr__``, the dataclass being
        frozen) because hashing the group per symbol costs more than
        the lookup it saves.
        """
        if not 0 <= variant < self.variants:
            raise BitstreamError(
                f"context variant {variant} out of range 0..{self.variants - 1}"
            )
        ladders = getattr(self, "_ladders", None)
        if ladders is None:
            ladders = tuple(
                (self.first_bin_context(v),)
                + tuple(self.tail_context(index)
                        for index in range(1, self.tu_cap))
                for v in range(self.variants)
            )
            object.__setattr__(self, "_ladders", ladders)
        return ladders[variant]

    def uint_op_table(self, variant: int) -> tuple:
        """Precomputed ``encode_bins`` op strings for small values.

        ``table[v]`` is :func:`uint_bin_ops` for value ``v``, covering
        ``0..min(max_value, UINT_OP_TABLE_LIMIT)``; callers fall back to
        on-the-fly planning beyond the table. Cached on the instance
        like :meth:`unary_ladder`.
        """
        tables = getattr(self, "_uint_op_tables", None)
        if tables is None:
            tables = {}
            object.__setattr__(self, "_uint_op_tables", tables)
        table = tables.get(variant)
        if table is None:
            ladder = self.unary_ladder(variant)
            limit = min(self.max_value, UINT_OP_TABLE_LIMIT)
            table = tuple(uint_bin_ops(value, ladder, self.tu_cap)
                          for value in range(limit + 1))
            tables[variant] = table
        return table


class EntropyEncoder(abc.ABC):
    """Serializer of syntax symbols into a byte payload."""

    @abc.abstractmethod
    def encode_flag(self, value: bool, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode one binary flag."""

    @abc.abstractmethod
    def encode_bypass(self, bit: int) -> None:
        """Encode one equiprobable raw bit (signs)."""

    @abc.abstractmethod
    def _encode_context_bin(self, bit: int, ctx: int) -> None:
        """Encode one bin under the given context index."""

    @property
    @abc.abstractmethod
    def bits_emitted(self) -> int:
        """Bits flushed to the output so far (used for MB bit ranges)."""

    @abc.abstractmethod
    def finish(self) -> bytes:
        """Flush and return the complete payload."""

    # -- bulk bypass ----------------------------------------------------

    def encode_bypass_bits(self, value: int, count: int) -> None:
        """Encode ``count`` bypass bits of ``value``, MSB first.

        Backends override this with a batched path; the default loops,
        so overriding never changes the emitted stream — only the
        Python-level call overhead.
        """
        for shift in range(count - 1, -1, -1):
            self.encode_bypass((value >> shift) & 1)

    # -- planned bin strings -------------------------------------------

    def encode_bins(self, ops) -> None:
        """Encode a pre-planned bin string.

        ``ops`` holds one int per bin: a context bin is
        ``(ctx << 1) | bit``, a bypass bin is ``-1 - bit``. The syntax
        layer uses this to emit a whole residual block in one backend
        call. The default dispatches bin by bin, so backends overriding
        it with a batched loop (CABAC) never change the emitted stream —
        only the Python call overhead.
        """
        for op in ops:
            if op >= 0:
                self._encode_context_bin(op & 1, op >> 1)
            else:
                self.encode_bypass(-1 - op)

    # -- shared binarization -------------------------------------------

    def encode_uint(self, value: int, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode an unsigned integer with TU-prefix + EG0 bypass suffix."""
        if value < 0:
            raise BitstreamError(f"encode_uint got negative value {value}")
        if value > group.max_value:
            raise BitstreamError(
                f"value {value} exceeds group max {group.max_value}"
            )
        prefix = min(value, group.tu_cap)
        for bin_index in range(prefix):
            ctx = (group.first_bin_context(variant) if bin_index == 0
                   else group.tail_context(bin_index))
            self._encode_context_bin(1, ctx)
        if value < group.tu_cap:
            ctx = (group.first_bin_context(variant) if value == 0
                   else group.tail_context(value))
            self._encode_context_bin(0, ctx)
        else:
            self._encode_eg0_bypass(value - group.tu_cap)

    def encode_sint(self, value: int, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode a signed integer as magnitude + bypass sign."""
        magnitude = abs(value)
        self.encode_uint(magnitude, group, variant)
        if magnitude:
            self.encode_bypass(1 if value < 0 else 0)

    def _encode_eg0_bypass(self, value: int) -> None:
        """Order-0 Exp-Golomb in bypass bins.

        Emitted as one bulk bin string — ``length`` ones, a zero, then
        the ``length`` suffix bits — identical to bit-by-bit emission.
        """
        shifted = value + 1
        length = shifted.bit_length() - 1
        if length > MAX_EG_PREFIX:
            raise BitstreamError(f"value {value} too large for EG0 suffix")
        prefix = ((1 << length) - 1) << 1
        suffix = shifted - (1 << length)
        self.encode_bypass_bits((prefix << length) | suffix,
                                2 * length + 1)


class EntropyDecoder(abc.ABC):
    """Deserializer mirroring :class:`EntropyEncoder`."""

    @property
    @abc.abstractmethod
    def bits_consumed(self) -> int:
        """Upper bound on payload bits consumed so far.

        Used by the decoder's error-concealment salvage: macroblocks
        whose decode finished with ``bits_consumed`` at or before the
        first damaged bit provably never saw damaged input. Backends may
        over-report (the CABAC register reads ahead a few bytes), which
        only makes salvage conservative — never unsound.
        """
        ...

    @abc.abstractmethod
    def decode_flag(self, group: ContextGroup, variant: int = 0) -> bool:
        ...

    @abc.abstractmethod
    def decode_bypass(self) -> int:
        ...

    @abc.abstractmethod
    def _decode_context_bin(self, ctx: int) -> int:
        ...

    # -- bulk bypass ----------------------------------------------------

    def decode_bypass_bits(self, count: int) -> int:
        """Decode ``count`` bypass bits as one MSB-first integer.

        Mirror of :meth:`EntropyEncoder.encode_bypass_bits`; backends
        override it with a batched path that reads the same bits.
        """
        value = 0
        for _ in range(count):
            value = (value << 1) | self.decode_bypass()
        return value

    # -- shared binarization -------------------------------------------

    def decode_uint(self, group: ContextGroup, variant: int = 0) -> int:
        """Decode an unsigned integer; clamps to the group's legal range."""
        value = 0
        while value < group.tu_cap:
            ctx = (group.first_bin_context(variant) if value == 0
                   else group.tail_context(value))
            if not self._decode_context_bin(ctx):
                return min(value, group.max_value)
            value += 1
        value += self._decode_eg0_bypass()
        return min(value, group.max_value)

    def decode_sint(self, group: ContextGroup, variant: int = 0) -> int:
        magnitude = self.decode_uint(group, variant)
        if magnitude and self.decode_bypass():
            return -magnitude
        return magnitude

    def _decode_eg0_bypass(self) -> int:
        length = 0
        while self.decode_bypass() and length < MAX_EG_PREFIX:
            length += 1
        suffix = self.decode_bypass_bits(length)
        return (1 << length) - 1 + suffix
