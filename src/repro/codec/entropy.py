"""Entropy-coding interface shared by the CABAC and CAVLC backends.

The syntax layer speaks three symbol kinds: context-coded flags,
context-coded unsigned integers (truncated-unary prefix + Exp-Golomb
bypass suffix, H.264's UEGk shape), and raw bypass bits (signs). Both
backends implement this interface; the CABAC backend uses the contexts
for adaptive probability modelling, the CAVLC backend ignores them and
emits static variable-length codes.

Decoders are hardened for corrupted input: every decoded integer is
clamped to its syntax element's legal range and every variable-length
loop is bounded, so decoding garbage terminates and yields in-range
values — exactly the "misinterpretation, not failure" behaviour the
paper's error study relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..errors import BitstreamError

#: Longest Exp-Golomb prefix a decoder will follow before giving up and
#: clamping. Bounds worst-case work on corrupted streams.
MAX_EG_PREFIX = 24


@dataclass(frozen=True)
class ContextGroup:
    """A named block of adaptive contexts for one syntax element.

    Attributes:
        base: index of the group's first context in the backend's table.
        variants: number of alternative contexts for the *first* bin,
            selected from neighboring macroblock state (this is what
            makes the coder "context adaptive" across MBs and what
            propagates misinterpretation when state diverges).
        tail: contexts shared by subsequent truncated-unary bins.
        tu_cap: truncated-unary cap; magnitudes beyond it continue in a
            bypass Exp-Golomb suffix.
        max_value: decoder-side clamp for the element's legal range.
    """

    base: int
    variants: int = 1
    tail: int = 0
    tu_cap: int = 1
    max_value: int = 1

    @property
    def size(self) -> int:
        return self.variants + self.tail

    def first_bin_context(self, variant: int) -> int:
        if not 0 <= variant < self.variants:
            raise BitstreamError(
                f"context variant {variant} out of range 0..{self.variants - 1}"
            )
        return self.base + variant

    def tail_context(self, bin_index: int) -> int:
        """Context for unary bin ``bin_index`` (>= 1)."""
        if self.tail == 0:
            # Groups without tail contexts reuse the variant-0 context.
            return self.base
        return self.base + self.variants + min(bin_index - 1, self.tail - 1)


class EntropyEncoder(abc.ABC):
    """Serializer of syntax symbols into a byte payload."""

    @abc.abstractmethod
    def encode_flag(self, value: bool, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode one binary flag."""

    @abc.abstractmethod
    def encode_bypass(self, bit: int) -> None:
        """Encode one equiprobable raw bit (signs)."""

    @abc.abstractmethod
    def _encode_context_bin(self, bit: int, ctx: int) -> None:
        """Encode one bin under the given context index."""

    @property
    @abc.abstractmethod
    def bits_emitted(self) -> int:
        """Bits flushed to the output so far (used for MB bit ranges)."""

    @abc.abstractmethod
    def finish(self) -> bytes:
        """Flush and return the complete payload."""

    # -- bulk bypass ----------------------------------------------------

    def encode_bypass_bits(self, value: int, count: int) -> None:
        """Encode ``count`` bypass bits of ``value``, MSB first.

        Backends override this with a batched path; the default loops,
        so overriding never changes the emitted stream — only the
        Python-level call overhead.
        """
        for shift in range(count - 1, -1, -1):
            self.encode_bypass((value >> shift) & 1)

    # -- shared binarization -------------------------------------------

    def encode_uint(self, value: int, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode an unsigned integer with TU-prefix + EG0 bypass suffix."""
        if value < 0:
            raise BitstreamError(f"encode_uint got negative value {value}")
        if value > group.max_value:
            raise BitstreamError(
                f"value {value} exceeds group max {group.max_value}"
            )
        prefix = min(value, group.tu_cap)
        for bin_index in range(prefix):
            ctx = (group.first_bin_context(variant) if bin_index == 0
                   else group.tail_context(bin_index))
            self._encode_context_bin(1, ctx)
        if value < group.tu_cap:
            ctx = (group.first_bin_context(variant) if value == 0
                   else group.tail_context(value))
            self._encode_context_bin(0, ctx)
        else:
            self._encode_eg0_bypass(value - group.tu_cap)

    def encode_sint(self, value: int, group: ContextGroup,
                    variant: int = 0) -> None:
        """Encode a signed integer as magnitude + bypass sign."""
        magnitude = abs(value)
        self.encode_uint(magnitude, group, variant)
        if magnitude:
            self.encode_bypass(1 if value < 0 else 0)

    def _encode_eg0_bypass(self, value: int) -> None:
        """Order-0 Exp-Golomb in bypass bins.

        Emitted as one bulk bin string — ``length`` ones, a zero, then
        the ``length`` suffix bits — identical to bit-by-bit emission.
        """
        shifted = value + 1
        length = shifted.bit_length() - 1
        if length > MAX_EG_PREFIX:
            raise BitstreamError(f"value {value} too large for EG0 suffix")
        prefix = ((1 << length) - 1) << 1
        suffix = shifted - (1 << length)
        self.encode_bypass_bits((prefix << length) | suffix,
                                2 * length + 1)


class EntropyDecoder(abc.ABC):
    """Deserializer mirroring :class:`EntropyEncoder`."""

    @property
    @abc.abstractmethod
    def bits_consumed(self) -> int:
        """Upper bound on payload bits consumed so far.

        Used by the decoder's error-concealment salvage: macroblocks
        whose decode finished with ``bits_consumed`` at or before the
        first damaged bit provably never saw damaged input. Backends may
        over-report (the CABAC register reads ahead a few bytes), which
        only makes salvage conservative — never unsound.
        """
        ...

    @abc.abstractmethod
    def decode_flag(self, group: ContextGroup, variant: int = 0) -> bool:
        ...

    @abc.abstractmethod
    def decode_bypass(self) -> int:
        ...

    @abc.abstractmethod
    def _decode_context_bin(self, ctx: int) -> int:
        ...

    # -- bulk bypass ----------------------------------------------------

    def decode_bypass_bits(self, count: int) -> int:
        """Decode ``count`` bypass bits as one MSB-first integer.

        Mirror of :meth:`EntropyEncoder.encode_bypass_bits`; backends
        override it with a batched path that reads the same bits.
        """
        value = 0
        for _ in range(count):
            value = (value << 1) | self.decode_bypass()
        return value

    # -- shared binarization -------------------------------------------

    def decode_uint(self, group: ContextGroup, variant: int = 0) -> int:
        """Decode an unsigned integer; clamps to the group's legal range."""
        value = 0
        while value < group.tu_cap:
            ctx = (group.first_bin_context(variant) if value == 0
                   else group.tail_context(value))
            if not self._decode_context_bin(ctx):
                return min(value, group.max_value)
            value += 1
        value += self._decode_eg0_bypass()
        return min(value, group.max_value)

    def decode_sint(self, group: ContextGroup, variant: int = 0) -> int:
        magnitude = self.decode_uint(group, variant)
        if magnitude and self.decode_bypass():
            return -magnitude
        return magnitude

    def _decode_eg0_bypass(self) -> int:
        length = 0
        while self.decode_bypass() and length < MAX_EG_PREFIX:
            length += 1
        suffix = self.decode_bypass_bits(length)
        return (1 << length) - 1 + suffix
