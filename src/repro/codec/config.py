"""Encoder configuration.

Defaults mirror the paper's conservative evaluation setup: CABAC entropy
coding (the most storage-efficient and most error-intolerant choice) and
a single slice per frame. The knobs the paper's Section 8 discussion
varies — slices, B-frame count, entropy coder — are all here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import EncoderError


class EntropyCoder(enum.Enum):
    """Entropy coding backend."""

    CABAC = "cabac"  #: context-adaptive binary arithmetic coding
    CAVLC = "cavlc"  #: context-free variable-length coding


#: CRF presets used throughout the paper's evaluation (Section 6.3).
CRF_VERY_HIGH_QUALITY = 16
CRF_HIGH_QUALITY = 20
CRF_STANDARD_QUALITY = 24


@dataclass(frozen=True)
class EncoderConfig:
    """All encoder knobs.

    Attributes:
        crf: constant rate factor, the quality control knob (lower is
            better quality); maps to per-frame-type QPs.
        gop_size: I-frame period in display frames ("checkpoints" that
            stop error propagation).
        bframes: number of B-frames between consecutive anchor (I/P)
            frames; 0 gives an IPPP stream.
        slices: horizontal slice count per frame; each slice has its own
            entropy context and blocks prediction across its boundary,
            limiting coding-error propagation (Section 8).
        entropy_coder: CABAC (default, paper's choice) or CAVLC.
        search_range: motion search radius in pixels (integer-pel).
        adaptive_qp: let the encoder raise QP on high-activity MBs,
            exercising delta-QP coding like real encoders do.
        mv_cost_lambda: SAD penalty per pixel of motion-vector deviation
            from zero, biasing the search toward compact vectors.
        partition_penalty: SAD-equivalent cost charged per additional
            motion partition, standing in for its metadata bits.
        intra_penalty: SAD-equivalent cost charged to intra candidates in
            inter frames (intra costs more bits than inter on average).
        bi_penalty: SAD-equivalent cost charged to bidirectional
            partitions (a second motion vector costs bits).
        deblocking: run the in-loop deblocking filter on reconstructed
            frames (and hence on references), as H.264 does.
    """

    crf: int = CRF_STANDARD_QUALITY
    gop_size: int = 12
    bframes: int = 0
    slices: int = 1
    entropy_coder: EntropyCoder = EntropyCoder.CABAC
    search_range: int = 8
    adaptive_qp: bool = True
    mv_cost_lambda: float = 2.0
    partition_penalty: float = 96.0
    intra_penalty: float = 192.0
    bi_penalty: float = 48.0
    deblocking: bool = True

    def __post_init__(self) -> None:
        if not 0 <= self.crf <= 51:
            raise EncoderError(f"crf must be in 0..51, got {self.crf}")
        if self.gop_size < 1:
            raise EncoderError(f"gop_size must be >= 1, got {self.gop_size}")
        if self.bframes < 0:
            raise EncoderError(f"bframes must be >= 0, got {self.bframes}")
        if self.bframes >= self.gop_size:
            raise EncoderError(
                f"bframes ({self.bframes}) must be < gop_size ({self.gop_size})"
            )
        if self.slices < 1:
            raise EncoderError(f"slices must be >= 1, got {self.slices}")
        if not 1 <= self.search_range <= 32:
            raise EncoderError(
                f"search_range must be in 1..32, got {self.search_range}"
            )
