"""4x4 integer transform and quantization (H.264-style).

Uses H.264's integer approximation of the DCT for 4x4 blocks. The
forward transform is ``W = Cf X Cf^T`` with the standard integer core
matrix; basis-function norms are folded into the quantizer, and the
exact floating-point inverse is used for reconstruction. The encoder and
decoder share these routines, so their reconstructions are bit-identical
on clean streams.

Quantization follows H.264's step doubling every 6 QP:
``Qstep(QP) = 0.625 * 2^(QP/6)``, QP in 0..51.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncoderError

#: H.264 4x4 forward transform core matrix.
CF = np.array(
    [
        [1, 1, 1, 1],
        [2, 1, -1, -2],
        [1, -1, -1, 1],
        [1, -2, 2, -1],
    ],
    dtype=np.int64,
)

#: Basis norms squared: diag(CF @ CF.T) = (4, 10, 4, 10).
_NORMS = np.sqrt(np.diag(CF @ CF.T).astype(np.float64))

#: Per-position scale dividing raw transform output down to true DCT
#: magnitudes.
SCALE = np.outer(_NORMS, _NORMS)

#: Exact inverse of CF (floating point): CF^-1 = CF.T diag(1/norms^2).
CI = CF.T.astype(np.float64) @ np.diag(1.0 / (_NORMS ** 2))

MIN_QP = 0
MAX_QP = 51


def quant_step(qp: int) -> float:
    """H.264 quantizer step size for a given QP."""
    if not MIN_QP <= qp <= MAX_QP:
        raise EncoderError(f"qp must be in {MIN_QP}..{MAX_QP}, got {qp}")
    return 0.625 * (2.0 ** (qp / 6.0))


def blockify(mb: np.ndarray) -> np.ndarray:
    """Split a 16x16 macroblock into 16 4x4 blocks in raster order."""
    if mb.shape != (16, 16):
        raise EncoderError(f"expected 16x16 macroblock, got {mb.shape}")
    return (
        mb.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 4, 4)
    )


def deblockify(blocks: np.ndarray) -> np.ndarray:
    """Reassemble 16 4x4 blocks (raster order) into a 16x16 macroblock."""
    if blocks.shape != (16, 4, 4):
        raise EncoderError(f"expected (16, 4, 4) blocks, got {blocks.shape}")
    return (
        blocks.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 16)
    )


def forward_transform(blocks: np.ndarray) -> np.ndarray:
    """Integer 4x4 transform of a batch of residual blocks (N, 4, 4)."""
    arr = np.asarray(blocks, dtype=np.int64)
    return np.einsum("ij,njk,lk->nil", CF, arr, CF)


def quantize(coefficients: np.ndarray, qp: int) -> np.ndarray:
    """Quantize raw transform output to integer levels."""
    step = quant_step(qp)
    return np.rint(coefficients / (step * SCALE)).astype(np.int32)


def dequantize(levels: np.ndarray, qp: int) -> np.ndarray:
    """Invert :func:`quantize` up to the quantization error."""
    step = quant_step(qp)
    return levels.astype(np.float64) * step * SCALE


def inverse_transform(coefficients: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`forward_transform`, rounded to integers."""
    arr = np.asarray(coefficients, dtype=np.float64)
    spatial = np.einsum("ij,njk,lk->nil", CI, arr, CI)
    return np.rint(spatial).astype(np.int32)


def transform_and_quantize(residual_mb: np.ndarray, qp: int) -> np.ndarray:
    """16x16 residual -> (16, 4, 4) quantized levels."""
    return quantize(forward_transform(blockify(residual_mb)), qp)


def reconstruct_residual(levels: np.ndarray, qp: int) -> np.ndarray:
    """(16, 4, 4) quantized levels -> 16x16 reconstructed residual."""
    return deblockify(inverse_transform(dequantize(levels, qp)))


def transform_and_quantize_many(residual_stack: np.ndarray,
                                qps) -> np.ndarray:
    """(M, 16, 16) residuals with per-MB QPs -> (M, 16, 4, 4) levels.

    Bitwise identical to :func:`transform_and_quantize` per macroblock:
    the batched blockify applies the same axis permutation per item, the
    integer einsum is exact at any batch size, and each QP's divisor is
    the same ``step * SCALE`` float64 product the scalar path divides
    by.
    """
    stack = np.asarray(residual_stack)
    count = stack.shape[0]
    blocks = (
        stack.reshape(count, 4, 4, 4, 4)
        .transpose(0, 1, 3, 2, 4)
        .reshape(count * 16, 4, 4)
    )
    coefficients = forward_transform(blocks).reshape(count, 16, 4, 4)
    steps = np.array([quant_step(int(qp)) for qp in qps],
                     dtype=np.float64)
    divisors = steps[:, None, None, None] * SCALE
    return np.rint(coefficients / divisors).astype(np.int32)


def reconstruct_residuals_many(levels_stack: np.ndarray,
                               qps) -> np.ndarray:
    """(M, 16, 4, 4) levels with per-MB QPs -> (M, 16, 16) residuals.

    Bitwise identical to :func:`reconstruct_residual` per macroblock:
    steps come from the scalar :func:`quant_step` (not a vectorized
    power, which could differ in the last ulp), the per-element multiply
    order matches :func:`dequantize`, and the inverse einsum's reduction
    order is independent of batch size.
    """
    stack = np.asarray(levels_stack)
    count = stack.shape[0]
    steps = np.array([quant_step(int(qp)) for qp in qps],
                     dtype=np.float64)
    dequantized = (stack.astype(np.float64)
                   * steps[:, None, None, None] * SCALE)
    blocks = inverse_transform(dequantized.reshape(count * 16, 4, 4))
    return (
        blocks.reshape(count, 4, 4, 4, 4)
        .transpose(0, 1, 3, 2, 4)
        .reshape(count, 16, 16)
    )


#: Zigzag scan order for a 4x4 block (H.264).
ZIGZAG_4x4 = (
    (0, 0), (0, 1), (1, 0), (2, 0),
    (1, 1), (0, 2), (0, 3), (1, 2),
    (2, 1), (3, 0), (3, 1), (2, 2),
    (1, 3), (2, 3), (3, 2), (3, 3),
)

#: Flat (row-major) index of each zigzag position: scanning a raveled
#: 4x4 block with this array yields the zigzag order in one gather.
ZIGZAG_FLAT_INDEX = np.array([4 * r + c for r, c in ZIGZAG_4x4],
                             dtype=np.intp)

#: Inverse permutation: zigzag vector -> row-major flat positions.
ZIGZAG_FLAT_INVERSE = np.argsort(ZIGZAG_FLAT_INDEX)


def zigzag_flatten(block: np.ndarray) -> np.ndarray:
    """4x4 block -> length-16 vector in zigzag order."""
    return np.asarray(block).reshape(16)[ZIGZAG_FLAT_INDEX]


def zigzag_unflatten(vector: np.ndarray) -> np.ndarray:
    """Length-16 zigzag vector -> 4x4 block."""
    vector = np.asarray(vector)
    return vector[:16][ZIGZAG_FLAT_INVERSE].reshape(4, 4)
