"""Encoded video containers and their (precise) serialization.

An :class:`EncodedVideo` separates exactly the two storage classes the
paper distinguishes:

* **headers** (video header + per-frame headers): tiny, structurally
  critical, always kept precise (strongest ECC);
* **payloads** (entropy-coded macroblock data, one byte string per
  frame): the approximable bulk that VideoApp grades by importance.

Frame payload byte lengths live in the frame header, which is what lets
the decoder resynchronize at every frame boundary no matter how damaged
the previous payload was — the paper's entropy-context reset point.

Two container versions serialize:

* **v0** (magic ``RVAP``): header + frame records, the original layout.
  ``serialize()`` still emits it by default, so every byte-identity
  contract in the repo (golden digests, farm GOP assembly, content
  addressing) is untouched.
* **v1** (magic ``RVP1``): a CRC-guarded :class:`~repro.codec.seek.
  SeekIndex` block followed by the unchanged v0 body. Produced by
  ``serialize(include_index=True)``; this is what the CLI writes by
  default so files on disk support random access.

``deserialize`` accepts both. A v1 container whose index block is
damaged (CRC mismatch, truncated entries, inconsistent with the frame
headers) still round-trips: the index is dropped (``seek_index`` comes
back ``None``) and consumers rebuild it from the precise frame headers
— a corrupted index can cost a scan, never pixels or a crash.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import BitstreamError
from .config import EncoderConfig, EntropyCoder
from .seek import SeekIndex, build_seek_index, validate_seek_index
from .types import EncodingTrace, FrameType

_MAGIC = b"RVAP"
_MAGIC_V1 = b"RVP1"


def _write_uint(out: io.BytesIO, value: int, size: int) -> None:
    out.write(int(value).to_bytes(size, "big"))


def _read_uint(data: bytes, offset: int, size: int) -> tuple:
    if offset + size > len(data):
        raise BitstreamError("truncated header")
    return int.from_bytes(data[offset:offset + size], "big"), offset + size


@dataclass
class FrameHeader:
    """Precise per-frame metadata."""

    coded_index: int
    display_index: int
    frame_type: FrameType
    base_qp: int
    ref_forward: Optional[int]   # display index, or None
    ref_backward: Optional[int]  # display index, or None
    slice_byte_lengths: List[int] = field(default_factory=list)

    @property
    def payload_bytes(self) -> int:
        return sum(self.slice_byte_lengths)

    def serialized_bits(self) -> int:
        """Size of this header in the serialized container, in bits."""
        return 8 * (2 + 2 + 1 + 1 + 2 + 2 + 1 + 4 * len(self.slice_byte_lengths))


@dataclass
class VideoHeader:
    """Precise stream-level metadata."""

    width: int
    height: int
    num_frames: int
    gop_size: int
    bframes: int
    slices: int
    entropy_coder: EntropyCoder
    crf: int
    search_range: int
    fps: float
    deblocking: bool = True

    def serialized_bits(self) -> int:
        return 8 * (len(_MAGIC) + 2 + 2 + 2 + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 4)


@dataclass
class EncodedFrame:
    """One coded frame: precise header + approximable payload."""

    header: FrameHeader
    payload: bytes

    @property
    def payload_bits(self) -> int:
        return 8 * len(self.payload)


@dataclass
class EncodedVideo:
    """A complete coded video in coded-frame order."""

    header: VideoHeader
    frames: List[EncodedFrame]
    #: Dependency/bit-layout trace; produced by the encoder, consumed by
    #: VideoApp. Not serialized (the paper's analysis is a one-time
    #: encoder-side post-processing step).
    trace: Optional[EncodingTrace] = None
    #: Seek index parsed from a v1 container (``None`` for v0 streams,
    #: or when the embedded index arrived damaged). Derived metadata:
    #: :meth:`seek_index_or_build` reconstructs it on demand.
    seek_index: Optional[SeekIndex] = None

    @property
    def payload_bits(self) -> int:
        """Total approximable bits."""
        return sum(frame.payload_bits for frame in self.frames)

    @property
    def header_bits(self) -> int:
        """Total precise bits."""
        return self.header.serialized_bits() + sum(
            frame.header.serialized_bits() for frame in self.frames
        )

    @property
    def total_bits(self) -> int:
        return self.payload_bits + self.header_bits

    def frame_payloads(self) -> List[bytes]:
        return [frame.payload for frame in self.frames]

    def with_payloads(self, payloads: List[bytes]) -> "EncodedVideo":
        """A copy of this video with substituted frame payloads.

        Payload lengths must match: approximate storage flips bits, it
        never changes sizes.
        """
        if len(payloads) != len(self.frames):
            raise BitstreamError(
                f"expected {len(self.frames)} payloads, got {len(payloads)}"
            )
        frames = []
        for frame, payload in zip(self.frames, payloads):
            if len(payload) != len(frame.payload):
                raise BitstreamError(
                    f"frame {frame.header.coded_index}: payload length "
                    f"{len(payload)} != {len(frame.payload)}"
                )
            frames.append(EncodedFrame(header=frame.header, payload=payload))
        # Payload lengths are preserved, so the byte layout — and with
        # it any seek index — is unchanged.
        return EncodedVideo(header=self.header, frames=frames,
                            trace=self.trace, seek_index=self.seek_index)

    # -- random access -----------------------------------------------------

    def seek_index_or_build(self) -> SeekIndex:
        """A trustworthy seek index for this container.

        The embedded index is used only when it validates against the
        precise frame headers; otherwise (v0 stream, damaged or stale
        index) a fresh one is derived. Raises
        :class:`BitstreamError` when the headers themselves cannot
        anchor an index (no opening I frame).
        """
        if self.seek_index is not None and \
                validate_seek_index(self.seek_index, self):
            return self.seek_index
        return build_seek_index(self)

    # -- serialization ----------------------------------------------------

    def serialize(self, include_index: bool = False) -> bytes:
        """Serialized container bytes.

        ``include_index=False`` (default) emits the v0 layout — byte
        identical to every container this codec has ever produced.
        ``include_index=True`` emits v1: the seek index block (built
        fresh from the frame headers) framed ahead of the same v0 body.
        """
        body = self._serialize_body()
        if not include_index:
            return body
        index = build_seek_index(self).serialize()
        out = io.BytesIO()
        out.write(_MAGIC_V1)
        _write_uint(out, len(index), 4)
        out.write(index)
        out.write(body)
        return out.getvalue()

    def _serialize_body(self) -> bytes:
        out = io.BytesIO()
        out.write(_MAGIC)
        header = self.header
        _write_uint(out, header.width, 2)
        _write_uint(out, header.height, 2)
        _write_uint(out, header.num_frames, 2)
        _write_uint(out, header.gop_size, 1)
        _write_uint(out, header.bframes, 1)
        _write_uint(out, header.slices, 1)
        _write_uint(out, 0 if header.entropy_coder == EntropyCoder.CABAC else 1, 1)
        _write_uint(out, header.crf, 1)
        _write_uint(out, header.search_range, 1)
        _write_uint(out, 1 if header.deblocking else 0, 1)
        _write_uint(out, int(round(header.fps * 1000)), 4)
        for frame in self.frames:
            fh = frame.header
            _write_uint(out, fh.coded_index, 2)
            _write_uint(out, fh.display_index, 2)
            _write_uint(out, int(fh.frame_type), 1)
            _write_uint(out, fh.base_qp, 1)
            _write_uint(out, 0 if fh.ref_forward is None else fh.ref_forward + 1, 2)
            _write_uint(out, 0 if fh.ref_backward is None else fh.ref_backward + 1, 2)
            _write_uint(out, len(fh.slice_byte_lengths), 1)
            for length in fh.slice_byte_lengths:
                _write_uint(out, length, 4)
            out.write(frame.payload)
        return out.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "EncodedVideo":
        index: Optional[SeekIndex] = None
        if data[:len(_MAGIC_V1)] == _MAGIC_V1:
            index_len, offset = _read_uint(data, len(_MAGIC_V1), 4)
            if offset + index_len > len(data):
                raise BitstreamError("truncated seek index framing")
            try:
                index = SeekIndex.deserialize(data[offset:offset
                                                   + index_len])
            except BitstreamError:
                # Damaged index: random access degrades to a header
                # scan, decoding is unaffected.
                index = None
            data = data[offset + index_len:]
        video = EncodedVideo._deserialize_body(data)
        if index is not None and not validate_seek_index(index, video):
            index = None
        video.seek_index = index
        return video

    @staticmethod
    def _deserialize_body(data: bytes) -> "EncodedVideo":
        if data[:len(_MAGIC)] != _MAGIC:
            raise BitstreamError("not a serialized EncodedVideo")
        offset = len(_MAGIC)
        width, offset = _read_uint(data, offset, 2)
        height, offset = _read_uint(data, offset, 2)
        num_frames, offset = _read_uint(data, offset, 2)
        gop_size, offset = _read_uint(data, offset, 1)
        bframes, offset = _read_uint(data, offset, 1)
        slices, offset = _read_uint(data, offset, 1)
        entropy_raw, offset = _read_uint(data, offset, 1)
        crf, offset = _read_uint(data, offset, 1)
        search_range, offset = _read_uint(data, offset, 1)
        deblocking_raw, offset = _read_uint(data, offset, 1)
        fps_millis, offset = _read_uint(data, offset, 4)
        header = VideoHeader(
            width=width, height=height, num_frames=num_frames,
            gop_size=gop_size, bframes=bframes, slices=slices,
            entropy_coder=(EntropyCoder.CABAC if entropy_raw == 0
                           else EntropyCoder.CAVLC),
            crf=crf, search_range=search_range, fps=fps_millis / 1000.0,
            deblocking=bool(deblocking_raw),
        )
        frames = []
        for _ in range(num_frames):
            coded_index, offset = _read_uint(data, offset, 2)
            display_index, offset = _read_uint(data, offset, 2)
            frame_type_raw, offset = _read_uint(data, offset, 1)
            if frame_type_raw not in FrameType._value2member_map_:
                raise BitstreamError(
                    f"invalid frame type {frame_type_raw}"
                )
            base_qp, offset = _read_uint(data, offset, 1)
            ref_fwd_raw, offset = _read_uint(data, offset, 2)
            ref_bwd_raw, offset = _read_uint(data, offset, 2)
            num_slices, offset = _read_uint(data, offset, 1)
            lengths = []
            for _ in range(num_slices):
                length, offset = _read_uint(data, offset, 4)
                lengths.append(length)
            payload_len = sum(lengths)
            if offset + payload_len > len(data):
                raise BitstreamError("truncated payload")
            payload = data[offset:offset + payload_len]
            offset += payload_len
            frames.append(EncodedFrame(
                header=FrameHeader(
                    coded_index=coded_index,
                    display_index=display_index,
                    frame_type=FrameType(frame_type_raw),
                    base_qp=base_qp,
                    ref_forward=None if ref_fwd_raw == 0 else ref_fwd_raw - 1,
                    ref_backward=None if ref_bwd_raw == 0 else ref_bwd_raw - 1,
                    slice_byte_lengths=lengths,
                ),
                payload=payload,
            ))
        return EncodedVideo(header=header, frames=frames)

    def config(self) -> EncoderConfig:
        """Reconstruct the encoder configuration the stream was made with."""
        return EncoderConfig(
            crf=self.header.crf,
            gop_size=self.header.gop_size,
            bframes=self.header.bframes,
            slices=self.header.slices,
            entropy_coder=self.header.entropy_coder,
            search_range=self.header.search_range,
            deblocking=self.header.deblocking,
        )
